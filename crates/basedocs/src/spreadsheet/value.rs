//! Cell values: what a cell holds after evaluation.

use std::fmt;

/// The evaluated contents of a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// An unset cell. Numeric context treats it as 0; text context as "".
    Empty,
    Number(f64),
    Text(String),
    Bool(bool),
    /// An evaluation error, carrying an Excel-style code (`#DIV/0!`,
    /// `#CYCLE!`, `#NAME?`, `#VALUE!`, `#REF!`).
    Error(String),
}

impl CellValue {
    /// Coerce to a number the way spreadsheet arithmetic does: numbers
    /// pass through, booleans are 0/1, empty is 0, numeric-looking text
    /// parses, anything else is a `#VALUE!` error.
    pub fn as_number(&self) -> Result<f64, CellValue> {
        match self {
            CellValue::Number(n) => Ok(*n),
            CellValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            CellValue::Empty => Ok(0.0),
            CellValue::Text(s) => {
                s.trim().parse().map_err(|_| CellValue::Error("#VALUE!".into()))
            }
            CellValue::Error(_) => Err(self.clone()),
        }
    }

    /// Truthiness for `IF`: numbers ≠ 0, non-empty text, `true`.
    pub fn is_truthy(&self) -> bool {
        match self {
            CellValue::Number(n) => *n != 0.0,
            CellValue::Bool(b) => *b,
            CellValue::Text(s) => !s.is_empty(),
            CellValue::Empty => false,
            CellValue::Error(_) => false,
        }
    }

    /// True if this is an error value.
    pub fn is_error(&self) -> bool {
        matches!(self, CellValue::Error(_))
    }

    /// Parse user input the way a spreadsheet entry bar does: leading `=`
    /// is a formula (handled by the caller), numbers become numbers,
    /// TRUE/FALSE become booleans, everything else is text.
    pub fn from_input(input: &str) -> CellValue {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return CellValue::Empty;
        }
        if let Ok(n) = trimmed.parse::<f64>() {
            return CellValue::Number(n);
        }
        match trimmed.to_ascii_uppercase().as_str() {
            "TRUE" => CellValue::Bool(true),
            "FALSE" => CellValue::Bool(false),
            _ => CellValue::Text(input.to_string()),
        }
    }
}

impl fmt::Display for CellValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellValue::Empty => Ok(()),
            CellValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            CellValue::Text(s) => f.write_str(s),
            CellValue::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            CellValue::Error(e) => f.write_str(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_input_classifies() {
        assert_eq!(CellValue::from_input(""), CellValue::Empty);
        assert_eq!(CellValue::from_input("  "), CellValue::Empty);
        assert_eq!(CellValue::from_input("42"), CellValue::Number(42.0));
        assert_eq!(CellValue::from_input("-3.5"), CellValue::Number(-3.5));
        assert_eq!(CellValue::from_input("true"), CellValue::Bool(true));
        assert_eq!(CellValue::from_input("FALSE"), CellValue::Bool(false));
        assert_eq!(CellValue::from_input("Lasix 40mg"), CellValue::Text("Lasix 40mg".into()));
    }

    #[test]
    fn as_number_coercions() {
        assert_eq!(CellValue::Number(2.5).as_number().unwrap(), 2.5);
        assert_eq!(CellValue::Bool(true).as_number().unwrap(), 1.0);
        assert_eq!(CellValue::Empty.as_number().unwrap(), 0.0);
        assert_eq!(CellValue::Text(" 7 ".into()).as_number().unwrap(), 7.0);
        assert!(CellValue::Text("abc".into()).as_number().is_err());
        assert!(CellValue::Error("#REF!".into()).as_number().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(CellValue::Number(1.0).is_truthy());
        assert!(!CellValue::Number(0.0).is_truthy());
        assert!(CellValue::Text("x".into()).is_truthy());
        assert!(!CellValue::Text("".into()).is_truthy());
        assert!(!CellValue::Empty.is_truthy());
        assert!(!CellValue::Error("#DIV/0!".into()).is_truthy());
    }

    #[test]
    fn display_formats_integers_without_fraction() {
        assert_eq!(CellValue::Number(140.0).to_string(), "140");
        assert_eq!(CellValue::Number(4.1).to_string(), "4.1");
        assert_eq!(CellValue::Bool(true).to_string(), "TRUE");
        assert_eq!(CellValue::Empty.to_string(), "");
        assert_eq!(CellValue::Error("#CYCLE!".into()).to_string(), "#CYCLE!");
    }
}
