//! Workbooks and sheets: storage, evaluation, and rendering.

use super::cellref::{CellRef, Range};
use super::formula::{self, CellResolver, Expr};
use super::value::CellValue;
use crate::common::DocError;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// What a cell stores: a direct value or a formula (kept as both source
/// text and parsed expression).
#[derive(Debug, Clone, PartialEq)]
enum CellContent {
    Value(CellValue),
    Formula { text: String, expr: Expr },
}

/// One sheet: a sparse grid of cells.
#[derive(Debug, Clone, Default)]
pub struct Sheet {
    /// The sheet's tab name.
    pub name: String,
    cells: HashMap<CellRef, CellContent>,
}

impl Sheet {
    /// An empty sheet with the given tab name.
    pub fn new(name: impl Into<String>) -> Self {
        Sheet { name: name.into(), cells: HashMap::new() }
    }

    /// Enter data the way a user types into the entry bar: a leading `=`
    /// makes a formula, otherwise the input is classified as
    /// number/bool/text.
    ///
    /// # Errors
    ///
    /// Rejects formulas that do not parse (matching a real spreadsheet's
    /// entry-time rejection).
    pub fn set(&mut self, cell: CellRef, input: &str) -> Result<(), DocError> {
        if let Some(body) = input.strip_prefix('=') {
            let expr = formula::parse(body)?;
            self.cells.insert(cell, CellContent::Formula { text: input.to_string(), expr });
        } else {
            let v = CellValue::from_input(input);
            if matches!(v, CellValue::Empty) {
                self.cells.remove(&cell);
            } else {
                self.cells.insert(cell, CellContent::Value(v));
            }
        }
        Ok(())
    }

    /// Convenience for tests and loaders: set by A1 text.
    pub fn set_a1(&mut self, a1: &str, input: &str) -> Result<(), DocError> {
        self.set(CellRef::parse(a1)?, input)
    }

    /// Snapshot every non-empty cell as `(ref, entered input)` — the
    /// basis for structural edits that rewrite the whole grid.
    pub fn cells_snapshot(&self) -> Vec<(CellRef, String)> {
        let mut out: Vec<(CellRef, String)> =
            self.cells.keys().map(|c| (*c, self.input_of(*c))).collect();
        out.sort_unstable_by_key(|(c, _)| (c.row, c.col));
        out
    }

    /// Clear a cell.
    pub fn clear(&mut self, cell: CellRef) {
        self.cells.remove(&cell);
    }

    /// The cell's *entered* content: formula text (with `=`) or the value
    /// display. Empty cells yield `""`.
    pub fn input_of(&self, cell: CellRef) -> String {
        match self.cells.get(&cell) {
            Some(CellContent::Formula { text, .. }) => text.clone(),
            Some(CellContent::Value(v)) => v.to_string(),
            None => String::new(),
        }
    }

    /// The cell's *evaluated* value, recursively evaluating formulas with
    /// cycle detection (`#CYCLE!`).
    pub fn value(&self, cell: CellRef) -> CellValue {
        let resolver = SheetResolver { sheet: self, in_progress: RefCell::new(HashSet::new()) };
        resolver.cell_value(cell)
    }

    /// Evaluated values over a range, row-major.
    pub fn values(&self, range: Range) -> Vec<CellValue> {
        range.cells().map(|c| self.value(c)).collect()
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The smallest range containing every non-empty cell, or `None` for
    /// an empty sheet.
    pub fn used_range(&self) -> Option<Range> {
        let mut iter = self.cells.keys();
        let first = *iter.next()?;
        let mut min = first;
        let mut max = first;
        for c in iter {
            min = CellRef::new(min.row.min(c.row), min.col.min(c.col));
            max = CellRef::new(max.row.max(c.row), max.col.max(c.col));
        }
        Some(Range::new(min, max))
    }

    /// Render the used portion of the sheet as an ASCII grid, with the
    /// `highlight` range (if any) wrapped in `[` … `]` — the textual
    /// equivalent of Excel highlighting the marked range after a mark
    /// resolution (paper Figure 4, upper right).
    pub fn render(&self, highlight: Option<Range>) -> String {
        let Some(mut used) = self.used_range() else {
            return format!("[sheet {}: empty]\n", self.name);
        };
        if let Some(h) = highlight {
            used = Range::new(
                CellRef::new(used.start.row.min(h.start.row), used.start.col.min(h.start.col)),
                CellRef::new(used.end.row.max(h.end.row), used.end.col.max(h.end.col)),
            );
        }
        // Column widths from rendered values.
        let cols: Vec<u32> = (used.start.col..=used.end.col).collect();
        let mut widths: HashMap<u32, usize> = HashMap::new();
        for &col in &cols {
            let mut w = CellRef::new(0, col).col_letters().len();
            for row in used.start.row..=used.end.row {
                let text = self.value(CellRef::new(row, col)).to_string();
                w = w.max(text.chars().count() + 2); // room for [ ]
            }
            widths.insert(col, w);
        }
        let mut out = String::new();
        // Header row.
        out.push_str("     ");
        for &col in &cols {
            let letters = CellRef::new(0, col).col_letters();
            out.push_str(&format!(" {:^width$}", letters, width = widths[&col]));
        }
        out.push('\n');
        for row in used.start.row..=used.end.row {
            out.push_str(&format!("{:>4} ", row + 1));
            for &col in &cols {
                let cell = CellRef::new(row, col);
                let text = self.value(cell).to_string();
                let deco = match highlight {
                    Some(h) if h.contains(cell) => format!("[{text}]"),
                    _ => text,
                };
                out.push_str(&format!(" {:width$}", deco, width = widths[&col]));
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }
}

/// Resolver over a sheet with an evaluation stack for cycle detection.
struct SheetResolver<'s> {
    sheet: &'s Sheet,
    in_progress: RefCell<HashSet<CellRef>>,
}

impl CellResolver for SheetResolver<'_> {
    fn cell_value(&self, cell: CellRef) -> CellValue {
        match self.sheet.cells.get(&cell) {
            None => CellValue::Empty,
            Some(CellContent::Value(v)) => v.clone(),
            Some(CellContent::Formula { expr, .. }) => {
                if !self.in_progress.borrow_mut().insert(cell) {
                    return CellValue::Error("#CYCLE!".into());
                }
                let v = formula::eval(expr, self);
                self.in_progress.borrow_mut().remove(&cell);
                v
            }
        }
    }
}

/// A named workbook holding one or more sheets.
#[derive(Debug, Clone)]
pub struct Workbook {
    /// The workbook's file name (used as the mark's `fileName`).
    pub name: String,
    sheets: Vec<Sheet>,
    /// Named ranges: name → (sheet name, range). The robust addressing
    /// mode — like Word bookmarks, a defined name survives row inserts
    /// (the *definition* moves, stored addresses need not).
    named_ranges: HashMap<String, (String, Range)>,
}

impl Workbook {
    /// A workbook with a single empty sheet named `"Sheet1"`.
    pub fn new(name: impl Into<String>) -> Self {
        Workbook {
            name: name.into(),
            sheets: vec![Sheet::new("Sheet1")],
            named_ranges: HashMap::new(),
        }
    }

    /// Define (or move) a named range.
    ///
    /// # Errors
    ///
    /// Rejects names for sheets that do not exist, and names that could
    /// be mistaken for A1 references.
    pub fn define_name(
        &mut self,
        name: impl Into<String>,
        sheet: &str,
        range: Range,
    ) -> Result<(), DocError> {
        let name = name.into();
        if CellRef::parse(&name).is_ok() || Range::parse(&name).is_ok() {
            return Err(DocError::Content {
                message: format!("{name:?} would shadow an A1 reference"),
            });
        }
        if self.sheet(sheet).is_none() {
            return Err(DocError::Dangling { message: format!("no sheet {sheet:?}") });
        }
        self.named_ranges.insert(name, (sheet.to_string(), range));
        Ok(())
    }

    /// Resolve a defined name to its (sheet, range).
    pub fn resolve_name(&self, name: &str) -> Option<(&str, Range)> {
        self.named_ranges.get(name).map(|(s, r)| (s.as_str(), *r))
    }

    /// All defined names, sorted.
    pub fn defined_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.named_ranges.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Snapshot of all named ranges.
    pub fn named_ranges_snapshot(&self) -> Vec<(String, (String, Range))> {
        let mut out: Vec<(String, (String, Range))> = self
            .named_ranges
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Remove a defined name (no-op if absent).
    pub fn remove_name(&mut self, name: &str) {
        self.named_ranges.remove(name);
    }

    /// Add a sheet; errors on duplicate tab names.
    pub fn add_sheet(&mut self, name: impl Into<String>) -> Result<&mut Sheet, DocError> {
        let name = name.into();
        if self.sheets.iter().any(|s| s.name == name) {
            return Err(DocError::Content { message: format!("duplicate sheet name {name:?}") });
        }
        self.sheets.push(Sheet::new(name));
        Ok(self.sheets.last_mut().expect("just pushed"))
    }

    /// Look up a sheet by tab name.
    pub fn sheet(&self, name: &str) -> Option<&Sheet> {
        self.sheets.iter().find(|s| s.name == name)
    }

    /// Mutable sheet lookup.
    pub fn sheet_mut(&mut self, name: &str) -> Option<&mut Sheet> {
        self.sheets.iter_mut().find(|s| s.name == name)
    }

    /// All sheets in tab order.
    pub fn sheets(&self) -> &[Sheet] {
        &self.sheets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn med_sheet() -> Sheet {
        let mut s = Sheet::new("Medications");
        s.set_a1("A1", "Drug").unwrap();
        s.set_a1("B1", "Dose mg").unwrap();
        s.set_a1("A2", "Lasix").unwrap();
        s.set_a1("B2", "40").unwrap();
        s.set_a1("A3", "KCl").unwrap();
        s.set_a1("B3", "20").unwrap();
        s.set_a1("B5", "=SUM(B2:B3)").unwrap();
        s
    }

    #[test]
    fn set_and_value() {
        let s = med_sheet();
        assert_eq!(s.value(CellRef::parse("B2").unwrap()), CellValue::Number(40.0));
        assert_eq!(s.value(CellRef::parse("B5").unwrap()), CellValue::Number(60.0));
        assert_eq!(s.value(CellRef::parse("Z99").unwrap()), CellValue::Empty);
    }

    #[test]
    fn formula_text_is_preserved() {
        let s = med_sheet();
        assert_eq!(s.input_of(CellRef::parse("B5").unwrap()), "=SUM(B2:B3)");
        assert_eq!(s.input_of(CellRef::parse("A2").unwrap()), "Lasix");
        assert_eq!(s.input_of(CellRef::parse("Z1").unwrap()), "");
    }

    #[test]
    fn bad_formula_rejected_at_entry() {
        let mut s = Sheet::new("S");
        assert!(s.set_a1("A1", "=1+").is_err());
        assert_eq!(s.cell_count(), 0);
    }

    #[test]
    fn empty_input_clears_cell() {
        let mut s = med_sheet();
        let n = s.cell_count();
        s.set_a1("A2", "").unwrap();
        assert_eq!(s.cell_count(), n - 1);
    }

    #[test]
    fn chained_formulas_evaluate_transitively() {
        let mut s = Sheet::new("S");
        s.set_a1("A1", "2").unwrap();
        s.set_a1("A2", "=A1*10").unwrap();
        s.set_a1("A3", "=A2+1").unwrap();
        assert_eq!(s.value(CellRef::parse("A3").unwrap()), CellValue::Number(21.0));
    }

    #[test]
    fn direct_cycle_detected() {
        let mut s = Sheet::new("S");
        s.set_a1("A1", "=A1+1").unwrap();
        assert_eq!(s.value(CellRef::parse("A1").unwrap()), CellValue::Error("#CYCLE!".into()));
    }

    #[test]
    fn indirect_cycle_detected() {
        let mut s = Sheet::new("S");
        s.set_a1("A1", "=B1").unwrap();
        s.set_a1("B1", "=C1").unwrap();
        s.set_a1("C1", "=A1").unwrap();
        assert_eq!(s.value(CellRef::parse("A1").unwrap()), CellValue::Error("#CYCLE!".into()));
    }

    #[test]
    fn diamond_dependencies_are_not_cycles() {
        let mut s = Sheet::new("S");
        s.set_a1("A1", "1").unwrap();
        s.set_a1("B1", "=A1+1").unwrap();
        s.set_a1("B2", "=A1+2").unwrap();
        s.set_a1("C1", "=B1+B2").unwrap();
        assert_eq!(s.value(CellRef::parse("C1").unwrap()), CellValue::Number(5.0));
    }

    #[test]
    fn used_range_bounds() {
        let s = med_sheet();
        assert_eq!(s.used_range().unwrap().to_string(), "A1:B5");
        assert_eq!(Sheet::new("E").used_range(), None);
    }

    #[test]
    fn render_highlights_range() {
        let s = med_sheet();
        let text = s.render(Some(Range::parse("B2").unwrap()));
        assert!(text.contains("[40]"), "{text}");
        assert!(text.contains("Lasix"), "{text}");
        assert!(text.contains('A') && text.contains('B'), "{text}");
        // Unhighlighted render has no brackets.
        let plain = s.render(None);
        assert!(!plain.contains('['), "{plain}");
    }

    #[test]
    fn render_empty_sheet() {
        assert!(Sheet::new("Empty").render(None).contains("empty"));
    }

    #[test]
    fn named_ranges_define_resolve_and_validate() {
        let mut wb = Workbook::new("meds.xls");
        wb.define_name("CurrentMeds", "Sheet1", Range::parse("A2:C9").unwrap()).unwrap();
        assert_eq!(
            wb.resolve_name("CurrentMeds"),
            Some(("Sheet1", Range::parse("A2:C9").unwrap()))
        );
        assert_eq!(wb.resolve_name("Nope"), None);
        assert_eq!(wb.defined_names(), vec!["CurrentMeds"]);
        // Redefinition moves the name.
        wb.define_name("CurrentMeds", "Sheet1", Range::parse("A2:C12").unwrap()).unwrap();
        assert_eq!(wb.resolve_name("CurrentMeds").unwrap().1, Range::parse("A2:C12").unwrap());
        // Validation.
        assert!(wb.define_name("B2", "Sheet1", Range::parse("A1").unwrap()).is_err());
        assert!(wb.define_name("X", "Ghost", Range::parse("A1").unwrap()).is_err());
    }

    #[test]
    fn workbook_sheet_management() {
        let mut wb = Workbook::new("meds.xls");
        assert!(wb.sheet("Sheet1").is_some());
        wb.add_sheet("Notes").unwrap();
        assert!(wb.add_sheet("Notes").is_err(), "duplicate sheet names rejected");
        assert_eq!(wb.sheets().len(), 2);
        wb.sheet_mut("Notes").unwrap().set_a1("A1", "hi").unwrap();
        assert_eq!(wb.sheet("Notes").unwrap().cell_count(), 1);
    }

    #[test]
    fn values_over_range() {
        let s = med_sheet();
        let vals = s.values(Range::parse("B2:B3").unwrap());
        assert_eq!(vals, vec![CellValue::Number(40.0), CellValue::Number(20.0)]);
    }
}
