//! A1-style cell and range references.

use crate::common::DocError;
use std::fmt;

/// A zero-based (row, column) cell coordinate, displayed in A1 notation
/// (`A1` = row 0, col 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    pub row: u32,
    pub col: u32,
}

impl CellRef {
    /// Construct from zero-based row and column.
    pub fn new(row: u32, col: u32) -> Self {
        CellRef { row, col }
    }

    /// Parse A1 notation (`"B2"` → row 1, col 1). Case-insensitive.
    pub fn parse(text: &str) -> Result<Self, DocError> {
        let bad = |m: String| DocError::BadAddress { message: m };
        let letters: String =
            text.chars().take_while(|c| c.is_ascii_alphabetic()).collect();
        let digits = &text[letters.len()..];
        if letters.is_empty() || digits.is_empty() {
            return Err(bad(format!("{text:?} is not an A1 cell reference")));
        }
        if !digits.chars().all(|c| c.is_ascii_digit()) {
            return Err(bad(format!("{text:?} has a malformed row number")));
        }
        let col = parse_col_letters(&letters)
            .ok_or_else(|| bad(format!("{text:?} has a malformed column")))?;
        let row: u32 = digits
            .parse()
            .ok()
            .filter(|&r| r >= 1)
            .ok_or_else(|| bad(format!("{text:?}: rows are numbered from 1")))?;
        Ok(CellRef { row: row - 1, col })
    }

    /// Column letters for this cell's column (`0` → `"A"`, `27` → `"AB"`).
    pub fn col_letters(self) -> String {
        col_to_letters(self.col)
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", col_to_letters(self.col), self.row + 1)
    }
}

/// Convert a zero-based column index to letters (bijective base 26).
fn col_to_letters(mut col: u32) -> String {
    let mut letters = Vec::new();
    loop {
        letters.push(b'A' + (col % 26) as u8);
        if col < 26 {
            break;
        }
        col = col / 26 - 1;
    }
    letters.reverse();
    String::from_utf8(letters).expect("ASCII letters")
}

/// Parse column letters to a zero-based index; `None` on overflow/empty.
fn parse_col_letters(letters: &str) -> Option<u32> {
    let mut col: u64 = 0;
    for c in letters.chars() {
        let d = (c.to_ascii_uppercase() as u8).checked_sub(b'A')? as u64;
        if d >= 26 {
            return None;
        }
        col = col * 26 + d + 1;
        if col > u32::MAX as u64 {
            return None;
        }
    }
    col.checked_sub(1).map(|c| c as u32)
}

/// A rectangular, inclusive cell range. A single cell is a 1×1 range.
///
/// Displayed as `"B2"` when 1×1, else `"B2:D4"`; parsing accepts both and
/// normalizes corner order (`"D4:B2"` parses to the same range as
/// `"B2:D4"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Range {
    /// Top-left corner (minimum row and column).
    pub start: CellRef,
    /// Bottom-right corner (maximum row and column), inclusive.
    pub end: CellRef,
}

impl Range {
    /// A range from any two corners; normalizes so `start` ≤ `end`.
    pub fn new(a: CellRef, b: CellRef) -> Self {
        Range {
            start: CellRef::new(a.row.min(b.row), a.col.min(b.col)),
            end: CellRef::new(a.row.max(b.row), a.col.max(b.col)),
        }
    }

    /// The 1×1 range over a single cell.
    pub fn cell(c: CellRef) -> Self {
        Range { start: c, end: c }
    }

    /// Parse `"B2"` or `"B2:D4"`.
    pub fn parse(text: &str) -> Result<Self, DocError> {
        match text.split_once(':') {
            Some((a, b)) => Ok(Range::new(CellRef::parse(a)?, CellRef::parse(b)?)),
            None => Ok(Range::cell(CellRef::parse(text)?)),
        }
    }

    /// True for 1×1 ranges.
    pub fn is_single_cell(self) -> bool {
        self.start == self.end
    }

    /// Number of cells covered.
    pub fn cell_count(self) -> u64 {
        (self.end.row - self.start.row + 1) as u64 * (self.end.col - self.start.col + 1) as u64
    }

    /// True if the cell lies inside the range.
    pub fn contains(self, c: CellRef) -> bool {
        (self.start.row..=self.end.row).contains(&c.row)
            && (self.start.col..=self.end.col).contains(&c.col)
    }

    /// Iterate cells in row-major order.
    pub fn cells(self) -> impl Iterator<Item = CellRef> {
        let (r0, r1, c0, c1) = (self.start.row, self.end.row, self.start.col, self.end.col);
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| CellRef::new(r, c)))
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_single_cell() {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}:{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_parse_and_display() {
        for (text, row, col) in
            [("A1", 0, 0), ("B2", 1, 1), ("Z10", 9, 25), ("AA1", 0, 26), ("AB3", 2, 27), ("BA7", 6, 52)]
        {
            let c = CellRef::parse(text).unwrap();
            assert_eq!((c.row, c.col), (row, col), "{text}");
            assert_eq!(c.to_string(), text);
        }
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(CellRef::parse("b2").unwrap(), CellRef::new(1, 1));
        assert_eq!(CellRef::parse("aa10").unwrap(), CellRef::new(9, 26));
    }

    #[test]
    fn bad_cell_refs_rejected() {
        for bad in ["", "1A", "B", "7", "B0", "B-1", "B2x", "Ω3"] {
            assert!(CellRef::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn column_letters_roundtrip_bijective_base26() {
        for col in [0u32, 1, 25, 26, 27, 51, 52, 701, 702, 703, 18277] {
            let letters = col_to_letters(col);
            assert_eq!(parse_col_letters(&letters), Some(col), "col {col} → {letters}");
        }
        assert_eq!(col_to_letters(701), "ZZ");
        assert_eq!(col_to_letters(702), "AAA");
    }

    #[test]
    fn range_parse_single_and_rect() {
        let r = Range::parse("B2").unwrap();
        assert!(r.is_single_cell());
        assert_eq!(r.cell_count(), 1);
        let r = Range::parse("B2:D4").unwrap();
        assert_eq!(r.cell_count(), 9);
        assert_eq!(r.to_string(), "B2:D4");
    }

    #[test]
    fn range_normalizes_corners() {
        assert_eq!(Range::parse("D4:B2").unwrap(), Range::parse("B2:D4").unwrap());
        assert_eq!(Range::parse("B4:D2").unwrap(), Range::parse("B2:D4").unwrap());
    }

    #[test]
    fn range_contains_and_iterates_row_major() {
        let r = Range::parse("B2:C3").unwrap();
        assert!(r.contains(CellRef::parse("B2").unwrap()));
        assert!(r.contains(CellRef::parse("C3").unwrap()));
        assert!(!r.contains(CellRef::parse("A1").unwrap()));
        assert!(!r.contains(CellRef::parse("D3").unwrap()));
        let cells: Vec<String> = r.cells().map(|c| c.to_string()).collect();
        assert_eq!(cells, vec!["B2", "C2", "B3", "C3"]);
    }

    #[test]
    fn single_cell_display_has_no_colon() {
        assert_eq!(Range::cell(CellRef::new(0, 0)).to_string(), "A1");
    }
}
