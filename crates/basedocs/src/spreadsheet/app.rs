//! The spreadsheet application façade: open workbooks, selection, and the
//! [`BaseApplication`] implementation.

use super::cellref::Range;
use super::workbook::Workbook;
use crate::app::{Address, BaseApplication};
use crate::common::{DocError, DocKind};
use std::collections::BTreeMap;
use std::fmt;

/// Largest range `extract_content` will materialize. Addresses come from
/// persisted pads, so a corrupt or hostile range (`A1:ZZ999999`) must be
/// rejected, not allocated.
pub const MAX_EXTRACT_CELLS: u64 = 4096;

/// The Excel mark address, exactly as in paper Figure 8:
/// `fileName`, `sheetName`, `range`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpreadsheetAddress {
    pub file_name: String,
    pub sheet_name: String,
    pub range: Range,
}

impl fmt::Display for SpreadsheetAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}!{}", self.file_name, self.sheet_name, self.range)
    }
}

impl Address for SpreadsheetAddress {
    fn kind() -> DocKind {
        DocKind::Spreadsheet
    }

    fn to_fields(&self) -> Vec<(String, String)> {
        vec![
            ("fileName".into(), self.file_name.clone()),
            ("sheetName".into(), self.sheet_name.clone()),
            ("range".into(), self.range.to_string()),
        ]
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError> {
        let get = |k: &str| {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| DocError::BadAddress { message: format!("missing field {k:?}") })
        };
        Ok(SpreadsheetAddress {
            file_name: get("fileName")?,
            sheet_name: get("sheetName")?,
            range: Range::parse(&get("range")?)?,
        })
    }

    fn file_name(&self) -> &str {
        &self.file_name
    }
}

/// The simulated Excel: a set of open workbooks plus a selection.
#[derive(Debug, Default)]
pub struct SpreadsheetApp {
    /// Open workbooks by file name (sorted map for deterministic listings).
    workbooks: BTreeMap<String, Workbook>,
    /// The current selection, if any.
    selection: Option<SpreadsheetAddress>,
}

impl SpreadsheetApp {
    /// An application instance with no open documents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (register) a workbook. Errors if one with the same file name
    /// is already open.
    pub fn open(&mut self, workbook: Workbook) -> Result<(), DocError> {
        if self.workbooks.contains_key(&workbook.name) {
            return Err(DocError::AlreadyOpen { name: workbook.name.clone() });
        }
        self.workbooks.insert(workbook.name.clone(), workbook);
        Ok(())
    }

    /// Close a workbook; clears the selection if it pointed there.
    pub fn close(&mut self, file_name: &str) -> Result<Workbook, DocError> {
        let wb = self
            .workbooks
            .remove(file_name)
            .ok_or_else(|| DocError::NoSuchDocument { name: file_name.to_string() })?;
        if self.selection.as_ref().is_some_and(|s| s.file_name == file_name) {
            self.selection = None;
        }
        Ok(wb)
    }

    /// Read access to an open workbook.
    pub fn workbook(&self, file_name: &str) -> Result<&Workbook, DocError> {
        self.workbooks
            .get(file_name)
            .ok_or_else(|| DocError::NoSuchDocument { name: file_name.to_string() })
    }

    /// Write access to an open workbook (the base application keeps
    /// editing its own data, independent of the superimposed layer).
    pub fn workbook_mut(&mut self, file_name: &str) -> Result<&mut Workbook, DocError> {
        self.workbooks
            .get_mut(file_name)
            .ok_or_else(|| DocError::NoSuchDocument { name: file_name.to_string() })
    }

    /// User action: select a range. This is what makes
    /// [`BaseApplication::current_selection`] meaningful — the paper's
    /// "address of a currently selected information element".
    pub fn select(&mut self, file: &str, sheet: &str, range_text: &str) -> Result<(), DocError> {
        let range = Range::parse(range_text)?;
        let addr = SpreadsheetAddress {
            file_name: file.to_string(),
            sheet_name: sheet.to_string(),
            range,
        };
        self.validate(&addr)?;
        self.selection = Some(addr);
        Ok(())
    }

    /// User action: select a workbook's defined name (robust addressing —
    /// the range a name denotes can move without invalidating anything).
    pub fn select_name(&mut self, file: &str, name: &str) -> Result<(), DocError> {
        let wb = self.workbook(file)?;
        let (sheet, range) = wb.resolve_name(name).ok_or_else(|| DocError::BadAddress {
            message: format!("no defined name {name:?} in {file:?}"),
        })?;
        let addr = SpreadsheetAddress {
            file_name: file.to_string(),
            sheet_name: sheet.to_string(),
            range,
        };
        self.selection = Some(addr);
        Ok(())
    }

    /// Find every cell whose displayed value contains `needle`
    /// (case-insensitive), across all open workbooks — the application's
    /// find-all dialog. Results are in (file, sheet, row, col) order.
    pub fn find_text(&self, needle: &str) -> Vec<SpreadsheetAddress> {
        let lower = needle.to_lowercase();
        let mut out = Vec::new();
        for (file, wb) in &self.workbooks {
            for sheet in wb.sheets() {
                for (cell, _) in sheet.cells_snapshot() {
                    if sheet.value(cell).to_string().to_lowercase().contains(&lower) {
                        out.push(SpreadsheetAddress {
                            file_name: file.clone(),
                            sheet_name: sheet.name.clone(),
                            range: Range::cell(cell),
                        });
                    }
                }
            }
        }
        out
    }

    /// Check an address against open documents without selecting it.
    fn validate(&self, addr: &SpreadsheetAddress) -> Result<(), DocError> {
        let wb = self.workbook(&addr.file_name)?;
        wb.sheet(&addr.sheet_name).ok_or_else(|| DocError::Dangling {
            message: format!("no sheet {:?} in {:?}", addr.sheet_name, addr.file_name),
        })?;
        Ok(())
    }
}

impl BaseApplication for SpreadsheetApp {
    type Addr = SpreadsheetAddress;

    fn app_name(&self) -> &'static str {
        "Spreadsheet"
    }

    fn open_documents(&self) -> Vec<String> {
        self.workbooks.keys().cloned().collect()
    }

    fn current_selection(&self) -> Result<SpreadsheetAddress, DocError> {
        self.selection.clone().ok_or(DocError::NoSelection)
    }

    fn navigate_to(&mut self, addr: &SpreadsheetAddress) -> Result<(), DocError> {
        // "tell Microsoft Excel to open the file, activate the worksheet,
        // and select the appropriate range" (paper §4.2).
        self.validate(addr)?;
        self.selection = Some(addr.clone());
        Ok(())
    }

    fn extract_content(&self, addr: &SpreadsheetAddress) -> Result<String, DocError> {
        let wb = self.workbook(&addr.file_name)?;
        let sheet = wb.sheet(&addr.sheet_name).ok_or_else(|| DocError::Dangling {
            message: format!("no sheet {:?} in {:?}", addr.sheet_name, addr.file_name),
        })?;
        // Addresses arrive from persisted pads, not just live selections:
        // refuse absurd ranges instead of materializing them.
        if addr.range.cell_count() > MAX_EXTRACT_CELLS {
            return Err(DocError::BadAddress {
                message: format!(
                    "range {} covers {} cells (extract limit {MAX_EXTRACT_CELLS})",
                    addr.range,
                    addr.range.cell_count(),
                ),
            });
        }
        // A row of values per range row, tab-separated — what a clipboard
        // copy of the range would give.
        let mut rows: Vec<String> = Vec::new();
        for row in addr.range.start.row..=addr.range.end.row {
            let mut cells = Vec::new();
            for col in addr.range.start.col..=addr.range.end.col {
                cells.push(sheet.value(super::CellRef::new(row, col)).to_string());
            }
            rows.push(cells.join("\t"));
        }
        Ok(rows.join("\n"))
    }

    fn display_in_place(&self, addr: &SpreadsheetAddress) -> Result<String, DocError> {
        let wb = self.workbook(&addr.file_name)?;
        let sheet = wb.sheet(&addr.sheet_name).ok_or_else(|| DocError::Dangling {
            message: format!("no sheet {:?} in {:?}", addr.sheet_name, addr.file_name),
        })?;
        Ok(format!(
            "── {} — {} [{}] ──\n{}",
            self.app_name(),
            addr.file_name,
            addr.sheet_name,
            sheet.render(Some(addr.range))
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_with_meds() -> SpreadsheetApp {
        let mut wb = Workbook::new("medications.xls");
        let sheet = wb.sheet_mut("Sheet1").unwrap();
        sheet.set_a1("A1", "Lasix").unwrap();
        sheet.set_a1("B1", "40").unwrap();
        sheet.set_a1("A2", "Captopril").unwrap();
        sheet.set_a1("B2", "12.5").unwrap();
        let mut app = SpreadsheetApp::new();
        app.open(wb).unwrap();
        app
    }

    #[test]
    fn selection_then_current_selection() {
        let mut app = app_with_meds();
        assert!(matches!(app.current_selection(), Err(DocError::NoSelection)));
        app.select("medications.xls", "Sheet1", "A1:B1").unwrap();
        let addr = app.current_selection().unwrap();
        assert_eq!(addr.to_string(), "medications.xls!Sheet1!A1:B1");
    }

    #[test]
    fn navigate_to_sets_selection() {
        let mut app = app_with_meds();
        let addr = SpreadsheetAddress {
            file_name: "medications.xls".into(),
            sheet_name: "Sheet1".into(),
            range: Range::parse("A2").unwrap(),
        };
        app.navigate_to(&addr).unwrap();
        assert_eq!(app.current_selection().unwrap(), addr);
    }

    #[test]
    fn navigate_to_missing_targets_fails() {
        let mut app = app_with_meds();
        let mut addr = SpreadsheetAddress {
            file_name: "other.xls".into(),
            sheet_name: "Sheet1".into(),
            range: Range::parse("A1").unwrap(),
        };
        assert!(matches!(app.navigate_to(&addr), Err(DocError::NoSuchDocument { .. })));
        addr.file_name = "medications.xls".into();
        addr.sheet_name = "Missing".into();
        assert!(matches!(app.navigate_to(&addr), Err(DocError::Dangling { .. })));
    }

    #[test]
    fn extract_content_joins_rows_and_cols() {
        let app = app_with_meds();
        let addr = SpreadsheetAddress {
            file_name: "medications.xls".into(),
            sheet_name: "Sheet1".into(),
            range: Range::parse("A1:B2").unwrap(),
        };
        assert_eq!(app.extract_content(&addr).unwrap(), "Lasix\t40\nCaptopril\t12.5");
    }

    #[test]
    fn display_in_place_highlights() {
        let app = app_with_meds();
        let addr = SpreadsheetAddress {
            file_name: "medications.xls".into(),
            sheet_name: "Sheet1".into(),
            range: Range::parse("B1").unwrap(),
        };
        let view = app.display_in_place(&addr).unwrap();
        assert!(view.contains("[40]"), "{view}");
        assert!(view.contains("medications.xls"), "{view}");
    }

    #[test]
    fn address_fields_roundtrip_figure8_shape() {
        let addr = SpreadsheetAddress {
            file_name: "meds.xls".into(),
            sheet_name: "Current".into(),
            range: Range::parse("C3:D9").unwrap(),
        };
        let fields = addr.to_fields();
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["fileName", "sheetName", "range"], "Figure 8 field names");
        assert_eq!(SpreadsheetAddress::from_fields(&fields).unwrap(), addr);
    }

    #[test]
    fn from_fields_rejects_missing_and_bad() {
        assert!(SpreadsheetAddress::from_fields(&[("fileName".into(), "f".into())]).is_err());
        let bad = vec![
            ("fileName".into(), "f".into()),
            ("sheetName".into(), "s".into()),
            ("range".into(), "not-a-range".into()),
        ];
        assert!(SpreadsheetAddress::from_fields(&bad).is_err());
    }

    #[test]
    fn select_by_defined_name() {
        let mut app = app_with_meds();
        app.workbook_mut("medications.xls")
            .unwrap()
            .define_name("FirstMed", "Sheet1", Range::parse("A1:B1").unwrap())
            .unwrap();
        app.select_name("medications.xls", "FirstMed").unwrap();
        assert_eq!(
            app.current_selection().unwrap().to_string(),
            "medications.xls!Sheet1!A1:B1"
        );
        assert!(matches!(
            app.select_name("medications.xls", "Ghost"),
            Err(DocError::BadAddress { .. })
        ));
    }

    #[test]
    fn close_clears_matching_selection() {
        let mut app = app_with_meds();
        app.select("medications.xls", "Sheet1", "A1").unwrap();
        app.close("medications.xls").unwrap();
        assert!(matches!(app.current_selection(), Err(DocError::NoSelection)));
        assert!(app.open_documents().is_empty());
    }

    #[test]
    fn duplicate_open_rejected() {
        let mut app = app_with_meds();
        assert!(matches!(
            app.open(Workbook::new("medications.xls")),
            Err(DocError::AlreadyOpen { .. })
        ));
    }

    #[test]
    fn address_is_live_tracks_document_changes() {
        let mut app = app_with_meds();
        let addr = SpreadsheetAddress {
            file_name: "medications.xls".into(),
            sheet_name: "Sheet1".into(),
            range: Range::parse("A1").unwrap(),
        };
        assert!(app.address_is_live(&addr));
        app.close("medications.xls").unwrap();
        assert!(!app.address_is_live(&addr));
    }

    #[test]
    fn extract_refuses_absurd_ranges() {
        // A persisted pad can hand us any range text; a huge one must be
        // rejected as a bad address, not materialized cell by cell.
        let app = app_with_meds();
        let addr = SpreadsheetAddress {
            file_name: "medications.xls".into(),
            sheet_name: "Sheet1".into(),
            range: Range::parse("A1:ZZ99999").unwrap(),
        };
        let err = app.extract_content(&addr).unwrap_err();
        assert!(matches!(err, DocError::BadAddress { .. }), "{err}");
        assert!(err.to_string().contains("extract limit"), "{err}");
        // An in-bounds range of ordinary size still extracts.
        let small = SpreadsheetAddress { range: Range::parse("A1:B2").unwrap(), ..addr };
        assert!(small.range.cell_count() <= MAX_EXTRACT_CELLS);
        assert!(app.extract_content(&small).is_ok());
    }
}
