//! The spreadsheet engine: the Excel stand-in.
//!
//! SLIMPad's flagship mark type addresses "a cell or range of cells within
//! the workbook, using row and column positions" (paper §4.2, Figure 8:
//! `fileName`/`sheetName`/`range`). This module provides a workbook engine
//! rich enough to exercise that addressing for real:
//!
//! * [`CellRef`]/[`Range`] — A1-style references (`B2`, `C3:F9`) with
//!   parse/print round-tripping;
//! * [`CellValue`] — empty/number/text/bool/error cell contents;
//! * [`formula`] — a recursive-descent formula evaluator (`=SUM(B2:B9)*2`)
//!   with cell/range references, cycle detection, and the core function
//!   library, so medication-list examples can compute totals the way the
//!   clinicians' real spreadsheets do;
//! * [`Workbook`]/[`Sheet`] — multi-sheet storage with a selection model;
//! * [`SpreadsheetApp`] — the open-documents + selection façade
//!   implementing [`crate::BaseApplication`].

mod app;
mod edits;
mod cellref;
pub mod csv;
pub mod formula;
pub mod gen;
mod value;
mod workbook;

pub use app::{SpreadsheetAddress, SpreadsheetApp};
pub use gen::{flowsheet, Flowsheet, FlowsheetSpec};
pub use cellref::{CellRef, Range};
pub use value::CellValue;
pub use workbook::{Sheet, Workbook};
