//! CSV import/export for sheets — how tabular documents actually arrive
//! in a hospital IT landscape (exports from the pharmacy system, lab
//! interface dumps). RFC-4180-style: quoted fields, doubled quotes,
//! embedded commas and newlines.

use super::cellref::CellRef;
use super::workbook::Sheet;
use crate::common::DocError;

/// Parse CSV text into rows of fields.
///
/// Handles quoted fields (`"a, b"`), escaped quotes (`""`), embedded
/// newlines inside quotes, and both `\n` and `\r\n` row separators. A
/// trailing newline does not produce an empty final row.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, DocError> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any_char = false;
    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    return Err(DocError::Content {
                        message: format!("stray quote inside unquoted field (row {})", rows.len() + 1),
                    });
                }
            }
            ',' => {
                row.push(std::mem::take(&mut field));
            }
            '\r' => {
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            '\n' => {
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            other => field.push(other),
        }
    }
    if in_quotes {
        return Err(DocError::Content { message: "unterminated quoted field".into() });
    }
    if any_char && (!field.is_empty() || !row.is_empty()) {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Quote a field if it needs it.
fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl Sheet {
    /// Fill the sheet from CSV text, starting at A1. Each CSV field goes
    /// through the normal entry-bar classification (numbers become
    /// numbers, `=`-prefixed fields become formulas).
    pub fn import_csv(&mut self, text: &str) -> Result<(), DocError> {
        for (r, row) in parse_csv(text)?.into_iter().enumerate() {
            for (c, field) in row.into_iter().enumerate() {
                self.set(CellRef::new(r as u32, c as u32), &field)?;
            }
        }
        Ok(())
    }

    /// Export the used range as CSV (evaluated values, not formulas).
    /// Empty sheets export as the empty string.
    pub fn export_csv(&self) -> String {
        let Some(used) = self.used_range() else {
            return String::new();
        };
        let mut out = String::new();
        for row in used.start.row..=used.end.row {
            let mut fields = Vec::new();
            for col in used.start.col..=used.end.col {
                fields.push(escape_field(&self.value(CellRef::new(row, col)).to_string()));
            }
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spreadsheet::CellValue;

    #[test]
    fn simple_grid() {
        let rows = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn quoted_fields_with_commas_quotes_newlines() {
        let rows = parse_csv("\"Lasix, IV\",\"say \"\"when\"\"\",\"two\nlines\"\n").unwrap();
        assert_eq!(rows, vec![vec!["Lasix, IV", "say \"when\"", "two\nlines"]]);
    }

    #[test]
    fn crlf_rows_and_no_trailing_newline() {
        let rows = parse_csv("a,b\r\nc,d").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn empty_fields_and_rows() {
        let rows = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(rows, vec![vec!["a", "", "c"], vec!["", "", ""]]);
        assert!(parse_csv("").unwrap().is_empty());
    }

    #[test]
    fn errors_on_malformed_quoting() {
        assert!(parse_csv("ab\"c,d\n").is_err());
        assert!(parse_csv("\"unterminated\n").is_err());
    }

    #[test]
    fn import_classifies_and_computes() {
        let mut sheet = Sheet::new("import");
        sheet.import_csv("Drug,Dose\nLasix,40\nKCl,20\nTotal,=SUM(B2:B3)\n").unwrap();
        assert_eq!(sheet.value(CellRef::parse("B2").unwrap()), CellValue::Number(40.0));
        assert_eq!(sheet.value(CellRef::parse("B4").unwrap()), CellValue::Number(60.0));
        assert_eq!(sheet.value(CellRef::parse("A1").unwrap()), CellValue::Text("Drug".into()));
    }

    #[test]
    fn export_import_roundtrip_on_values() {
        let mut sheet = Sheet::new("src");
        sheet.import_csv("a,\"b,1\",3\nx,,\"q\"\"q\"\n").unwrap();
        let csv = sheet.export_csv();
        let mut back = Sheet::new("dst");
        back.import_csv(&csv).unwrap();
        assert_eq!(back.export_csv(), csv, "export→import→export is stable");
    }

    #[test]
    fn export_evaluates_formulas() {
        let mut sheet = Sheet::new("f");
        sheet.import_csv("2,=A1*21\n").unwrap();
        assert_eq!(sheet.export_csv(), "2,42\n");
    }

    #[test]
    fn empty_sheet_exports_empty() {
        assert_eq!(Sheet::new("e").export_csv(), "");
    }
}
