//! Deterministic flowsheet generation: the spreadsheet hook for
//! hospital-scale corpus synthesis (slimgen).
//!
//! A generated flowsheet is the workhorse document of the scaled-up
//! scenario corpus: an hourly vitals grid (ward, heart rate, blood
//! pressure, SpO₂, temperature, electrolytes) followed by a computed
//! summary block that exercises the conditional-aggregation functions
//! (`COUNTIFS`/`AVERAGEIFS`/`MAXIFS`/`MINIFS`/`IFS`) and the reference
//! union/intersection operators. The generator returns the mark-worthy
//! coordinates — the data grid, per-vital column ranges, and each
//! computed cell — so callers can superimpose range-addressed and
//! computed-cell marks without re-deriving the layout.
//!
//! Everything is a pure function of [`FlowsheetSpec`]: the same spec
//! yields a byte-identical workbook, which is what lets slimgen promise
//! seed-stable corpus digests.

use super::cellref::{CellRef, Range};
use super::workbook::Workbook;

/// What to generate. Same spec ⇒ identical workbook.
#[derive(Debug, Clone)]
pub struct FlowsheetSpec {
    /// Workbook file name, e.g. `"flowsheet-0042.xls"`.
    pub file_name: String,
    /// Patient label stamped into the title cell.
    pub patient: String,
    /// Number of hourly observation rows (clamped to at least 4 so the
    /// summary block always has data under it).
    pub hours: usize,
    /// RNG seed for the vitals series.
    pub seed: u64,
}

/// A generated flowsheet plus the coordinates worth marking.
pub struct Flowsheet {
    pub workbook: Workbook,
    /// The sheet holding the grid (always `"Flowsheet"`).
    pub sheet: String,
    /// The full observation grid (header row excluded).
    pub data_range: Range,
    /// Per-vital column ranges over the data rows, `(label, range)`.
    pub vital_columns: Vec<(String, Range)>,
    /// The computed summary cells, `(label, cell)` — each holds a
    /// formula using the IFS family or reference union/intersection.
    pub computed_cells: Vec<(String, CellRef)>,
}

/// splitmix64 — tiny, dependency-free, deterministic.
struct GenRng(u64);

impl GenRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `lo..=hi`.
    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

const WARDS: [&str; 3] = ["icu", "ward", "stepdown"];

/// Generate a flowsheet workbook from a spec.
pub fn flowsheet(spec: &FlowsheetSpec) -> Flowsheet {
    let hours = spec.hours.max(4);
    let mut rng = GenRng(spec.seed);
    let mut wb = Workbook::new(spec.file_name.clone());
    let sheet_name = "Flowsheet";
    let sheet = wb.add_sheet(sheet_name).expect("fresh workbook");

    // Header row.
    let headers = ["Time", "Ward", "HR", "SBP", "SpO2", "Temp", "Na", "K"];
    for (col, h) in headers.iter().enumerate() {
        sheet.set(CellRef::new(0, col as u32), h).expect("header");
    }

    // Observation rows 1..=hours. The first two rows are pinned to icu
    // and ward so every conditional aggregate has a non-empty match set.
    for row in 1..=hours as u32 {
        let ward = match row {
            1 => "icu",
            2 => "ward",
            // Skew: the ICU produces the most observations.
            _ => WARDS[[0, 0, 1, 2][rng.in_range(0, 3) as usize]],
        };
        let hr = rng.in_range(52, 135);
        let sbp = rng.in_range(85, 165);
        let spo2 = rng.in_range(88, 100);
        let temp = 36.0 + rng.in_range(0, 25) as f64 / 10.0;
        let na = rng.in_range(128, 148);
        let k = 3.0 + rng.in_range(0, 28) as f64 / 10.0;
        let cells: [(u32, String); 8] = [
            (0, format!("{:02}:00", (row - 1) % 24)),
            (1, ward.to_string()),
            (2, hr.to_string()),
            (3, sbp.to_string()),
            (4, spo2.to_string()),
            (5, format!("{temp:.1}")),
            (6, na.to_string()),
            (7, format!("{k:.1}")),
        ];
        for (col, text) in cells {
            sheet.set(CellRef::new(row, col), &text).expect("data cell");
        }
    }

    let last = hours as u32; // 0-based last data row
    let data_range = Range::new(CellRef::new(1, 0), CellRef::new(last, 7));
    let col_range = |col: u32| Range::new(CellRef::new(1, col), CellRef::new(last, col));
    let vital_columns: Vec<(String, Range)> = headers[1..]
        .iter()
        .enumerate()
        .map(|(i, h)| (h.to_string(), col_range(i as u32 + 1)))
        .collect();
    let a1 = |col: u32| col_range(col).to_string(); // e.g. "C2:C25"

    // Computed summary block: label in column A, formula in column B.
    let (ward_r, hr_r, sbp_r, spo2_r, k_r) = (a1(1), a1(2), a1(3), a1(4), a1(7));
    let tachy_cell = CellRef::new(last + 3, 1); // referenced by the IFS band
    let mid = 1 + hours as u32 / 2;
    let summary: Vec<(&str, String)> = vec![
        ("icu mean hr", format!("=AVERAGEIFS({hr_r}, {ward_r}, \"icu\")")),
        ("icu tachy hours", format!("=COUNTIFS({ward_r}, \"icu\", {hr_r}, \">110\")")),
        ("ward max sbp", format!("=MAXIFS({sbp_r}, {ward_r}, \"ward\")")),
        ("icu min spo2", format!("=MINIFS({spo2_r}, {ward_r}, \"icu\")")),
        (
            "risk band",
            format!("=IFS({tachy_cell}>6, \"high\", {tachy_cell}>2, \"guarded\", TRUE, \"stable\")"),
        ),
        // Union: the first and last two heart-rate readings together.
        (
            "hr edges mean",
            format!(
                "=AVERAGE((C2:C3,{}:{}))",
                CellRef::new(last - 1, 2),
                CellRef::new(last, 2)
            ),
        ),
        // Intersection: the potassium column clipped to the mid-stay row.
        ("mid-stay k", format!("={k_r} A{row}:Z{row}", row = mid + 1)),
    ];
    let mut computed_cells = Vec::new();
    for (i, (label, formula)) in summary.iter().enumerate() {
        let row = last + 2 + i as u32;
        sheet.set(CellRef::new(row, 0), label).expect("summary label");
        let cell = CellRef::new(row, 1);
        sheet.set(cell, formula).expect("summary formula");
        computed_cells.push((label.to_string(), cell));
    }
    sheet
        .set(CellRef::new(last + 2 + summary.len() as u32 + 1, 0), &spec.patient)
        .expect("patient stamp");

    wb.define_name("Vitals", sheet_name, data_range).expect("fresh name");
    wb.define_name("HR", sheet_name, col_range(2)).expect("fresh name");

    Flowsheet {
        workbook: wb,
        sheet: sheet_name.to_string(),
        data_range,
        vital_columns,
        computed_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spreadsheet::CellValue;

    fn spec(seed: u64) -> FlowsheetSpec {
        FlowsheetSpec {
            file_name: "flow.xls".into(),
            patient: "Bed 4: John Smith".into(),
            hours: 24,
            seed,
        }
    }

    #[test]
    fn computed_cells_evaluate_cleanly() {
        let f = flowsheet(&spec(7));
        let sheet = f.workbook.sheet(&f.sheet).unwrap();
        for (label, cell) in &f.computed_cells {
            let v = sheet.value(*cell);
            assert!(
                !matches!(v, CellValue::Error(_) | CellValue::Empty),
                "{label} at {cell} evaluated to {v:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = flowsheet(&spec(42));
        let b = flowsheet(&spec(42));
        let sheet_a = a.workbook.sheet(&a.sheet).unwrap();
        let sheet_b = b.workbook.sheet(&b.sheet).unwrap();
        for cell in a.data_range.cells() {
            assert_eq!(sheet_a.value(cell), sheet_b.value(cell));
        }
        let c = flowsheet(&spec(43));
        let sheet_c = c.workbook.sheet(&c.sheet).unwrap();
        assert!(
            a.data_range.cells().any(|cell| sheet_a.value(cell) != sheet_c.value(cell)),
            "different seeds should produce different vitals"
        );
    }

    #[test]
    fn mark_targets_are_well_formed() {
        let f = flowsheet(&spec(1));
        assert_eq!(f.vital_columns.len(), 7);
        assert!(f.computed_cells.len() >= 6);
        assert_eq!(f.workbook.resolve_name("Vitals").unwrap().1, f.data_range);
        // The data grid holds a value in every vitals cell.
        let sheet = f.workbook.sheet(&f.sheet).unwrap();
        for (_, range) in &f.vital_columns {
            for cell in range.cells() {
                assert!(!matches!(sheet.value(cell), CellValue::Empty));
            }
        }
    }
}
