//! The formula language: parsing and evaluation of `=SUM(B2:B9)*2`-style
//! cell formulas.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! compare := concat ( ('=' | '<>' | '<' | '<=' | '>' | '>=') concat )*
//! concat  := addsub ( '&' addsub )*
//! addsub  := muldiv ( ('+' | '-') muldiv )*
//! muldiv  := power  ( ('*' | '/') power )*
//! power   := unary  ( '^' power )?            // right-associative
//! unary   := ('-' | '+')* primary
//! primary := number | string | TRUE | FALSE | ref | cell
//!          | name '(' args ')' | '(' compare ')'
//! ref     := refterm ( WS refterm )*          // whitespace = intersection
//! refterm := range | cell | '(' ref ( ',' ref )* ')'   // ',' = union
//! ```
//!
//! The reference operators follow the spreadsheet tradition: `,` inside
//! parentheses unions references (`SUM((A1:A2,C1:C2))` sums both
//! columns), whitespace between two references intersects them
//! (`SUM(A1:C3 B2:D4)` sums the overlap, `#NULL!` when disjoint). Both
//! bind tighter than any arithmetic operator and only ever apply to
//! references — `SUM(1 2)` stays a parse error.
//!
//! Evaluation is pull-based: the evaluator asks a [`CellResolver`] for
//! referenced cell values, and the workbook's resolver (see
//! `workbook.rs`) recursively evaluates referenced formulas with cycle
//! detection, reporting `#CYCLE!` exactly as a real spreadsheet flags
//! circular references.

use super::cellref::{CellRef, Range};
use super::value::CellValue;
use crate::common::DocError;

/// A parsed formula expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Number(f64),
    Text(String),
    Bool(bool),
    Cell(CellRef),
    Range(Range),
    /// Reference union: `(A1:A2,C1:C2)` — the concatenation of the
    /// member references (duplicates kept, like the spreadsheet union).
    Union(Vec<Expr>),
    /// Reference intersection: `A1:C3 B2:D4` — the cells common to both
    /// sides; empty intersections evaluate to `#NULL!`.
    Intersect { lhs: Box<Expr>, rhs: Box<Expr> },
    Unary { negate: bool, expr: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    Call { name: String, args: Vec<Expr> },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Concat,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Supplies cell values to the evaluator.
pub trait CellResolver {
    /// The evaluated value of a cell (recursively evaluating formulas).
    fn cell_value(&self, cell: CellRef) -> CellValue;
}

/// Every cell empty: the resolver for standalone expression tests.
pub struct EmptyResolver;

impl CellResolver for EmptyResolver {
    fn cell_value(&self, _cell: CellRef) -> CellValue {
        CellValue::Empty
    }
}

/// Parse formula text (without the leading `=`).
pub fn parse(text: &str) -> Result<Expr, DocError> {
    let mut p = Parser { text, pos: 0 };
    let expr = p.compare()?;
    p.skip_ws();
    if p.pos != p.text.len() {
        return Err(p.error(format!("unexpected trailing input {:?}", &p.text[p.pos..])));
    }
    Ok(expr)
}

/// Evaluate a parsed expression against a resolver.
pub fn eval(expr: &Expr, cells: &dyn CellResolver) -> CellValue {
    match expr {
        Expr::Number(n) => CellValue::Number(*n),
        Expr::Text(s) => CellValue::Text(s.clone()),
        Expr::Bool(b) => CellValue::Bool(*b),
        Expr::Cell(c) => cells.cell_value(*c),
        Expr::Range(_) | Expr::Union(_) | Expr::Intersect { .. } => {
            // A multi-cell reference in scalar position is `#VALUE!`; an
            // intersection that narrows to one cell reads that cell, and
            // an empty intersection is `#NULL!`.
            match ref_cells(expr).as_deref() {
                Some([c]) => cells.cell_value(*c),
                Some([]) => CellValue::Error("#NULL!".into()),
                _ => CellValue::Error("#VALUE!".into()),
            }
        }
        Expr::Unary { negate, expr } => {
            let v = eval(expr, cells);
            if !negate {
                return v;
            }
            match v.as_number() {
                Ok(n) => CellValue::Number(-n),
                Err(e) => e,
            }
        }
        Expr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, cells),
        Expr::Call { name, args } => eval_call(name, args, cells),
    }
}

/// Parse and evaluate in one step.
pub fn evaluate(text: &str, cells: &dyn CellResolver) -> Result<CellValue, DocError> {
    Ok(eval(&parse(text)?, cells))
}

fn eval_binary(op: BinOp, lhs: &Expr, rhs: &Expr, cells: &dyn CellResolver) -> CellValue {
    let l = eval(lhs, cells);
    let r = eval(rhs, cells);
    if let CellValue::Error(_) = l {
        return l;
    }
    if let CellValue::Error(_) = r {
        return r;
    }
    match op {
        BinOp::Concat => CellValue::Text(format!("{l}{r}")),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            compare(op, &l, &r)
        }
        _ => {
            let (a, b) = match (l.as_number(), r.as_number()) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            match op {
                BinOp::Add => CellValue::Number(a + b),
                BinOp::Sub => CellValue::Number(a - b),
                BinOp::Mul => CellValue::Number(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        CellValue::Error("#DIV/0!".into())
                    } else {
                        CellValue::Number(a / b)
                    }
                }
                BinOp::Pow => CellValue::Number(a.powf(b)),
                _ => unreachable!("comparison handled above"),
            }
        }
    }
}

fn compare(op: BinOp, l: &CellValue, r: &CellValue) -> CellValue {
    // Numbers compare numerically when both coerce; otherwise fall back to
    // case-insensitive text comparison, like spreadsheets do.
    let ordering = match (l.as_number(), r.as_number()) {
        (Ok(a), Ok(b)) => a.partial_cmp(&b),
        _ => Some(
            l.to_string().to_ascii_lowercase().cmp(&r.to_string().to_ascii_lowercase()),
        ),
    };
    let Some(ord) = ordering else {
        return CellValue::Error("#VALUE!".into());
    };
    let b = match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => ord.is_ne(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!(),
    };
    CellValue::Bool(b)
}

/// A reference expression: something the union/intersection operators
/// (and `ref_cells`) apply to.
fn is_ref_expr(expr: &Expr) -> bool {
    matches!(expr, Expr::Cell(_) | Expr::Range(_) | Expr::Union(_) | Expr::Intersect { .. })
}

/// The cells a reference expression covers, in reference order — `None`
/// for non-reference expressions. Unions concatenate (duplicates kept);
/// intersections keep the left side's order.
fn ref_cells(expr: &Expr) -> Option<Vec<CellRef>> {
    match expr {
        Expr::Cell(c) => Some(vec![*c]),
        Expr::Range(r) => Some(r.cells().collect()),
        Expr::Union(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(ref_cells(p)?);
            }
            Some(out)
        }
        Expr::Intersect { lhs, rhs } => {
            let l = ref_cells(lhs)?;
            let r = ref_cells(rhs)?;
            Some(l.into_iter().filter(|c| r.contains(c)).collect())
        }
        _ => None,
    }
}

/// Flatten arguments into scalar values: references (ranges, unions,
/// intersections) expand to their cells. An empty intersection surfaces
/// as `#NULL!`, matching the spreadsheet null-intersection error.
fn flatten_args(args: &[Expr], cells: &dyn CellResolver) -> Result<Vec<CellValue>, CellValue> {
    let mut out = Vec::new();
    for a in args {
        match ref_cells(a) {
            Some(refs) => {
                if refs.is_empty() && matches!(a, Expr::Intersect { .. }) {
                    return Err(CellValue::Error("#NULL!".into()));
                }
                for c in refs {
                    out.push(cells.cell_value(c));
                }
            }
            None => out.push(eval(a, cells)),
        }
    }
    for v in &out {
        if let CellValue::Error(_) = v {
            return Err(v.clone());
        }
    }
    Ok(out)
}

/// Numeric arguments only (empty cells and non-numeric text in ranges are
/// skipped, matching SUM/AVERAGE semantics).
fn numeric_args(args: &[Expr], cells: &dyn CellResolver) -> Result<Vec<f64>, CellValue> {
    let vals = flatten_args(args, cells)?;
    Ok(vals
        .iter()
        .filter_map(|v| match v {
            CellValue::Number(n) => Some(*n),
            CellValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        })
        .collect())
}

fn eval_call(name: &str, args: &[Expr], cells: &dyn CellResolver) -> CellValue {
    let upper = name.to_ascii_uppercase();
    let arity_error = || CellValue::Error("#VALUE!".into());
    match upper.as_str() {
        "SUM" => match numeric_args(args, cells) {
            Ok(ns) => CellValue::Number(ns.iter().sum()),
            Err(e) => e,
        },
        "AVERAGE" | "AVG" => match numeric_args(args, cells) {
            Ok(ns) if ns.is_empty() => CellValue::Error("#DIV/0!".into()),
            Ok(ns) => CellValue::Number(ns.iter().sum::<f64>() / ns.len() as f64),
            Err(e) => e,
        },
        "MIN" => match numeric_args(args, cells) {
            Ok(ns) => CellValue::Number(ns.iter().copied().fold(f64::INFINITY, f64::min)),
            Err(e) => e,
        }
        .map_empty_to_zero(),
        "MAX" => match numeric_args(args, cells) {
            Ok(ns) => CellValue::Number(ns.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            Err(e) => e,
        }
        .map_empty_to_zero(),
        "COUNT" => match numeric_args(args, cells) {
            Ok(ns) => CellValue::Number(ns.len() as f64),
            Err(e) => e,
        },
        "COUNTA" => match flatten_args(args, cells) {
            Ok(vs) => CellValue::Number(
                vs.iter().filter(|v| !matches!(v, CellValue::Empty)).count() as f64,
            ),
            Err(e) => e,
        },
        "MEDIAN" => match numeric_args(args, cells) {
            Ok(ns) if ns.is_empty() => CellValue::Error("#NUM!".into()),
            Ok(mut ns) => {
                ns.sort_by(|a, b| a.partial_cmp(b).expect("no NaN from cell values"));
                let mid = ns.len() / 2;
                let median =
                    if ns.len() % 2 == 0 { (ns[mid - 1] + ns[mid]) / 2.0 } else { ns[mid] };
                CellValue::Number(median)
            }
            Err(e) => e,
        },
        "STDEV" => match numeric_args(args, cells) {
            // Sample standard deviation (n-1), like the spreadsheet STDEV.
            Ok(ns) if ns.len() < 2 => CellValue::Error("#DIV/0!".into()),
            Ok(ns) => {
                let mean = ns.iter().sum::<f64>() / ns.len() as f64;
                let var =
                    ns.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (ns.len() - 1) as f64;
                CellValue::Number(var.sqrt())
            }
            Err(e) => e,
        },
        "COUNTIF" | "SUMIF" => {
            // (range, criterion): criterion is a value to equal, or a
            // ">n"/"<n"/">=n"/"<=n"/"<>n" comparison string.
            let [range_arg, criterion_arg] = args else {
                return arity_error();
            };
            let values = match flatten_args(std::slice::from_ref(range_arg), cells) {
                Ok(v) => v,
                Err(e) => return e,
            };
            let criterion = eval(criterion_arg, cells);
            if let CellValue::Error(_) = criterion {
                return criterion;
            }
            let matches: Vec<&CellValue> =
                values.iter().filter(|v| criterion_matches(v, &criterion)).collect();
            if upper == "COUNTIF" {
                CellValue::Number(matches.len() as f64)
            } else {
                CellValue::Number(
                    matches
                        .iter()
                        .filter_map(|v| v.as_number().ok())
                        .sum(),
                )
            }
        }
        "IFS" => {
            // (cond1, value1, cond2, value2, …): the first truthy
            // condition's value; no pair matching is `#N/A`.
            if args.is_empty() || !args.len().is_multiple_of(2) {
                return arity_error();
            }
            for pair in args.chunks(2) {
                let cond = eval(&pair[0], cells);
                if let CellValue::Error(_) = cond {
                    return cond;
                }
                if cond.is_truthy() {
                    return eval(&pair[1], cells);
                }
            }
            CellValue::Error("#N/A".into())
        }
        "COUNTIFS" => match ifs_mask(args, None, cells) {
            Ok(mask) => CellValue::Number(mask.iter().filter(|m| **m).count() as f64),
            Err(e) => e,
        },
        "SUMIFS" | "AVERAGEIFS" | "MAXIFS" | "MINIFS" => {
            // (target_range, crit_range1, crit1, [crit_range2, crit2, …]):
            // aggregate target cells whose row passes every criterion.
            let [target, rest @ ..] = args else {
                return arity_error();
            };
            let Some(values) = ref_cells(target).map(|refs| {
                refs.iter().map(|c| cells.cell_value(*c)).collect::<Vec<_>>()
            }) else {
                return arity_error();
            };
            let mask = match ifs_mask(rest, Some(values.len()), cells) {
                Ok(mask) => mask,
                Err(e) => return e,
            };
            let picked: Vec<f64> = values
                .iter()
                .zip(&mask)
                .filter(|(_, m)| **m)
                .filter_map(|(v, _)| v.as_number().ok())
                .collect();
            match upper.as_str() {
                "SUMIFS" => CellValue::Number(picked.iter().sum()),
                "AVERAGEIFS" if picked.is_empty() => CellValue::Error("#DIV/0!".into()),
                "AVERAGEIFS" => {
                    CellValue::Number(picked.iter().sum::<f64>() / picked.len() as f64)
                }
                "MAXIFS" => {
                    CellValue::Number(picked.iter().copied().fold(0.0f64, f64::max))
                }
                "MINIFS" if picked.is_empty() => CellValue::Number(0.0),
                "MINIFS" => {
                    CellValue::Number(picked.iter().copied().fold(f64::INFINITY, f64::min))
                }
                _ => unreachable!(),
            }
        }
        "ABS" | "SQRT" | "ROUND" | "NOT" | "LEN" => {
            let vals = match flatten_args(args, cells) {
                Ok(v) => v,
                Err(e) => return e,
            };
            match (upper.as_str(), vals.as_slice()) {
                ("ABS", [v]) => v.as_number().map(|n| CellValue::Number(n.abs())).unwrap_or_else(|e| e),
                ("SQRT", [v]) => v
                    .as_number()
                    .map(|n| {
                        if n < 0.0 {
                            CellValue::Error("#NUM!".into())
                        } else {
                            CellValue::Number(n.sqrt())
                        }
                    })
                    .unwrap_or_else(|e| e),
                ("ROUND", [v]) => {
                    v.as_number().map(|n| CellValue::Number(n.round())).unwrap_or_else(|e| e)
                }
                ("ROUND", [v, digits]) => match (v.as_number(), digits.as_number()) {
                    (Ok(n), Ok(d)) => {
                        let scale = 10f64.powi(d as i32);
                        CellValue::Number((n * scale).round() / scale)
                    }
                    (Err(e), _) | (_, Err(e)) => e,
                },
                ("NOT", [v]) => CellValue::Bool(!v.is_truthy()),
                ("LEN", [v]) => CellValue::Number(v.to_string().chars().count() as f64),
                _ => arity_error(),
            }
        }
        "IF" => match args {
            [cond, then_e] => {
                if eval(cond, cells).is_truthy() {
                    eval(then_e, cells)
                } else {
                    CellValue::Bool(false)
                }
            }
            [cond, then_e, else_e] => {
                let c = eval(cond, cells);
                if let CellValue::Error(_) = c {
                    return c;
                }
                if c.is_truthy() {
                    eval(then_e, cells)
                } else {
                    eval(else_e, cells)
                }
            }
            _ => arity_error(),
        },
        "AND" => match flatten_args(args, cells) {
            Ok(vs) => CellValue::Bool(vs.iter().all(CellValue::is_truthy)),
            Err(e) => e,
        },
        "OR" => match flatten_args(args, cells) {
            Ok(vs) => CellValue::Bool(vs.iter().any(CellValue::is_truthy)),
            Err(e) => e,
        },
        "CONCAT" | "CONCATENATE" => match flatten_args(args, cells) {
            Ok(vs) => CellValue::Text(vs.iter().map(|v| v.to_string()).collect()),
            Err(e) => e,
        },
        _ => CellValue::Error("#NAME?".into()),
    }
}

/// COUNTIF/SUMIF criterion matching: a `">n"`-style comparison string or
/// a direct equality value (numbers numerically, text case-insensitively).
fn criterion_matches(value: &CellValue, criterion: &CellValue) -> bool {
    if let CellValue::Text(t) = criterion {
        for (prefix, test) in [
            (">=", std::cmp::Ordering::Less), // value >= n ⇔ !(value < n)
            ("<=", std::cmp::Ordering::Greater),
            ("<>", std::cmp::Ordering::Equal),
            (">", std::cmp::Ordering::Greater),
            ("<", std::cmp::Ordering::Less),
        ] {
            if let Some(num_text) = t.strip_prefix(prefix) {
                let (Ok(v), Ok(n)) =
                    (value.as_number(), num_text.trim().parse::<f64>().map_err(|_| ()))
                else {
                    return false;
                };
                let Some(ord) = v.partial_cmp(&n) else { return false };
                return match prefix {
                    ">=" => ord != test,
                    "<=" => ord != test,
                    "<>" => ord != test,
                    ">" | "<" => ord == test,
                    _ => unreachable!(),
                };
            }
        }
    }
    match (value.as_number(), criterion.as_number()) {
        (Ok(a), Ok(b)) => a == b,
        _ => value.to_string().eq_ignore_ascii_case(&criterion.to_string()),
    }
}

/// Evaluate `(crit_range, criterion)` argument pairs into a per-position
/// keep-mask. Every criterion range must be a reference of the same
/// length, which must also match `expected` (the target-range length)
/// when one is supplied.
fn ifs_mask(
    pairs: &[Expr],
    expected: Option<usize>,
    cells: &dyn CellResolver,
) -> Result<Vec<bool>, CellValue> {
    if pairs.is_empty() || !pairs.len().is_multiple_of(2) {
        return Err(CellValue::Error("#VALUE!".into()));
    }
    let mut mask: Option<Vec<bool>> = expected.map(|n| vec![true; n]);
    for pair in pairs.chunks(2) {
        let Some(refs) = ref_cells(&pair[0]) else {
            return Err(CellValue::Error("#VALUE!".into()));
        };
        let criterion = eval(&pair[1], cells);
        if let CellValue::Error(_) = criterion {
            return Err(criterion);
        }
        let m = mask.get_or_insert_with(|| vec![true; refs.len()]);
        if m.len() != refs.len() {
            return Err(CellValue::Error("#VALUE!".into()));
        }
        for (keep, cell) in m.iter_mut().zip(&refs) {
            if *keep && !criterion_matches(&cells.cell_value(*cell), &criterion) {
                *keep = false;
            }
        }
    }
    Ok(mask.unwrap_or_default())
}

/// MIN/MAX of an empty set is 0 in classic spreadsheet semantics.
trait MapEmpty {
    fn map_empty_to_zero(self) -> CellValue;
}

impl MapEmpty for CellValue {
    fn map_empty_to_zero(self) -> CellValue {
        match self {
            CellValue::Number(n) if n.is_infinite() => CellValue::Number(0.0),
            other => other,
        }
    }
}

// ---- parser ---------------------------------------------------------------

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: String) -> DocError {
        DocError::Content { message: format!("formula error at byte {}: {message}", self.pos) }
    }

    fn rest(&self) -> &'a str {
        &self.text[self.pos..]
    }

    fn skip_ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn compare(&mut self) -> Result<Expr, DocError> {
        let mut lhs = self.concat()?;
        loop {
            // Order matters: two-character operators first.
            let op = if self.eat("<>") {
                BinOp::Ne
            } else if self.eat("<=") {
                BinOp::Le
            } else if self.eat(">=") {
                BinOp::Ge
            } else if self.eat("=") {
                BinOp::Eq
            } else if self.eat("<") {
                BinOp::Lt
            } else if self.eat(">") {
                BinOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.concat()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn concat(&mut self) -> Result<Expr, DocError> {
        let mut lhs = self.addsub()?;
        while self.eat("&") {
            let rhs = self.addsub()?;
            lhs = Expr::Binary { op: BinOp::Concat, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn addsub(&mut self) -> Result<Expr, DocError> {
        let mut lhs = self.muldiv()?;
        loop {
            let op = if self.eat("+") {
                BinOp::Add
            } else if self.eat("-") {
                BinOp::Sub
            } else {
                return Ok(lhs);
            };
            let rhs = self.muldiv()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn muldiv(&mut self) -> Result<Expr, DocError> {
        let mut lhs = self.power()?;
        loop {
            let op = if self.eat("*") {
                BinOp::Mul
            } else if self.eat("/") {
                BinOp::Div
            } else {
                return Ok(lhs);
            };
            let rhs = self.power()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn power(&mut self) -> Result<Expr, DocError> {
        let base = self.unary()?;
        if self.eat("^") {
            let exp = self.power()?; // right-associative
            return Ok(Expr::Binary { op: BinOp::Pow, lhs: Box::new(base), rhs: Box::new(exp) });
        }
        Ok(base)
    }

    fn unary(&mut self) -> Result<Expr, DocError> {
        let mut negate = false;
        loop {
            if self.eat("-") {
                negate = !negate;
            } else if self.eat("+") {
                // no-op sign
            } else {
                break;
            }
        }
        let primary = self.primary()?;
        if negate {
            Ok(Expr::Unary { negate: true, expr: Box::new(primary) })
        } else {
            Ok(primary)
        }
    }

    fn primary(&mut self) -> Result<Expr, DocError> {
        self.skip_ws();
        let rest = self.rest();
        let Some(first) = rest.chars().next() else {
            return Err(self.error("unexpected end of formula".into()));
        };
        if first == '(' {
            self.pos += 1;
            let inner = self.compare()?;
            // Reference union: `(ref1, ref2, …)`. A comma after a
            // reference inside grouping parens unions further references;
            // after a non-reference it stays a parse error.
            if is_ref_expr(&inner) && self.eat(",") {
                let mut members = vec![inner];
                loop {
                    let member = self.compare()?;
                    if !is_ref_expr(&member) {
                        return Err(self.error("union members must be references".into()));
                    }
                    members.push(member);
                    if !self.eat(",") {
                        break;
                    }
                }
                if !self.eat(")") {
                    return Err(self.error("missing ')'".into()));
                }
                return Ok(self.maybe_intersect(Expr::Union(members)));
            }
            if !self.eat(")") {
                return Err(self.error("missing ')'".into()));
            }
            return Ok(self.maybe_intersect(inner));
        }
        if first == '"' {
            return self.string_literal();
        }
        if first.is_ascii_digit() || first == '.' {
            return self.number();
        }
        if first.is_ascii_alphabetic() || first == '_' {
            return self.name_or_ref();
        }
        Err(self.error(format!("unexpected character {first:?}")))
    }

    fn string_literal(&mut self) -> Result<Expr, DocError> {
        debug_assert!(self.rest().starts_with('"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            let rest = self.rest();
            let Some(c) = rest.chars().next() else {
                return Err(self.error("unterminated string literal".into()));
            };
            self.pos += c.len_utf8();
            if c == '"' {
                // Doubled quote is an escaped quote, per spreadsheet rules.
                if self.rest().starts_with('"') {
                    self.pos += 1;
                    out.push('"');
                    continue;
                }
                return Ok(Expr::Text(out));
            }
            out.push(c);
        }
    }

    fn number(&mut self) -> Result<Expr, DocError> {
        let start = self.pos;
        let mut seen_dot = false;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == '.' && !seen_dot {
                seen_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        self.text[start..self.pos]
            .parse()
            .map(Expr::Number)
            .map_err(|_| self.error(format!("bad number {:?}", &self.text[start..self.pos])))
    }

    /// A name: function call, cell ref, range, or TRUE/FALSE.
    fn name_or_ref(&mut self) -> Result<Expr, DocError> {
        let start = self.pos;
        while let Some(c) = self.rest().chars().next() {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.text[start..self.pos];
        match word.to_ascii_uppercase().as_str() {
            "TRUE" => return Ok(Expr::Bool(true)),
            "FALSE" => return Ok(Expr::Bool(false)),
            _ => {}
        }
        self.skip_ws();
        if self.rest().starts_with('(') {
            self.pos += 1;
            let mut args = Vec::new();
            self.skip_ws();
            if !self.eat(")") {
                loop {
                    args.push(self.arg()?);
                    if self.eat(",") {
                        continue;
                    }
                    if self.eat(")") {
                        break;
                    }
                    return Err(self.error("expected ',' or ')' in argument list".into()));
                }
            }
            return Ok(Expr::Call { name: word.to_string(), args });
        }
        // Range (A1:B2) or single cell?
        if self.rest().starts_with(':') {
            let save = self.pos;
            self.pos += 1;
            let second_start = self.pos;
            while let Some(c) = self.rest().chars().next() {
                if c.is_ascii_alphanumeric() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let second = &self.text[second_start..self.pos];
            match (CellRef::parse(word), CellRef::parse(second)) {
                (Ok(a), Ok(b)) => {
                    return Ok(self.maybe_intersect(Expr::Range(Range::new(a, b))));
                }
                _ => self.pos = save,
            }
        }
        match CellRef::parse(word) {
            Ok(cell) => Ok(self.maybe_intersect(Expr::Cell(cell))),
            Err(_) => Err(self.error(format!("unknown name {word:?}"))),
        }
    }

    /// After a reference term, whitespace followed by another reference
    /// term is the intersection operator. Anything else (an arithmetic
    /// operator, a non-reference, end of input) leaves `lhs` untouched.
    fn maybe_intersect(&mut self, lhs: Expr) -> Expr {
        if !is_ref_expr(&lhs) {
            return lhs;
        }
        let mut out = lhs;
        while let Some(rhs) = self.try_ref_term() {
            out = Expr::Intersect { lhs: Box::new(out), rhs: Box::new(rhs) };
        }
        out
    }

    /// Try to parse a reference term at the current position; restore the
    /// position and return `None` if what follows is not a reference.
    fn try_ref_term(&mut self) -> Option<Expr> {
        let save = self.pos;
        self.skip_ws();
        let rest = self.rest();
        let parsed = if rest.starts_with('(') {
            self.primary()
        } else if rest.starts_with(|c: char| c.is_ascii_alphabetic()) {
            self.name_or_ref()
        } else {
            self.pos = save;
            return None;
        };
        match parsed {
            Ok(expr) if is_ref_expr(&expr) => Some(expr),
            _ => {
                self.pos = save;
                None
            }
        }
    }

    /// A function argument: a bare range is allowed here.
    fn arg(&mut self) -> Result<Expr, DocError> {
        self.compare()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapResolver(HashMap<CellRef, CellValue>);

    impl MapResolver {
        fn new(entries: &[(&str, CellValue)]) -> Self {
            MapResolver(
                entries
                    .iter()
                    .map(|(r, v)| (CellRef::parse(r).unwrap(), v.clone()))
                    .collect(),
            )
        }
    }

    impl CellResolver for MapResolver {
        fn cell_value(&self, cell: CellRef) -> CellValue {
            self.0.get(&cell).cloned().unwrap_or(CellValue::Empty)
        }
    }

    fn n(x: f64) -> CellValue {
        CellValue::Number(x)
    }

    fn ev(text: &str) -> CellValue {
        evaluate(text, &EmptyResolver).unwrap()
    }

    #[test]
    fn arithmetic_and_precedence() {
        assert_eq!(ev("1+2*3"), n(7.0));
        assert_eq!(ev("(1+2)*3"), n(9.0));
        assert_eq!(ev("10-4-3"), n(3.0), "subtraction is left-associative");
        assert_eq!(ev("2^3^2"), n(512.0), "power is right-associative");
        assert_eq!(ev("-2^2"), n(4.0), "unary minus binds tighter than ^ here: (-2)^2");
        assert_eq!(ev("7/2"), n(3.5));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(ev("1/0"), CellValue::Error("#DIV/0!".into()));
    }

    #[test]
    fn string_literals_and_concat() {
        assert_eq!(ev(r#""Na"&" "&140"#), CellValue::Text("Na 140".into()));
        assert_eq!(ev(r#""quote: ""x""""#), CellValue::Text("quote: \"x\"".into()));
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev("1<2"), CellValue::Bool(true));
        assert_eq!(ev("2<=2"), CellValue::Bool(true));
        assert_eq!(ev("1=2"), CellValue::Bool(false));
        assert_eq!(ev("1<>2"), CellValue::Bool(true));
        assert_eq!(ev(r#""abc"="ABC""#), CellValue::Bool(true), "text compare is case-insensitive");
    }

    #[test]
    fn cell_references_resolve() {
        let cells = MapResolver::new(&[("B2", n(140.0)), ("B3", n(4.1))]);
        assert_eq!(evaluate("B2+B3", &cells).unwrap(), n(144.1));
        assert_eq!(evaluate("C9", &cells).unwrap(), CellValue::Empty);
    }

    #[test]
    fn sum_and_average_over_ranges_skip_text() {
        let cells = MapResolver::new(&[
            ("A1", n(1.0)),
            ("A2", CellValue::Text("header".into())),
            ("A3", n(3.0)),
        ]);
        assert_eq!(evaluate("SUM(A1:A3)", &cells).unwrap(), n(4.0));
        assert_eq!(evaluate("AVERAGE(A1:A3)", &cells).unwrap(), n(2.0));
        assert_eq!(evaluate("COUNT(A1:A3)", &cells).unwrap(), n(2.0));
        assert_eq!(evaluate("COUNTA(A1:A4)", &cells).unwrap(), n(3.0));
    }

    #[test]
    fn min_max_and_empty_behaviour() {
        let cells = MapResolver::new(&[("A1", n(5.0)), ("A2", n(-3.0))]);
        assert_eq!(evaluate("MIN(A1:A2)", &cells).unwrap(), n(-3.0));
        assert_eq!(evaluate("MAX(A1:A2)", &cells).unwrap(), n(5.0));
        assert_eq!(ev("MIN(B1:B3)"), n(0.0), "empty range yields 0");
    }

    #[test]
    fn if_and_logic() {
        assert_eq!(ev("IF(1<2, 10, 20)"), n(10.0));
        assert_eq!(ev("IF(1>2, 10, 20)"), n(20.0));
        assert_eq!(ev("AND(TRUE, 1, \"x\")"), CellValue::Bool(true));
        assert_eq!(ev("AND(TRUE, 0)"), CellValue::Bool(false));
        assert_eq!(ev("OR(FALSE, 0, \"\")"), CellValue::Bool(false));
        assert_eq!(ev("NOT(0)"), CellValue::Bool(true));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(ev("ABS(-4)"), n(4.0));
        assert_eq!(ev("SQRT(9)"), n(3.0));
        assert_eq!(ev("SQRT(-1)"), CellValue::Error("#NUM!".into()));
        assert_eq!(ev("ROUND(2.71828, 2)"), n(2.72));
        assert_eq!(ev("ROUND(2.5)"), n(3.0));
        assert_eq!(ev("LEN(\"abc\")"), n(3.0));
        assert_eq!(ev("CONCAT(\"K \", 4.1)"), CellValue::Text("K 4.1".into()));
    }

    #[test]
    fn median_and_stdev() {
        let cells = MapResolver::new(&[
            ("A1", n(2.0)),
            ("A2", n(4.0)),
            ("A3", n(4.0)),
            ("A4", n(4.0)),
            ("A5", n(5.0)),
            ("A6", n(5.0)),
            ("A7", n(7.0)),
            ("A8", n(9.0)),
        ]);
        assert_eq!(evaluate("MEDIAN(A1:A8)", &cells).unwrap(), n(4.5));
        assert_eq!(evaluate("MEDIAN(A1:A7)", &cells).unwrap(), n(4.0));
        assert_eq!(ev("MEDIAN(B1:B2)"), CellValue::Error("#NUM!".into()));
        // Classic dataset: sample stdev of [2,4,4,4,5,5,7,9] is ~2.138.
        let CellValue::Number(sd) = evaluate("STDEV(A1:A8)", &cells).unwrap() else {
            panic!("stdev should be numeric");
        };
        assert!((sd - 2.13809).abs() < 1e-4, "{sd}");
        assert_eq!(ev("STDEV(1)"), CellValue::Error("#DIV/0!".into()));
    }

    #[test]
    fn countif_and_sumif() {
        let cells = MapResolver::new(&[
            ("A1", n(140.0)),
            ("A2", n(128.0)),
            ("A3", n(145.0)),
            ("A4", CellValue::Text("refused".into())),
        ]);
        assert_eq!(evaluate("COUNTIF(A1:A4, \">135\")", &cells).unwrap(), n(2.0));
        assert_eq!(evaluate("COUNTIF(A1:A4, \"<=128\")", &cells).unwrap(), n(1.0));
        assert_eq!(evaluate("COUNTIF(A1:A4, \"refused\")", &cells).unwrap(), n(1.0));
        assert_eq!(evaluate("COUNTIF(A1:A4, 140)", &cells).unwrap(), n(1.0));
        assert_eq!(evaluate("COUNTIF(A1:A4, \"<>140\")", &cells).unwrap(), n(2.0), "text cell is not a number, doesn't match numeric <>");
        assert_eq!(evaluate("SUMIF(A1:A4, \">130\")", &cells).unwrap(), n(285.0));
        assert_eq!(ev("COUNTIF(1)"), CellValue::Error("#VALUE!".into()));
    }

    #[test]
    fn unknown_function_is_name_error() {
        assert_eq!(ev("FROB(1)"), CellValue::Error("#NAME?".into()));
    }

    #[test]
    fn range_in_scalar_position_is_value_error() {
        assert_eq!(ev("A1:B2 + 1"), CellValue::Error("#VALUE!".into()));
    }

    #[test]
    fn errors_propagate_through_operators() {
        assert_eq!(ev("1 + 1/0"), CellValue::Error("#DIV/0!".into()));
        assert_eq!(ev("IF(1/0, 1, 2)"), CellValue::Error("#DIV/0!".into()));
    }

    #[test]
    fn parse_errors() {
        for bad in ["", "1 +", "(1", "\"open", "1 @ 2", "SUM(1,", "SUM(1 2)"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail to parse");
        }
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(ev("  1  +  2  "), n(3.0));
        assert_eq!(ev("SUM( 1 , 2 , 3 )"), n(6.0));
    }

    #[test]
    fn function_names_case_insensitive() {
        assert_eq!(ev("sum(1,2)"), n(3.0));
        assert_eq!(ev("Average(2,4)"), n(3.0));
    }

    #[test]
    fn nested_calls() {
        assert_eq!(ev("SUM(1, IF(TRUE, 2, 99), MAX(0, 3))"), n(6.0));
    }

    #[test]
    fn reference_union() {
        let cells = MapResolver::new(&[
            ("A1", n(1.0)),
            ("A2", n(2.0)),
            ("C1", n(10.0)),
            ("C2", n(20.0)),
        ]);
        assert_eq!(evaluate("SUM((A1:A2,C1:C2))", &cells).unwrap(), n(33.0));
        assert_eq!(evaluate("COUNT((A1,C1,C2))", &cells).unwrap(), n(3.0));
        // Union keeps duplicates, like the spreadsheet union operator.
        assert_eq!(evaluate("SUM((A1:A2,A1:A2))", &cells).unwrap(), n(6.0));
        // Unions only accept references.
        assert!(parse("SUM((A1, 2))").is_err());
    }

    #[test]
    fn reference_intersection() {
        let cells = MapResolver::new(&[
            ("B2", n(5.0)),
            ("B3", n(7.0)),
            ("C2", n(11.0)),
            ("D4", n(100.0)),
        ]);
        // A1:C3 ∩ B2:D4 = B2:C3.
        assert_eq!(evaluate("SUM(A1:C3 B2:D4)", &cells).unwrap(), n(23.0));
        // An intersection narrowing to one cell reads as that cell.
        assert_eq!(evaluate("B2:B9 A2:Z2 + 1", &cells).unwrap(), n(6.0));
        // Disjoint references: the null-intersection error.
        assert_eq!(evaluate("SUM(A1:A3 C1:C3)", &cells).unwrap(), CellValue::Error("#NULL!".into()));
        assert_eq!(evaluate("A1:A3 C1:C3", &cells).unwrap(), CellValue::Error("#NULL!".into()));
        // Chains and union operands intersect too.
        assert_eq!(evaluate("SUM(A1:D4 B1:C9 A2:Z2)", &cells).unwrap(), n(16.0));
        assert_eq!(evaluate("SUM((A1:A9,B1:B9) A2:Z3)", &cells).unwrap(), n(12.0));
    }

    #[test]
    fn ifs_family() {
        let cells = MapResolver::new(&[
            // ward, sodium, potassium — one row per draw.
            ("A1", CellValue::Text("icu".into())),
            ("B1", n(140.0)),
            ("C1", n(4.1)),
            ("A2", CellValue::Text("ward".into())),
            ("B2", n(128.0)),
            ("C2", n(3.2)),
            ("A3", CellValue::Text("icu".into())),
            ("B3", n(145.0)),
            ("C3", n(5.4)),
        ]);
        assert_eq!(evaluate("IFS(1>2, 10, 2>1, 20)", &cells).unwrap(), n(20.0));
        assert_eq!(evaluate("IFS(1>2, 10)", &cells).unwrap(), CellValue::Error("#N/A".into()));
        assert_eq!(
            evaluate("COUNTIFS(A1:A3, \"icu\", B1:B3, \">135\")", &cells).unwrap(),
            n(2.0)
        );
        assert_eq!(
            evaluate("SUMIFS(B1:B3, A1:A3, \"icu\", C1:C3, \">5\")", &cells).unwrap(),
            n(145.0)
        );
        assert_eq!(
            evaluate("AVERAGEIFS(C1:C3, A1:A3, \"icu\")", &cells).unwrap(),
            n(4.75)
        );
        assert_eq!(
            evaluate("MAXIFS(B1:B3, A1:A3, \"ward\")", &cells).unwrap(),
            n(128.0)
        );
        assert_eq!(
            evaluate("MINIFS(B1:B3, A1:A3, \"icu\")", &cells).unwrap(),
            n(140.0)
        );
        // No matching rows: AVERAGEIFS divides by zero, MINIFS is 0.
        assert_eq!(
            evaluate("AVERAGEIFS(C1:C3, A1:A3, \"morgue\")", &cells).unwrap(),
            CellValue::Error("#DIV/0!".into())
        );
        assert_eq!(evaluate("MINIFS(B1:B3, A1:A3, \"morgue\")", &cells).unwrap(), n(0.0));
        // Mismatched criterion-range length is a #VALUE! error.
        assert_eq!(
            evaluate("SUMIFS(B1:B3, A1:A2, \"icu\")", &cells).unwrap(),
            CellValue::Error("#VALUE!".into())
        );
        assert_eq!(ev("COUNTIFS(A1:A3)"), CellValue::Error("#VALUE!".into()));
    }
}
