//! Structural sheet edits: row insertion and deletion with reference
//! adjustment.
//!
//! These are the edits that make superimposed marks *interesting*: a
//! mark stores an absolute `(file, sheet, range)` address, so inserting
//! a row above the marked cell silently changes what the mark points at
//! — the drift the paper's redundancy discussion warns about and the
//! Mark Manager's audit detects. Inside the spreadsheet, formulas and
//! named ranges adjust exactly as a real spreadsheet adjusts them;
//! *marks, by design, do not* (the base application doesn't know about
//! them — that is the architecture's entire point).

use super::cellref::{CellRef, Range};
use super::formula::{BinOp, Expr};
use super::workbook::{Sheet, Workbook};
use crate::common::DocError;

/// How a row edit rewrites a row index.
#[derive(Debug, Clone, Copy)]
enum RowShift {
    /// Rows at or below `at` move down by one.
    Insert { at: u32 },
    /// Row `at` disappears; rows below move up by one.
    Delete { at: u32 },
}

impl RowShift {
    /// The new row for `row`, or `None` if the row was deleted.
    fn apply(self, row: u32) -> Option<u32> {
        match self {
            RowShift::Insert { at } if row >= at => Some(row + 1),
            RowShift::Insert { .. } => Some(row),
            RowShift::Delete { at } if row == at => None,
            RowShift::Delete { at } if row > at => Some(row - 1),
            RowShift::Delete { .. } => Some(row),
        }
    }

    /// Rewrite a cell reference; deleted cells become `None` (`#REF!`).
    fn apply_cell(self, cell: CellRef) -> Option<CellRef> {
        self.apply(cell.row).map(|row| CellRef::new(row, cell.col))
    }

    /// Rewrite a range. A range loses the deleted row but survives
    /// unless it was a single deleted row.
    fn apply_range(self, range: Range) -> Option<Range> {
        match self {
            RowShift::Insert { .. } => Some(Range::new(
                self.apply_cell(range.start).expect("insert never deletes"),
                self.apply_cell(range.end).expect("insert never deletes"),
            )),
            RowShift::Delete { at } => {
                let (s, e) = (range.start, range.end);
                if s.row == e.row && s.row == at {
                    return None;
                }
                let new_start = if s.row > at { s.row - 1 } else { s.row };
                let new_end = if e.row >= at { e.row.max(1) - 1 } else { e.row };
                Some(Range::new(
                    CellRef::new(new_start, s.col),
                    CellRef::new(new_end.max(new_start), e.col),
                ))
            }
        }
    }
}

/// Still a reference after rewriting (i.e. no member became `#REF!`)?
fn still_ref(expr: &Expr) -> bool {
    matches!(expr, Expr::Cell(_) | Expr::Range(_) | Expr::Union(_) | Expr::Intersect { .. })
}

/// Rewrite every cell/range reference in an expression. References to a
/// deleted row become `#REF!`-producing markers (an unknown-name call,
/// rendering the classic error on evaluation).
fn rewrite_expr(expr: &Expr, shift: RowShift) -> Expr {
    match expr {
        Expr::Number(_) | Expr::Text(_) | Expr::Bool(_) => expr.clone(),
        Expr::Cell(c) => match shift.apply_cell(*c) {
            Some(new) => Expr::Cell(new),
            None => Expr::Call { name: "__REF_ERROR".into(), args: Vec::new() },
        },
        Expr::Range(r) => match shift.apply_range(*r) {
            Some(new) => Expr::Range(new),
            None => Expr::Call { name: "__REF_ERROR".into(), args: Vec::new() },
        },
        // Union/intersection members must stay references to re-render, so
        // one deleted member turns the whole reference into `#REF!`.
        Expr::Union(parts) => {
            let new: Vec<Expr> = parts.iter().map(|p| rewrite_expr(p, shift)).collect();
            if new.iter().all(still_ref) {
                Expr::Union(new)
            } else {
                Expr::Call { name: "__REF_ERROR".into(), args: Vec::new() }
            }
        }
        Expr::Intersect { lhs, rhs } => {
            let (l, r) = (rewrite_expr(lhs, shift), rewrite_expr(rhs, shift));
            if still_ref(&l) && still_ref(&r) {
                Expr::Intersect { lhs: Box::new(l), rhs: Box::new(r) }
            } else {
                Expr::Call { name: "__REF_ERROR".into(), args: Vec::new() }
            }
        }
        Expr::Unary { negate, expr } => {
            Expr::Unary { negate: *negate, expr: Box::new(rewrite_expr(expr, shift)) }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rewrite_expr(lhs, shift)),
            rhs: Box::new(rewrite_expr(rhs, shift)),
        },
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_expr(a, shift)).collect(),
        },
    }
}

/// Render a rewritten expression back to formula text (with `=`).
fn expr_to_text(expr: &Expr) -> String {
    fn go(expr: &Expr, out: &mut String) {
        match expr {
            Expr::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&n.to_string());
                }
            }
            Expr::Text(t) => {
                out.push('"');
                out.push_str(&t.replace('"', "\"\""));
                out.push('"');
            }
            Expr::Bool(b) => out.push_str(if *b { "TRUE" } else { "FALSE" }),
            Expr::Cell(c) => out.push_str(&c.to_string()),
            Expr::Range(r) => {
                // Always emit the two-corner form so 1×1 ranges stay ranges.
                out.push_str(&format!("{}:{}", r.start, r.end));
            }
            Expr::Union(parts) => {
                out.push('(');
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    go(p, out);
                }
                out.push(')');
            }
            Expr::Intersect { lhs, rhs } => {
                out.push('(');
                go(lhs, out);
                out.push(' ');
                go(rhs, out);
                out.push(')');
            }
            Expr::Unary { negate, expr } => {
                if *negate {
                    out.push('-');
                }
                out.push('(');
                go(expr, out);
                out.push(')');
            }
            Expr::Binary { op, lhs, rhs } => {
                out.push('(');
                go(lhs, out);
                out.push_str(match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Pow => "^",
                    BinOp::Concat => "&",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                });
                go(rhs, out);
                out.push(')');
            }
            Expr::Call { name, args } if name == "__REF_ERROR" => {
                out.push_str("__REF_ERROR()");
            }
            Expr::Call { name, args } => {
                out.push_str(name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    go(a, out);
                }
                out.push(')');
            }
        }
    }
    let mut out = String::from("=");
    go(expr, &mut out);
    out
}

impl Sheet {
    fn shift_rows(&mut self, shift: RowShift) {
        let entries: Vec<(CellRef, String)> = self
            .cells_snapshot()
            .into_iter()
            .collect();
        for (cell, _) in &entries {
            self.clear(*cell);
        }
        for (cell, input) in entries {
            let Some(new_cell) = shift.apply_cell(cell) else {
                continue; // row deleted
            };
            let new_input = match input.strip_prefix('=') {
                Some(body) => match super::formula::parse(body) {
                    Ok(expr) => expr_to_text(&rewrite_expr(&expr, shift)),
                    Err(_) => input.clone(),
                },
                None => input,
            };
            self.set(new_cell, &new_input).expect("rewritten formulas reparse");
        }
    }

    /// Insert an empty row before zero-based row `at`. Cells at and below
    /// move down; formula references adjust.
    pub fn insert_row(&mut self, at: u32) {
        self.shift_rows(RowShift::Insert { at });
    }

    /// Delete zero-based row `at`. Cells below move up; formula
    /// references to the deleted row become `#NAME?`-style errors
    /// (spreadsheet `#REF!`).
    pub fn delete_row(&mut self, at: u32) {
        self.shift_rows(RowShift::Delete { at });
    }
}

impl Workbook {
    /// Insert a row in a sheet, moving named-range definitions with it
    /// (names follow their data, like real spreadsheets).
    pub fn insert_row(&mut self, sheet: &str, at: u32) -> Result<(), DocError> {
        self.sheet_mut(sheet)
            .ok_or_else(|| DocError::Dangling { message: format!("no sheet {sheet:?}") })?
            .insert_row(at);
        self.shift_names(sheet, RowShift::Insert { at });
        Ok(())
    }

    /// Delete a row in a sheet, adjusting named ranges; a name denoting
    /// exactly the deleted row is removed.
    pub fn delete_row(&mut self, sheet: &str, at: u32) -> Result<(), DocError> {
        self.sheet_mut(sheet)
            .ok_or_else(|| DocError::Dangling { message: format!("no sheet {sheet:?}") })?
            .delete_row(at);
        self.shift_names(sheet, RowShift::Delete { at });
        Ok(())
    }

    fn shift_names(&mut self, sheet: &str, shift: RowShift) {
        let updates: Vec<(String, Option<Range>)> = self
            .named_ranges_snapshot()
            .into_iter()
            .filter(|(_, (s, _))| s == sheet)
            .map(|(name, (_, range))| (name, shift.apply_range(range)))
            .collect();
        for (name, new_range) in updates {
            match new_range {
                Some(range) => {
                    let _ = self.define_name(name, sheet, range);
                }
                None => self.remove_name(&name),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spreadsheet::CellValue;

    fn med_sheet() -> Sheet {
        let mut s = Sheet::new("Meds");
        s.import_csv("Drug,Dose\nLasix,40\nKCl,20\nTotal,=SUM(B2:B3)\n").unwrap();
        s
    }

    #[test]
    fn insert_row_shifts_cells_and_formulas() {
        let mut s = med_sheet();
        s.insert_row(1); // new blank row above "Lasix"
        assert_eq!(s.value(CellRef::parse("A3").unwrap()), CellValue::Text("Lasix".into()));
        assert_eq!(s.value(CellRef::parse("A2").unwrap()), CellValue::Empty);
        // The total formula followed its operands.
        assert_eq!(s.value(CellRef::parse("B5").unwrap()), CellValue::Number(60.0));
        assert!(s.input_of(CellRef::parse("B5").unwrap()).contains("B3:B4"));
    }

    #[test]
    fn insert_inside_a_range_grows_it() {
        let mut s = med_sheet();
        s.insert_row(2); // between the two medication rows
        s.set_a1("B3", "10").unwrap();
        assert_eq!(
            s.value(CellRef::parse("B5").unwrap()),
            CellValue::Number(70.0),
            "the SUM range grew to cover the inserted row"
        );
    }

    #[test]
    fn delete_row_shifts_up_and_shrinks_ranges() {
        let mut s = med_sheet();
        s.delete_row(1); // remove the Lasix row
        assert_eq!(s.value(CellRef::parse("A2").unwrap()), CellValue::Text("KCl".into()));
        assert_eq!(
            s.value(CellRef::parse("B3").unwrap()),
            CellValue::Number(20.0),
            "total recomputed over the shrunken range"
        );
    }

    #[test]
    fn deleting_a_directly_referenced_row_yields_an_error_value() {
        let mut s = Sheet::new("S");
        s.set_a1("A1", "10").unwrap();
        s.set_a1("A2", "=A1*2").unwrap();
        s.delete_row(0);
        let v = s.value(CellRef::parse("A1").unwrap());
        assert_eq!(v, CellValue::Error("#NAME?".into()), "reference to deleted row errors");
    }

    #[test]
    fn named_ranges_follow_row_edits() {
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().import_csv("h\nLasix\nKCl\n").unwrap();
        wb.define_name("Meds", "Sheet1", Range::parse("A2:A3").unwrap()).unwrap();
        wb.insert_row("Sheet1", 0).unwrap();
        assert_eq!(wb.resolve_name("Meds").unwrap().1, Range::parse("A3:A4").unwrap());
        wb.delete_row("Sheet1", 0).unwrap();
        assert_eq!(wb.resolve_name("Meds").unwrap().1, Range::parse("A2:A3").unwrap());
    }

    #[test]
    fn name_on_exactly_deleted_row_is_removed() {
        let mut wb = Workbook::new("x.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A3", "v").unwrap();
        wb.define_name("TheRow", "Sheet1", Range::parse("A3:C3").unwrap()).unwrap();
        wb.delete_row("Sheet1", 2).unwrap();
        assert_eq!(wb.resolve_name("TheRow"), None);
    }

    #[test]
    fn expr_to_text_roundtrips_through_parser() {
        for formula in ["=SUM(B2:B9)*2", "=IF(A1>0,\"yes\",\"no\")", "=-A1+3.5", "=1&\"x\""] {
            let expr = super::super::formula::parse(formula.strip_prefix('=').unwrap()).unwrap();
            let text = expr_to_text(&expr);
            let reparsed = super::super::formula::parse(text.strip_prefix('=').unwrap()).unwrap();
            // Semantic equality: both evaluate identically on an empty sheet.
            use super::super::formula::{eval, EmptyResolver};
            assert_eq!(eval(&expr, &EmptyResolver), eval(&reparsed, &EmptyResolver), "{formula}");
        }
    }
}
