//! The HTML page application: the web-browser stand-in.
//!
//! Real HTML is not XML: tags are case-insensitive, many elements never
//! close (`<br>`, `<img>`), and others close implicitly (`<li>`, `<p>`,
//! `<td>`). This module implements a tolerant tag-soup parser producing an
//! [`Element`] tree, a text-mode renderer (what a user "sees"), and
//! addressing by fragment anchor (`#id`), by element path, or by element
//! path plus character span — covering the annotation systems the paper
//! compares against (ComMentor, Third Voice), which anchor annotations
//! into web pages.

use crate::app::{Address, BaseApplication};
use crate::common::{DocError, DocKind, Span};
use std::collections::BTreeMap;
use std::fmt;
use xmlkit::{Document, Element, Node, XPath};

// ---- tolerant HTML parsing -------------------------------------------------

/// Elements that never have content.
const VOID: &[&str] =
    &["area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source", "track", "wbr"];

/// `(incoming tag, tags it implicitly closes)` — a practical subset of the
/// HTML5 implied-end-tag rules.
fn implicitly_closes(incoming: &str, open: &str) -> bool {
    match incoming {
        "li" => open == "li" || open == "p",
        "p" | "div" | "ul" | "ol" | "table" | "blockquote" | "pre" | "h1" | "h2" | "h3" | "h4"
        | "h5" | "h6" => open == "p",
        "td" | "th" => open == "td" || open == "th" || open == "p",
        "tr" => open == "tr" || open == "td" || open == "th" || open == "p",
        _ => false,
    }
}

/// Parse HTML text into a single-rooted element tree.
///
/// The result is always rooted at `<html>`: if the input has no `html`
/// element, one is synthesized around the parsed content. Tag and
/// attribute names are lowercased; unmatched close tags are ignored;
/// unclosed elements are closed at end of input. This function does not
/// fail on malformed markup — tag soup in, best-effort tree out.
pub fn parse_html(input: &str) -> Element {
    let mut p = HtmlParser { input, pos: 0 };
    let mut stack: Vec<Element> = vec![Element::new("html")];
    while let Some(event) = p.next_event() {
        match event {
            HtmlEvent::Text(t) => {
                if !t.is_empty() {
                    if let Some(top) = stack.last_mut() {
                        top.push_text(t);
                    }
                }
            }
            HtmlEvent::Open { name, attributes, self_closing } => {
                if name == "html" {
                    // Merge attributes onto the synthetic root.
                    if let Some(root) = stack.first_mut() {
                        for (k, v) in attributes {
                            root.set_attr(k, v);
                        }
                    }
                    continue;
                }
                while stack.len() > 1
                    && stack.last().is_some_and(|top| implicitly_closes(&name, &top.name))
                {
                    pop_into_parent(&mut stack);
                }
                let mut e = Element::new(name.clone());
                for (k, v) in attributes {
                    e.set_attr(k, v);
                }
                if self_closing || VOID.contains(&name.as_str()) {
                    if let Some(top) = stack.last_mut() {
                        top.push_element(e);
                    }
                } else {
                    stack.push(e);
                }
            }
            HtmlEvent::Close(name) => {
                if name == "html" {
                    continue;
                }
                if let Some(depth) = stack.iter().rposition(|e| e.name == name) {
                    if depth == 0 {
                        continue; // never close the synthetic root
                    }
                    while stack.len() > depth {
                        pop_into_parent(&mut stack);
                    }
                }
                // Unmatched close tag: ignored, per browser behaviour.
            }
        }
    }
    while stack.len() > 1 {
        pop_into_parent(&mut stack);
    }
    stack.pop().unwrap_or_else(|| Element::new("html"))
}

fn pop_into_parent(stack: &mut Vec<Element>) {
    // The synthetic root stays put; popping it would orphan the tree.
    if stack.len() < 2 {
        return;
    }
    if let Some(child) = stack.pop() {
        if let Some(parent) = stack.last_mut() {
            parent.push_element(child);
        }
    }
}

enum HtmlEvent {
    Text(String),
    Open { name: String, attributes: Vec<(String, String)>, self_closing: bool },
    Close(String),
}

struct HtmlParser<'a> {
    input: &'a str,
    pos: usize,
}

impl HtmlParser<'_> {
    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn next_event(&mut self) -> Option<HtmlEvent> {
        if self.pos >= self.input.len() {
            return None;
        }
        if self.rest().starts_with("<!--") {
            let end = self.rest().find("-->").map(|i| self.pos + i + 3).unwrap_or(self.input.len());
            self.pos = end;
            return self.next_event();
        }
        if self.rest().starts_with("<!") || self.rest().starts_with("<?") {
            // DOCTYPE / processing instruction: skip to '>'.
            let end = self.rest().find('>').map(|i| self.pos + i + 1).unwrap_or(self.input.len());
            self.pos = end;
            return self.next_event();
        }
        if self.rest().starts_with("</") {
            let end = self.rest().find('>').map(|i| self.pos + i).unwrap_or(self.input.len());
            let name = self.input[self.pos + 2..end].trim().to_ascii_lowercase();
            self.pos = (end + 1).min(self.input.len());
            return Some(HtmlEvent::Close(name));
        }
        if self.rest().starts_with('<')
            && self.rest()[1..].starts_with(|c: char| c.is_ascii_alphabetic())
        {
            return Some(self.open_tag());
        }
        // Text run until the next plausible tag.
        let start = self.pos;
        self.pos += 1;
        while self.pos < self.input.len() {
            let r = self.rest();
            if r.starts_with('<')
                && (r[1..].starts_with(|c: char| c.is_ascii_alphabetic())
                    || r.starts_with("</")
                    || r.starts_with("<!")
                    || r.starts_with("<?"))
            {
                break;
            }
            self.pos += 1;
        }
        let raw = &self.input[start..self.pos];
        Some(HtmlEvent::Text(decode_entities(raw)))
    }

    fn open_tag(&mut self) -> HtmlEvent {
        debug_assert!(self.rest().starts_with('<'));
        self.pos += 1;
        let name_start = self.pos;
        while self
            .rest()
            .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '-' || c == ':')
        {
            self.pos += 1;
        }
        let name = self.input[name_start..self.pos].to_ascii_lowercase();
        let mut attributes = Vec::new();
        let mut self_closing = false;
        loop {
            while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                self.pos += 1;
            }
            if self.rest().starts_with("/>") {
                self_closing = true;
                self.pos += 2;
                break;
            }
            if self.rest().starts_with('>') {
                self.pos += 1;
                break;
            }
            if self.pos >= self.input.len() {
                break;
            }
            // Attribute name.
            let a_start = self.pos;
            while self
                .rest()
                .starts_with(|c: char| !c.is_ascii_whitespace() && c != '=' && c != '>' && c != '/')
            {
                self.pos += 1;
            }
            if self.pos == a_start {
                self.pos += 1; // stray character; skip it
                continue;
            }
            let attr_name = self.input[a_start..self.pos].to_ascii_lowercase();
            while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                self.pos += 1;
            }
            let value = if self.rest().starts_with('=') {
                self.pos += 1;
                while self.rest().starts_with(|c: char| c.is_ascii_whitespace()) {
                    self.pos += 1;
                }
                if let Some(q) = self.rest().chars().next().filter(|&c| c == '"' || c == '\'') {
                    self.pos += 1;
                    let v_start = self.pos;
                    let end = self.rest().find(q).map(|i| self.pos + i).unwrap_or(self.input.len());
                    let v = &self.input[v_start..end];
                    self.pos = (end + 1).min(self.input.len());
                    decode_entities(v)
                } else {
                    let v_start = self.pos;
                    while self
                        .rest()
                        .starts_with(|c: char| !c.is_ascii_whitespace() && c != '>')
                    {
                        self.pos += 1;
                    }
                    decode_entities(&self.input[v_start..self.pos])
                }
            } else {
                // Boolean attribute (e.g. `disabled`).
                String::new()
            };
            attributes.push((attr_name, value));
        }
        HtmlEvent::Open { name, attributes, self_closing }
    }
}

/// Decode the entities browsers most commonly emit; unknown entities pass
/// through literally (browser behaviour, not XML strictness).
fn decode_entities(text: &str) -> String {
    if !text.contains('&') {
        return text.to_string();
    }
    let mut out = String::with_capacity(text.len());
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        let rest = &text[i + 1..];
        let Some(semi) = rest.find(';').filter(|&s| s <= 10) else {
            out.push('&');
            continue;
        };
        let body = &rest[..semi];
        let decoded = match body {
            "lt" => Some('<'),
            "gt" => Some('>'),
            "amp" => Some('&'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            "nbsp" => Some('\u{a0}'),
            "mdash" => Some('—'),
            "ndash" => Some('–'),
            "hellip" => Some('…'),
            "copy" => Some('©'),
            _ => body
                .strip_prefix("#x")
                .or_else(|| body.strip_prefix("#X"))
                .and_then(|h| u32::from_str_radix(h, 16).ok())
                .or_else(|| body.strip_prefix('#').and_then(|d| d.parse().ok()))
                .and_then(char::from_u32),
        };
        match decoded {
            Some(ch) => {
                out.push(ch);
                for _ in 0..=semi {
                    chars.next();
                }
            }
            None => out.push('&'),
        }
    }
    out
}

// ---- addressing ------------------------------------------------------------

/// What an HTML address points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlTarget {
    /// A fragment anchor: the element with `id` (or `<a name=…>`) equal to
    /// the string — robust under page restructuring.
    Anchor(String),
    /// A structural element path.
    Element(XPath),
    /// A character span within an element's direct text.
    TextSpan { path: XPath, span: Span },
}

/// The HTML mark address: `url` plus an [`HtmlTarget`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlAddress {
    pub url: String,
    pub target: HtmlTarget,
}

impl fmt::Display for HtmlAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            HtmlTarget::Anchor(a) => write!(f, "{}#{}", self.url, a),
            HtmlTarget::Element(p) => write!(f, "{}!{}", self.url, p),
            HtmlTarget::TextSpan { path, span } => write!(f, "{}!{}@{}", self.url, path, span),
        }
    }
}

impl Address for HtmlAddress {
    fn kind() -> DocKind {
        DocKind::Html
    }

    fn to_fields(&self) -> Vec<(String, String)> {
        let mut fields = vec![("url".into(), self.url.clone())];
        match &self.target {
            HtmlTarget::Anchor(a) => fields.push(("anchor".into(), a.clone())),
            HtmlTarget::Element(p) => fields.push(("elementPath".into(), p.to_string())),
            HtmlTarget::TextSpan { path, span } => {
                fields.push(("elementPath".into(), path.to_string()));
                fields.push(("span".into(), span.to_string()));
            }
        }
        fields
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError> {
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.as_str());
        let url = get("url")
            .ok_or_else(|| DocError::BadAddress { message: "missing field \"url\"".into() })?
            .to_string();
        let target = if let Some(a) = get("anchor") {
            HtmlTarget::Anchor(a.to_string())
        } else if let Some(p) = get("elementPath") {
            let path =
                XPath::parse(p).map_err(|e| DocError::BadAddress { message: e.to_string() })?;
            match get("span") {
                Some(s) => {
                    let span = Span::parse(s)
                        .ok_or_else(|| DocError::BadAddress { message: "bad span".into() })?;
                    HtmlTarget::TextSpan { path, span }
                }
                None => HtmlTarget::Element(path),
            }
        } else {
            return Err(DocError::BadAddress {
                message: "need \"anchor\" or \"elementPath\"".into(),
            });
        };
        Ok(HtmlAddress { url, target })
    }

    fn file_name(&self) -> &str {
        &self.url
    }
}

// ---- the application --------------------------------------------------------

/// The simulated browser: loaded pages keyed by URL, plus a selection.
#[derive(Debug, Default)]
pub struct HtmlApp {
    pages: BTreeMap<String, Document>,
    selection: Option<HtmlAddress>,
}

impl HtmlApp {
    /// An instance with no loaded pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Load a page from HTML source.
    pub fn load(&mut self, url: &str, html: &str) -> Result<(), DocError> {
        if self.pages.contains_key(url) {
            return Err(DocError::AlreadyOpen { name: url.to_string() });
        }
        self.pages.insert(url.to_string(), Document::with_root(parse_html(html)));
        Ok(())
    }

    /// Close (unload) a page; clears the selection if it pointed there.
    pub fn close(&mut self, url: &str) -> Result<Document, DocError> {
        let doc = self
            .pages
            .remove(url)
            .ok_or_else(|| DocError::NoSuchDocument { name: url.to_string() })?;
        if self.selection.as_ref().is_some_and(|s| s.url == url) {
            self.selection = None;
        }
        Ok(doc)
    }

    /// Read access to a loaded page's DOM.
    pub fn page(&self, url: &str) -> Result<&Document, DocError> {
        self.pages.get(url).ok_or_else(|| DocError::NoSuchDocument { name: url.to_string() })
    }

    /// Find every element whose direct text contains `needle`
    /// (case-insensitive), across all loaded pages, addressed by
    /// structural path.
    pub fn find_text(&self, needle: &str) -> Vec<HtmlAddress> {
        let lower = needle.to_lowercase();
        let mut out = Vec::new();
        for (url, doc) in &self.pages {
            let mut stack: Vec<Vec<usize>> = vec![vec![]];
            while let Some(indices) = stack.pop() {
                let mut cur = &doc.root;
                let mut reachable = true;
                for &i in &indices {
                    match cur.elements().nth(i) {
                        Some(child) => cur = child,
                        None => {
                            reachable = false;
                            break;
                        }
                    }
                }
                if !reachable {
                    continue;
                }
                if cur.text().to_lowercase().contains(&lower) {
                    if let Some(path) = XPath::of(doc, &indices) {
                        out.push(HtmlAddress {
                            url: url.clone(),
                            target: HtmlTarget::Element(path),
                        });
                    }
                }
                for (i, _) in cur.elements().enumerate() {
                    let mut child = indices.clone();
                    child.push(i);
                    stack.push(child);
                }
            }
        }
        out.sort_by_key(|a| (a.url.clone(), a.to_string()));
        out
    }

    /// Enumerate a page's hyperlinks as `(link text, href)` in document
    /// order — what a browser's link list (or a crawler) sees.
    pub fn links(&self, url: &str) -> Result<Vec<(String, String)>, DocError> {
        let doc = self.page(url)?;
        let mut out = Vec::new();
        fn walk(e: &Element, out: &mut Vec<(String, String)>) {
            if e.name == "a" {
                if let Some(href) = e.attr("href") {
                    out.push((e.deep_text().trim().to_string(), href.to_string()));
                }
            }
            for c in e.elements() {
                walk(c, out);
            }
        }
        walk(&doc.root, &mut out);
        Ok(out)
    }

    /// Enumerate a page's anchors (`id` attributes and `<a name>`),
    /// sorted — the targets [`HtmlApp::select_anchor`] accepts.
    pub fn anchors(&self, url: &str) -> Result<Vec<String>, DocError> {
        let doc = self.page(url)?;
        let mut out = Vec::new();
        fn walk(e: &Element, out: &mut Vec<String>) {
            if let Some(id) = e.attr("id") {
                out.push(id.to_string());
            }
            if e.name == "a" {
                if let Some(name) = e.attr("name") {
                    out.push(name.to_string());
                }
            }
            for c in e.elements() {
                walk(c, out);
            }
        }
        walk(&doc.root, &mut out);
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Find the element carrying `id="anchor"` or `<a name="anchor">`.
    fn find_anchor<'d>(doc: &'d Document, anchor: &str) -> Option<&'d Element> {
        let mut found: Option<&Element> = None;
        fn walk<'d>(e: &'d Element, anchor: &str, found: &mut Option<&'d Element>) {
            if found.is_some() {
                return;
            }
            if e.attr("id") == Some(anchor) || (e.name == "a" && e.attr("name") == Some(anchor)) {
                *found = Some(e);
                return;
            }
            for c in e.elements() {
                walk(c, anchor, found);
            }
        }
        walk(&doc.root, anchor, &mut found);
        found
    }

    /// Resolve an address to its element.
    pub fn resolve(&self, addr: &HtmlAddress) -> Result<&Element, DocError> {
        let doc = self.page(&addr.url)?;
        match &addr.target {
            HtmlTarget::Anchor(a) => Self::find_anchor(doc, a).ok_or_else(|| DocError::Dangling {
                message: format!("no anchor {a:?} in {}", addr.url),
            }),
            HtmlTarget::Element(p) | HtmlTarget::TextSpan { path: p, .. } => {
                p.resolve(doc).map_err(|e| DocError::Dangling { message: e.to_string() })
            }
        }
    }

    /// User action: click an element (selects it by structural path).
    pub fn select_element(&mut self, url: &str, path: &str) -> Result<(), DocError> {
        let path = XPath::parse(path).map_err(|e| DocError::BadAddress { message: e.to_string() })?;
        let addr = HtmlAddress { url: url.to_string(), target: HtmlTarget::Element(path) };
        self.resolve(&addr)?;
        self.selection = Some(addr);
        Ok(())
    }

    /// User action: select a text run inside an element.
    pub fn select_text(&mut self, url: &str, path: &str, span: Span) -> Result<(), DocError> {
        let path = XPath::parse(path).map_err(|e| DocError::BadAddress { message: e.to_string() })?;
        let addr = HtmlAddress { url: url.to_string(), target: HtmlTarget::TextSpan { path, span } };
        self.extract_content(&addr)?; // validates path and span
        self.selection = Some(addr);
        Ok(())
    }

    /// User action: follow a fragment link.
    pub fn select_anchor(&mut self, url: &str, anchor: &str) -> Result<(), DocError> {
        let addr =
            HtmlAddress { url: url.to_string(), target: HtmlTarget::Anchor(anchor.to_string()) };
        self.resolve(&addr)?;
        self.selection = Some(addr);
        Ok(())
    }

    /// Render a page lynx-style: headings uppercased, list items
    /// bulleted, links shown as `text [href]`. The `highlight` element's
    /// text is wrapped in `[[ … ]]`.
    pub fn render_page(&self, url: &str, highlight: Option<&Element>) -> Result<String, DocError> {
        let doc = self.page(url)?;
        let mut out = String::new();
        render_block(&doc.root, highlight, &mut out);
        // Collapse runs of blank lines.
        let mut collapsed = String::with_capacity(out.len());
        let mut blank = 0;
        for line in out.lines() {
            if line.trim().is_empty() {
                blank += 1;
                if blank > 1 {
                    continue;
                }
            } else {
                blank = 0;
            }
            collapsed.push_str(line.trim_end());
            collapsed.push('\n');
        }
        Ok(collapsed)
    }
}

fn render_block(e: &Element, highlight: Option<&Element>, out: &mut String) {
    let highlighted = highlight.is_some_and(|h| std::ptr::eq(h, e));
    if highlighted {
        out.push_str("[[");
    }
    match e.name.as_str() {
        "script" | "style" | "head" | "title" | "meta" | "link" => {}
        "h1" | "h2" | "h3" | "h4" | "h5" | "h6" => {
            out.push('\n');
            out.push_str(&inline_text(e, highlight).to_uppercase());
            out.push('\n');
        }
        "li" => {
            out.push_str("\n• ");
            out.push_str(&inline_text(e, highlight));
            for c in e.elements() {
                if matches!(c.name.as_str(), "ul" | "ol") {
                    render_block(c, highlight, out);
                }
            }
        }
        "p" | "div" | "blockquote" | "tr" | "table" | "br" | "hr" => {
            out.push('\n');
            for child in &e.children {
                match child {
                    Node::Element(c) if is_block(&c.name) => render_block(c, highlight, out),
                    Node::Element(c) => out.push_str(&inline_elem(c, highlight)),
                    Node::Text(t) | Node::CData(t) => out.push_str(&normalize_ws(t)),
                    _ => {}
                }
            }
            out.push('\n');
        }
        _ => {
            for child in &e.children {
                match child {
                    Node::Element(c) if is_block(&c.name) => render_block(c, highlight, out),
                    Node::Element(c) => out.push_str(&inline_elem(c, highlight)),
                    Node::Text(t) | Node::CData(t) => out.push_str(&normalize_ws(t)),
                    _ => {}
                }
            }
        }
    }
    if highlighted {
        out.push_str("]]");
    }
}

fn is_block(name: &str) -> bool {
    matches!(
        name,
        "p" | "div"
            | "ul"
            | "ol"
            | "li"
            | "table"
            | "tr"
            | "blockquote"
            | "pre"
            | "h1"
            | "h2"
            | "h3"
            | "h4"
            | "h5"
            | "h6"
            | "br"
            | "hr"
            | "body"
            | "html"
            | "head"
    )
}

fn inline_elem(e: &Element, highlight: Option<&Element>) -> String {
    let highlighted = highlight.is_some_and(|h| std::ptr::eq(h, e));
    let inner = inline_text(e, highlight);
    let rendered = match e.name.as_str() {
        "a" => match e.attr("href") {
            Some(href) => format!("{inner} [{href}]"),
            None => inner,
        },
        "b" | "strong" => format!("*{inner}*"),
        "i" | "em" => format!("_{inner}_"),
        "td" | "th" => format!("{inner}\t"),
        _ => inner,
    };
    if highlighted {
        format!("[[{rendered}]]")
    } else {
        rendered
    }
}

fn inline_text(e: &Element, highlight: Option<&Element>) -> String {
    let mut out = String::new();
    for child in &e.children {
        match child {
            Node::Element(c) if !is_block(&c.name) => out.push_str(&inline_elem(c, highlight)),
            Node::Element(_) => {}
            Node::Text(t) | Node::CData(t) => out.push_str(&normalize_ws(t)),
            _ => {}
        }
    }
    out
}

fn normalize_ws(t: &str) -> String {
    let mut out = String::with_capacity(t.len());
    let mut last_space = false;
    for c in t.chars() {
        if c.is_whitespace() {
            if !last_space && !out.is_empty() {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

impl BaseApplication for HtmlApp {
    type Addr = HtmlAddress;

    fn app_name(&self) -> &'static str {
        "Web Browser"
    }

    fn open_documents(&self) -> Vec<String> {
        self.pages.keys().cloned().collect()
    }

    fn current_selection(&self) -> Result<HtmlAddress, DocError> {
        self.selection.clone().ok_or(DocError::NoSelection)
    }

    fn navigate_to(&mut self, addr: &HtmlAddress) -> Result<(), DocError> {
        self.resolve(addr)?;
        self.selection = Some(addr.clone());
        Ok(())
    }

    fn extract_content(&self, addr: &HtmlAddress) -> Result<String, DocError> {
        let e = self.resolve(addr)?;
        match &addr.target {
            HtmlTarget::TextSpan { span, .. } => {
                let text = normalize_ws(&e.deep_text());
                span.slice(text.trim()).ok_or_else(|| DocError::Dangling {
                    message: format!("span {span} exceeds element text length"),
                })
            }
            _ => Ok(normalize_ws(e.deep_text().trim())),
        }
    }

    fn display_in_place(&self, addr: &HtmlAddress) -> Result<String, DocError> {
        let target = self.resolve(addr)?;
        // Re-borrow via raw pointer comparison inside render: safe because
        // both borrows are immutable and from the same document.
        let page = self.render_page(&addr.url, Some(target))?;
        Ok(format!("── {} — {} ──\n{}", self.app_name(), addr.url, page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<!DOCTYPE html>
<html><head><title>Drug Reference</title></head>
<body>
  <h1>Furosemide (Lasix)</h1>
  <p id="dosing">Usual adult dose: <b>20&ndash;80 mg</b> daily.</p>
  <ul>
    <li>Monitor potassium
    <li>Watch renal function
  </ul>
  <p>See also <a href="kcl.html">potassium chloride</a>.</p>
  <a name="refs"></a>
  <p>References: Goodman &amp; Gilman.</p>
</body></html>"#;

    fn app() -> HtmlApp {
        let mut a = HtmlApp::new();
        a.load("drugs/lasix.html", PAGE).unwrap();
        a
    }

    #[test]
    fn parser_handles_tag_soup() {
        let root = parse_html(PAGE);
        assert_eq!(root.name, "html");
        let body = root.child("body").unwrap();
        let ul = body.child("ul").unwrap();
        assert_eq!(ul.children_named("li").count(), 2, "implied </li> handled");
        let li1 = ul.children_named("li").next().unwrap();
        assert!(li1.text().contains("Monitor potassium"));
    }

    #[test]
    fn parser_lowercases_and_handles_void_elements() {
        let root = parse_html("<P>one<BR>two</P><IMG SRC='x.png'>");
        let body_children: Vec<&str> = root.elements().map(|e| e.name.as_str()).collect();
        assert_eq!(body_children, vec!["p", "img"]);
        let p = root.child("p").unwrap();
        assert!(p.child("br").is_some());
        assert_eq!(root.child("img").unwrap().attr("src"), Some("x.png"));
    }

    #[test]
    fn parser_ignores_unmatched_close_tags() {
        let root = parse_html("<p>hello</div></p>");
        assert_eq!(root.child("p").unwrap().text(), "hello");
    }

    #[test]
    fn entities_decode_with_browser_leniency() {
        assert_eq!(decode_entities("a &amp; b"), "a & b");
        assert_eq!(decode_entities("20&ndash;80"), "20–80");
        assert_eq!(decode_entities("&#65;&#x42;"), "AB");
        assert_eq!(decode_entities("AT&T"), "AT&T", "bare ampersand passes through");
        assert_eq!(decode_entities("&bogus;"), "&bogus;", "unknown entity passes through");
    }

    #[test]
    fn anchor_addressing_by_id_and_name() {
        let mut a = app();
        a.select_anchor("drugs/lasix.html", "dosing").unwrap();
        let addr = a.current_selection().unwrap();
        assert!(a.extract_content(&addr).unwrap().contains("20–80 mg"));
        a.select_anchor("drugs/lasix.html", "refs").unwrap();
        assert!(a.select_anchor("drugs/lasix.html", "missing").is_err());
    }

    #[test]
    fn element_path_addressing() {
        let mut a = app();
        a.select_element("drugs/lasix.html", "/html/body/ul/li[2]").unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "Watch renal function");
    }

    #[test]
    fn text_span_addressing() {
        let a = app();
        let addr = HtmlAddress {
            url: "drugs/lasix.html".into(),
            target: HtmlTarget::TextSpan {
                path: XPath::parse("/html/body/h1").unwrap(),
                span: Span::new(0, 10),
            },
        };
        assert_eq!(a.extract_content(&addr).unwrap(), "Furosemide");
        let too_long = HtmlAddress {
            url: "drugs/lasix.html".into(),
            target: HtmlTarget::TextSpan {
                path: XPath::parse("/html/body/h1").unwrap(),
                span: Span::new(0, 500),
            },
        };
        assert!(matches!(a.extract_content(&too_long), Err(DocError::Dangling { .. })));
    }

    #[test]
    fn render_page_lynx_style() {
        let a = app();
        let text = a.render_page("drugs/lasix.html", None).unwrap();
        assert!(text.contains("FUROSEMIDE (LASIX)"), "{text}");
        assert!(text.contains("• Monitor potassium"), "{text}");
        assert!(text.contains("potassium chloride [kcl.html]"), "{text}");
        assert!(!text.contains("Drug Reference"), "head content suppressed: {text}");
    }

    #[test]
    fn display_in_place_highlights() {
        let a = app();
        let addr = HtmlAddress {
            url: "drugs/lasix.html".into(),
            target: HtmlTarget::Element(XPath::parse("/html/body/ul/li[1]").unwrap()),
        };
        let view = a.display_in_place(&addr).unwrap();
        assert!(view.contains("[[") && view.contains("]]"), "{view}");
        assert!(view.contains("Monitor potassium"), "{view}");
    }

    #[test]
    fn address_fields_roundtrip_all_modes() {
        let cases = [
            HtmlAddress { url: "u.html".into(), target: HtmlTarget::Anchor("x".into()) },
            HtmlAddress {
                url: "u.html".into(),
                target: HtmlTarget::Element(XPath::parse("/html/body/p[2]").unwrap()),
            },
            HtmlAddress {
                url: "u.html".into(),
                target: HtmlTarget::TextSpan {
                    path: XPath::parse("/html/body/p").unwrap(),
                    span: Span::new(3, 9),
                },
            },
        ];
        for addr in cases {
            assert_eq!(HtmlAddress::from_fields(&addr.to_fields()).unwrap(), addr);
        }
        assert!(HtmlAddress::from_fields(&[("url".into(), "u".into())]).is_err());
    }

    #[test]
    fn links_and_anchors_enumerate() {
        let a = app();
        let links = a.links("drugs/lasix.html").unwrap();
        assert_eq!(links, vec![("potassium chloride".to_string(), "kcl.html".to_string())]);
        let anchors = a.anchors("drugs/lasix.html").unwrap();
        assert_eq!(anchors, vec!["dosing", "refs"]);
        assert!(a.links("nope.html").is_err());
    }

    #[test]
    fn close_clears_selection_and_pages() {
        let mut a = app();
        a.select_anchor("drugs/lasix.html", "dosing").unwrap();
        a.close("drugs/lasix.html").unwrap();
        assert!(matches!(a.current_selection(), Err(DocError::NoSelection)));
        assert!(a.open_documents().is_empty());
        assert!(matches!(a.close("drugs/lasix.html"), Err(DocError::NoSuchDocument { .. })));
    }

    #[test]
    fn duplicate_load_rejected() {
        let mut a = app();
        assert!(matches!(a.load("drugs/lasix.html", "<p/>"), Err(DocError::AlreadyOpen { .. })));
    }

    #[test]
    fn deeply_nested_unclosed_tags_terminate() {
        let html: String = (0..50).map(|i| format!("<div id='d{i}'>")).collect();
        let root = parse_html(&html);
        let mut depth = 0;
        let mut cur = &root;
        while let Some(next) = cur.child("div") {
            depth += 1;
            cur = next;
        }
        assert_eq!(depth, 50);
    }

    #[test]
    fn pathological_soup_parses_without_panicking() {
        // Stray close tags, implicit closes, void elements, an explicit
        // </html>, and trailing text all funnel through the safe stack
        // paths instead of `expect`s.
        let root = parse_html("</div><li>a<li>b<td>c</html><p>d<br><img src=x>tail");
        assert_eq!(root.name, "html");
        let text = root.deep_text();
        for piece in ["a", "b", "c", "d", "tail"] {
            assert!(text.contains(piece), "{piece:?} survived parsing: {text}");
        }
    }

    #[test]
    fn find_text_walks_every_element() {
        let mut a = HtmlApp::new();
        a.load("p.html", "<ul><li>alpha<li>beta</ul><p>beta gamma</p>").unwrap();
        let hits = a.find_text("beta");
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(a.find_text("delta").is_empty());
    }
}
