//! The paginated-document application: the Adobe PDF stand-in.
//!
//! A PDF, as the superimposed layer cares about it, is a sequence of
//! *pages*, each a sequence of laid-out text *lines*. Addresses name a
//! page plus a line range or a character span within a line — the "point
//! and span marks" granularity the paper's related-work section discusses
//! for annotation systems.
//!
//! Documents are built by *paginating* flowing text (fixed lines per
//! page), the way a print driver would, so examples can pour realistic
//! documents in without hand-building pages.

use crate::app::{Address, BaseApplication};
use crate::common::{DocError, DocKind, Span};
use std::collections::BTreeMap;
use std::fmt;

/// One page: laid-out lines of text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Page {
    lines: Vec<String>,
}

impl Page {
    /// The page's lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }
}

/// A paginated document.
#[derive(Debug, Clone)]
pub struct PdfDocument {
    /// The document's file name.
    pub name: String,
    pages: Vec<Page>,
}

impl PdfDocument {
    /// Paginate flowing text: wrap to `width` columns, `lines_per_page`
    /// lines per page.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `lines_per_page` is zero (construction bug).
    pub fn paginate(name: impl Into<String>, text: &str, width: usize, lines_per_page: usize) -> Self {
        assert!(width > 0 && lines_per_page > 0, "degenerate page geometry");
        let mut lines: Vec<String> = Vec::new();
        for para in text.split('\n') {
            if para.trim().is_empty() {
                lines.push(String::new());
                continue;
            }
            let mut current = String::new();
            for word in para.split_whitespace() {
                let candidate_len = if current.is_empty() {
                    word.chars().count()
                } else {
                    current.chars().count() + 1 + word.chars().count()
                };
                if candidate_len > width && !current.is_empty() {
                    lines.push(std::mem::take(&mut current));
                }
                if !current.is_empty() {
                    current.push(' ');
                }
                current.push_str(word);
            }
            if !current.is_empty() {
                lines.push(current);
            }
        }
        let pages = lines
            .chunks(lines_per_page)
            .map(|chunk| Page { lines: chunk.to_vec() })
            .collect::<Vec<_>>();
        let pages = if pages.is_empty() { vec![Page::default()] } else { pages };
        PdfDocument { name: name.into(), pages }
    }

    /// The document's pages.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Locate the first occurrence of `needle`, returning its address
    /// within this document — the "find" dialog.
    pub fn find(&self, needle: &str) -> Option<PdfAddress> {
        for (p, page) in self.pages.iter().enumerate() {
            for (l, line) in page.lines.iter().enumerate() {
                if let Some(byte_at) = line.find(needle) {
                    let start = line[..byte_at].chars().count();
                    return Some(PdfAddress {
                        file_name: self.name.clone(),
                        page: p,
                        line: l,
                        span: Span::new(start, start + needle.chars().count()),
                    });
                }
            }
        }
        None
    }
}

/// The PDF mark address: file, zero-based page and line, character span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdfAddress {
    pub file_name: String,
    pub page: usize,
    pub line: usize,
    pub span: Span,
}

impl fmt::Display for PdfAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#p{}l{}@{}", self.file_name, self.page + 1, self.line + 1, self.span)
    }
}

impl Address for PdfAddress {
    fn kind() -> DocKind {
        DocKind::Pdf
    }

    fn to_fields(&self) -> Vec<(String, String)> {
        vec![
            ("fileName".into(), self.file_name.clone()),
            ("page".into(), self.page.to_string()),
            ("line".into(), self.line.to_string()),
            ("span".into(), self.span.to_string()),
        ]
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError> {
        let get = |k: &str| {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| DocError::BadAddress { message: format!("missing field {k:?}") })
        };
        let parse_num = |k: &str| -> Result<usize, DocError> {
            get(k)?
                .parse()
                .map_err(|_| DocError::BadAddress { message: format!("bad number in {k:?}") })
        };
        Ok(PdfAddress {
            file_name: get("fileName")?.to_string(),
            page: parse_num("page")?,
            line: parse_num("line")?,
            span: Span::parse(get("span")?)
                .ok_or_else(|| DocError::BadAddress { message: "bad span".into() })?,
        })
    }

    fn file_name(&self) -> &str {
        &self.file_name
    }
}

/// The simulated PDF reader.
#[derive(Debug, Default)]
pub struct PdfApp {
    documents: BTreeMap<String, PdfDocument>,
    selection: Option<PdfAddress>,
}

impl PdfApp {
    /// An instance with no open documents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a document.
    pub fn open(&mut self, doc: PdfDocument) -> Result<(), DocError> {
        if self.documents.contains_key(&doc.name) {
            return Err(DocError::AlreadyOpen { name: doc.name.clone() });
        }
        self.documents.insert(doc.name.clone(), doc);
        Ok(())
    }

    /// Close a document; clears the selection if it pointed there.
    pub fn close(&mut self, name: &str) -> Result<PdfDocument, DocError> {
        let doc = self
            .documents
            .remove(name)
            .ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })?;
        if self.selection.as_ref().is_some_and(|s| s.file_name == name) {
            self.selection = None;
        }
        Ok(doc)
    }

    /// Read access to an open document.
    pub fn document(&self, name: &str) -> Result<&PdfDocument, DocError> {
        self.documents
            .get(name)
            .ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })
    }

    /// Find every occurrence of `needle` across all open documents.
    pub fn find_all(&self, needle: &str) -> Vec<PdfAddress> {
        let mut out = Vec::new();
        if needle.is_empty() {
            return out;
        }
        for (name, doc) in &self.documents {
            for (p, page) in doc.pages().iter().enumerate() {
                for (l, line) in page.lines().iter().enumerate() {
                    let lower = line.to_lowercase();
                    let needle_lower = needle.to_lowercase();
                    let mut from = 0usize;
                    while let Some(found) = lower[from..].find(&needle_lower) {
                        let byte_at = from + found;
                        let start = line[..byte_at].chars().count();
                        out.push(PdfAddress {
                            file_name: name.clone(),
                            page: p,
                            line: l,
                            span: Span::new(start, start + needle.chars().count()),
                        });
                        from = byte_at + needle_lower.len().max(1);
                    }
                }
            }
        }
        out
    }

    /// User action: select a span on a page line.
    pub fn select(
        &mut self,
        file: &str,
        page: usize,
        line: usize,
        span: Span,
    ) -> Result<(), DocError> {
        let addr = PdfAddress { file_name: file.to_string(), page, line, span };
        self.line_for(&addr)?;
        self.selection = Some(addr);
        Ok(())
    }

    /// User action: find text and select its first occurrence.
    pub fn select_found(&mut self, file: &str, needle: &str) -> Result<PdfAddress, DocError> {
        let addr = self.document(file)?.find(needle).ok_or_else(|| DocError::BadAddress {
            message: format!("{needle:?} not found in {file:?}"),
        })?;
        self.selection = Some(addr.clone());
        Ok(addr)
    }

    fn line_for(&self, addr: &PdfAddress) -> Result<&str, DocError> {
        let doc = self.document(&addr.file_name)?;
        let page = doc.pages.get(addr.page).ok_or_else(|| DocError::Dangling {
            message: format!("page {} out of range ({} pages)", addr.page, doc.pages.len()),
        })?;
        let line = page.lines.get(addr.line).ok_or_else(|| DocError::Dangling {
            message: format!("line {} out of range on page {}", addr.line, addr.page),
        })?;
        if !addr.span.fits_within(line.chars().count()) {
            return Err(DocError::Dangling {
                message: format!("span {} exceeds line length", addr.span),
            });
        }
        Ok(line)
    }
}

impl BaseApplication for PdfApp {
    type Addr = PdfAddress;

    fn app_name(&self) -> &'static str {
        "PDF Reader"
    }

    fn open_documents(&self) -> Vec<String> {
        self.documents.keys().cloned().collect()
    }

    fn current_selection(&self) -> Result<PdfAddress, DocError> {
        self.selection.clone().ok_or(DocError::NoSelection)
    }

    fn navigate_to(&mut self, addr: &PdfAddress) -> Result<(), DocError> {
        self.line_for(addr)?;
        self.selection = Some(addr.clone());
        Ok(())
    }

    fn extract_content(&self, addr: &PdfAddress) -> Result<String, DocError> {
        let line = self.line_for(addr)?;
        addr.span.slice(line).ok_or_else(|| DocError::Dangling {
            message: format!("span {} no longer fits", addr.span),
        })
    }

    fn display_in_place(&self, addr: &PdfAddress) -> Result<String, DocError> {
        let doc = self.document(&addr.file_name)?;
        let _ = self.line_for(addr)?;
        let page = &doc.pages[addr.page];
        let mut out = format!(
            "── {} — {} (page {} of {}) ──\n",
            self.app_name(),
            addr.file_name,
            addr.page + 1,
            doc.pages.len()
        );
        for (l, line) in page.lines.iter().enumerate() {
            if l == addr.line {
                let chars: Vec<char> = line.chars().collect();
                let before: String = chars[..addr.span.start].iter().collect();
                let inside: String = chars[addr.span.start..addr.span.end].iter().collect();
                let after: String = chars[addr.span.end..].iter().collect();
                out.push_str(&format!("{before}[{inside}]{after}\n"));
            } else {
                out.push_str(line);
                out.push('\n');
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GUIDELINE: &str = "Management of acute decompensated heart failure begins with \
assessment of volume status and perfusion. Loop diuretics such as furosemide remain \
first-line therapy for congestion. Electrolytes, in particular potassium and magnesium, \
must be monitored during aggressive diuresis, and renal function should be reassessed \
at least daily while intravenous therapy continues.";

    fn app() -> PdfApp {
        let mut a = PdfApp::new();
        a.open(PdfDocument::paginate("chf-guideline.pdf", GUIDELINE, 40, 4)).unwrap();
        a
    }

    #[test]
    fn pagination_wraps_and_chunks() {
        let doc = PdfDocument::paginate("d.pdf", GUIDELINE, 40, 4);
        assert!(doc.pages().len() > 1, "long text spans pages");
        for page in doc.pages() {
            assert!(page.lines().len() <= 4);
            for line in page.lines() {
                assert!(line.chars().count() <= 40, "line too long: {line:?}");
            }
        }
    }

    #[test]
    fn pagination_of_empty_text_gives_one_empty_page() {
        let doc = PdfDocument::paginate("e.pdf", "", 40, 10);
        assert_eq!(doc.pages().len(), 1);
    }

    #[test]
    fn long_word_overflows_rather_than_breaks() {
        let doc = PdfDocument::paginate("w.pdf", "supercalifragilisticexpialidocious", 10, 5);
        assert_eq!(doc.pages()[0].lines()[0], "supercalifragilisticexpialidocious");
    }

    #[test]
    fn find_returns_selectable_address() {
        let mut a = app();
        let addr = a.select_found("chf-guideline.pdf", "furosemide").unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "furosemide");
        assert_eq!(a.current_selection().unwrap(), addr);
    }

    #[test]
    fn find_missing_text_errors() {
        let mut a = app();
        assert!(a.select_found("chf-guideline.pdf", "digoxin").is_err());
    }

    #[test]
    fn manual_selection_validates_bounds() {
        let mut a = app();
        assert!(a.select("chf-guideline.pdf", 0, 0, Span::new(0, 5)).is_ok());
        assert!(matches!(
            a.select("chf-guideline.pdf", 99, 0, Span::new(0, 1)),
            Err(DocError::Dangling { .. })
        ));
        assert!(matches!(
            a.select("chf-guideline.pdf", 0, 0, Span::new(0, 999)),
            Err(DocError::Dangling { .. })
        ));
    }

    #[test]
    fn display_in_place_shows_page_with_highlight() {
        let mut a = app();
        let addr = a.select_found("chf-guideline.pdf", "potassium").unwrap();
        let view = a.display_in_place(&addr).unwrap();
        assert!(view.contains("[potassium]"), "{view}");
        assert!(view.contains(&format!("page {} of", addr.page + 1)), "{view}");
    }

    #[test]
    fn address_fields_roundtrip() {
        let addr = PdfAddress {
            file_name: "g.pdf".into(),
            page: 2,
            line: 3,
            span: Span::new(4, 14),
        };
        assert_eq!(PdfAddress::from_fields(&addr.to_fields()).unwrap(), addr);
        assert!(PdfAddress::from_fields(&[("fileName".into(), "f".into())]).is_err());
        let mut bad = addr.to_fields();
        bad[1].1 = "x".into();
        assert!(PdfAddress::from_fields(&bad).is_err());
    }

    #[test]
    fn close_clears_selection() {
        let mut a = app();
        a.select_found("chf-guideline.pdf", "diuretics").unwrap();
        a.close("chf-guideline.pdf").unwrap();
        assert!(matches!(a.current_selection(), Err(DocError::NoSelection)));
        assert!(a.open_documents().is_empty());
    }

    #[test]
    fn display_uses_one_based_page_numbers() {
        let addr = PdfAddress { file_name: "g.pdf".into(), page: 0, line: 0, span: Span::new(0, 1) };
        assert_eq!(addr.to_string(), "g.pdf#p1l1@0..1");
    }
}
