//! The presentation application: the PowerPoint stand-in.
//!
//! A deck is a sequence of slides; a slide holds shapes (title, body,
//! text boxes, images) with stable per-slide shape identifiers. Marks
//! address `(file, slide, shape)` — identifier-based addressing that, like
//! Word bookmarks, survives reordering of other shapes.

use crate::app::{Address, BaseApplication};
use crate::common::{DocError, DocKind};
use std::collections::BTreeMap;
use std::fmt;

/// What a shape is, for rendering purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    Title,
    Body,
    TextBox,
    Image,
}

impl ShapeKind {
    /// Stable identifier for displays and persisted metadata.
    pub fn id(self) -> &'static str {
        match self {
            ShapeKind::Title => "title",
            ShapeKind::Body => "body",
            ShapeKind::TextBox => "textbox",
            ShapeKind::Image => "image",
        }
    }
}

/// A shape on a slide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shape {
    /// Stable identifier, unique within its slide.
    pub id: String,
    pub kind: ShapeKind,
    /// Text content (alt text for images).
    pub text: String,
}

/// One slide: an ordered list of shapes.
#[derive(Debug, Clone, Default)]
pub struct Slide {
    shapes: Vec<Shape>,
}

impl Slide {
    /// An empty slide.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a shape; errors on duplicate ids within the slide.
    pub fn add_shape(
        &mut self,
        id: impl Into<String>,
        kind: ShapeKind,
        text: impl Into<String>,
    ) -> Result<(), DocError> {
        let id = id.into();
        if self.shapes.iter().any(|s| s.id == id) {
            return Err(DocError::Content { message: format!("duplicate shape id {id:?}") });
        }
        self.shapes.push(Shape { id, kind, text: text.into() });
        Ok(())
    }

    /// Shapes in z-order.
    pub fn shapes(&self) -> &[Shape] {
        &self.shapes
    }

    /// Find a shape by id.
    pub fn shape(&self, id: &str) -> Option<&Shape> {
        self.shapes.iter().find(|s| s.id == id)
    }

    /// The slide's title text, if it has a title shape.
    pub fn title(&self) -> Option<&str> {
        self.shapes.iter().find(|s| s.kind == ShapeKind::Title).map(|s| s.text.as_str())
    }
}

/// A slide deck.
#[derive(Debug, Clone)]
pub struct SlideDeck {
    /// The deck's file name.
    pub name: String,
    slides: Vec<Slide>,
}

impl SlideDeck {
    /// An empty deck.
    pub fn new(name: impl Into<String>) -> Self {
        SlideDeck { name: name.into(), slides: Vec::new() }
    }

    /// Append a slide, returning its zero-based index.
    pub fn add_slide(&mut self, slide: Slide) -> usize {
        self.slides.push(slide);
        self.slides.len() - 1
    }

    /// Convenience: append a title+bullets slide.
    pub fn add_bullet_slide(&mut self, title: &str, bullets: &[&str]) -> usize {
        let mut slide = Slide::new();
        slide.add_shape("title", ShapeKind::Title, title).expect("fresh slide");
        for (i, b) in bullets.iter().enumerate() {
            slide.add_shape(format!("bullet{}", i + 1), ShapeKind::Body, *b).expect("unique ids");
        }
        self.add_slide(slide)
    }

    /// Slides in order.
    pub fn slides(&self) -> &[Slide] {
        &self.slides
    }
}

/// The slide mark address: file, zero-based slide, shape id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlideAddress {
    pub file_name: String,
    pub slide: usize,
    pub shape_id: String,
}

impl fmt::Display for SlideAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#slide{}/{}", self.file_name, self.slide + 1, self.shape_id)
    }
}

impl Address for SlideAddress {
    fn kind() -> DocKind {
        DocKind::Slides
    }

    fn to_fields(&self) -> Vec<(String, String)> {
        vec![
            ("fileName".into(), self.file_name.clone()),
            ("slide".into(), self.slide.to_string()),
            ("shapeId".into(), self.shape_id.clone()),
        ]
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError> {
        let get = |k: &str| {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| DocError::BadAddress { message: format!("missing field {k:?}") })
        };
        Ok(SlideAddress {
            file_name: get("fileName")?.to_string(),
            slide: get("slide")?
                .parse()
                .map_err(|_| DocError::BadAddress { message: "bad slide number".into() })?,
            shape_id: get("shapeId")?.to_string(),
        })
    }

    fn file_name(&self) -> &str {
        &self.file_name
    }
}

/// The simulated presentation application.
#[derive(Debug, Default)]
pub struct SlidesApp {
    decks: BTreeMap<String, SlideDeck>,
    selection: Option<SlideAddress>,
}

impl SlidesApp {
    /// An instance with no open decks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a deck.
    pub fn open(&mut self, deck: SlideDeck) -> Result<(), DocError> {
        if self.decks.contains_key(&deck.name) {
            return Err(DocError::AlreadyOpen { name: deck.name.clone() });
        }
        self.decks.insert(deck.name.clone(), deck);
        Ok(())
    }

    /// Close a deck; clears the selection if it pointed there.
    pub fn close(&mut self, name: &str) -> Result<SlideDeck, DocError> {
        let deck = self
            .decks
            .remove(name)
            .ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })?;
        if self.selection.as_ref().is_some_and(|s| s.file_name == name) {
            self.selection = None;
        }
        Ok(deck)
    }

    /// Read access to an open deck.
    pub fn deck(&self, name: &str) -> Result<&SlideDeck, DocError> {
        self.decks.get(name).ok_or_else(|| DocError::NoSuchDocument { name: name.to_string() })
    }

    /// Find every shape whose text contains `needle`
    /// (case-insensitive), across all open decks.
    pub fn find_text(&self, needle: &str) -> Vec<SlideAddress> {
        let lower = needle.to_lowercase();
        let mut out = Vec::new();
        for (file, deck) in &self.decks {
            for (s, slide) in deck.slides().iter().enumerate() {
                for shape in slide.shapes() {
                    if shape.text.to_lowercase().contains(&lower) {
                        out.push(SlideAddress {
                            file_name: file.clone(),
                            slide: s,
                            shape_id: shape.id.clone(),
                        });
                    }
                }
            }
        }
        out
    }

    /// User action: click a shape.
    pub fn select(&mut self, file: &str, slide: usize, shape_id: &str) -> Result<(), DocError> {
        let addr =
            SlideAddress { file_name: file.to_string(), slide, shape_id: shape_id.to_string() };
        self.shape_for(&addr)?;
        self.selection = Some(addr);
        Ok(())
    }

    fn shape_for(&self, addr: &SlideAddress) -> Result<&Shape, DocError> {
        let deck = self.deck(&addr.file_name)?;
        let slide = deck.slides.get(addr.slide).ok_or_else(|| DocError::Dangling {
            message: format!("slide {} out of range ({} slides)", addr.slide, deck.slides.len()),
        })?;
        slide.shape(&addr.shape_id).ok_or_else(|| DocError::Dangling {
            message: format!("no shape {:?} on slide {}", addr.shape_id, addr.slide),
        })
    }
}

impl BaseApplication for SlidesApp {
    type Addr = SlideAddress;

    fn app_name(&self) -> &'static str {
        "Presentation"
    }

    fn open_documents(&self) -> Vec<String> {
        self.decks.keys().cloned().collect()
    }

    fn current_selection(&self) -> Result<SlideAddress, DocError> {
        self.selection.clone().ok_or(DocError::NoSelection)
    }

    fn navigate_to(&mut self, addr: &SlideAddress) -> Result<(), DocError> {
        self.shape_for(addr)?;
        self.selection = Some(addr.clone());
        Ok(())
    }

    fn extract_content(&self, addr: &SlideAddress) -> Result<String, DocError> {
        Ok(self.shape_for(addr)?.text.clone())
    }

    fn display_in_place(&self, addr: &SlideAddress) -> Result<String, DocError> {
        let deck = self.deck(&addr.file_name)?;
        self.shape_for(addr)?;
        let slide = &deck.slides[addr.slide];
        let mut out = format!(
            "── {} — {} (slide {} of {}) ──\n",
            self.app_name(),
            addr.file_name,
            addr.slide + 1,
            deck.slides.len()
        );
        for shape in slide.shapes() {
            let marker = if shape.id == addr.shape_id { ">>" } else { "  " };
            let body = match shape.kind {
                ShapeKind::Title => format!("══ {} ══", shape.text),
                ShapeKind::Body => format!("• {}", shape.text),
                ShapeKind::TextBox => format!("[{}]", shape.text),
                ShapeKind::Image => format!("(image: {})", shape.text),
            };
            out.push_str(&format!("{marker} {body}  «{}»\n", shape.id));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app() -> SlidesApp {
        let mut deck = SlideDeck::new("morbidity-conf.ppt");
        deck.add_bullet_slide(
            "Case: 61M CHF exacerbation",
            &["Presented with dyspnea", "BNP 2400", "CXR: pulmonary edema"],
        );
        deck.add_bullet_slide("Hospital course", &["Diuresed 4L", "K+ repletion protocol"]);
        let mut a = SlidesApp::new();
        a.open(deck).unwrap();
        a
    }

    #[test]
    fn deck_and_slide_construction() {
        let a = app();
        let deck = a.deck("morbidity-conf.ppt").unwrap();
        assert_eq!(deck.slides().len(), 2);
        assert_eq!(deck.slides()[0].title(), Some("Case: 61M CHF exacerbation"));
        assert_eq!(deck.slides()[0].shapes().len(), 4);
    }

    #[test]
    fn duplicate_shape_ids_rejected() {
        let mut slide = Slide::new();
        slide.add_shape("x", ShapeKind::Body, "a").unwrap();
        assert!(matches!(
            slide.add_shape("x", ShapeKind::Body, "b"),
            Err(DocError::Content { .. })
        ));
    }

    #[test]
    fn select_and_extract() {
        let mut a = app();
        a.select("morbidity-conf.ppt", 0, "bullet2").unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "BNP 2400");
        assert_eq!(addr.to_string(), "morbidity-conf.ppt#slide1/bullet2");
    }

    #[test]
    fn navigate_to_missing_targets() {
        let mut a = app();
        let mut addr = SlideAddress {
            file_name: "morbidity-conf.ppt".into(),
            slide: 5,
            shape_id: "title".into(),
        };
        assert!(matches!(a.navigate_to(&addr), Err(DocError::Dangling { .. })));
        addr.slide = 1;
        addr.shape_id = "bullet9".into();
        assert!(matches!(a.navigate_to(&addr), Err(DocError::Dangling { .. })));
        addr.shape_id = "bullet1".into();
        assert!(a.navigate_to(&addr).is_ok());
    }

    #[test]
    fn display_in_place_marks_selected_shape() {
        let a = app();
        let addr = SlideAddress {
            file_name: "morbidity-conf.ppt".into(),
            slide: 1,
            shape_id: "bullet1".into(),
        };
        let view = a.display_in_place(&addr).unwrap();
        assert!(view.contains(">> • Diuresed 4L"), "{view}");
        assert!(view.contains("slide 2 of 2"), "{view}");
    }

    #[test]
    fn address_fields_roundtrip() {
        let addr =
            SlideAddress { file_name: "d.ppt".into(), slide: 3, shape_id: "chart1".into() };
        assert_eq!(SlideAddress::from_fields(&addr.to_fields()).unwrap(), addr);
        assert!(SlideAddress::from_fields(&[]).is_err());
    }

    #[test]
    fn close_clears_selection() {
        let mut a = app();
        a.select("morbidity-conf.ppt", 0, "title").unwrap();
        a.close("morbidity-conf.ppt").unwrap();
        assert!(matches!(a.current_selection(), Err(DocError::NoSelection)));
        assert!(a.open_documents().is_empty());
    }

    #[test]
    fn shape_id_addressing_survives_shape_insertion() {
        let mut a = SlidesApp::new();
        let mut deck = SlideDeck::new("d.ppt");
        let mut slide = Slide::new();
        slide.add_shape("key-point", ShapeKind::TextBox, "the point").unwrap();
        deck.add_slide(slide);
        a.open(deck).unwrap();
        let addr =
            SlideAddress { file_name: "d.ppt".into(), slide: 0, shape_id: "key-point".into() };
        assert_eq!(a.extract_content(&addr).unwrap(), "the point");
    }
}
