//! The XML document application: marks into XML files.
//!
//! Paper Figure 8: an XML mark holds `fileName` and `xmlPath`. Here the
//! path language is `xmlkit`'s XPath-lite; the "viewer" renders the
//! document as an indented outline and highlights the addressed element —
//! matching Figure 4, where double-clicking an Electrolyte scrap "opens
//! the lab report and highlights the appropriate section of the XML
//! document".

use crate::app::{Address, BaseApplication};
use crate::common::{DocError, DocKind};
use std::collections::BTreeMap;
use std::fmt;
use xmlkit::{Document, Element, XPath};

/// The XML mark address: `fileName` + `xmlPath` (Figure 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlAddress {
    pub file_name: String,
    pub xml_path: XPath,
}

impl fmt::Display for XmlAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.file_name, self.xml_path)
    }
}

impl Address for XmlAddress {
    fn kind() -> DocKind {
        DocKind::Xml
    }

    fn to_fields(&self) -> Vec<(String, String)> {
        vec![
            ("fileName".into(), self.file_name.clone()),
            ("xmlPath".into(), self.xml_path.to_string()),
        ]
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, DocError> {
        let get = |k: &str| {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| DocError::BadAddress { message: format!("missing field {k:?}") })
        };
        let path_text = get("xmlPath")?;
        let xml_path = XPath::parse(path_text)
            .map_err(|e| DocError::BadAddress { message: e.to_string() })?;
        Ok(XmlAddress { file_name: get("fileName")?.to_string(), xml_path })
    }

    fn file_name(&self) -> &str {
        &self.file_name
    }
}

/// The simulated XML viewer/editor: open documents plus a selection.
#[derive(Debug, Default)]
pub struct XmlApp {
    documents: BTreeMap<String, Document>,
    selection: Option<XmlAddress>,
}

impl XmlApp {
    /// An instance with no open documents.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a document from XML source text under the given file name.
    pub fn open_text(&mut self, file_name: &str, xml: &str) -> Result<(), DocError> {
        if self.documents.contains_key(file_name) {
            return Err(DocError::AlreadyOpen { name: file_name.to_string() });
        }
        let doc = xmlkit::parse(xml)
            .map_err(|e| DocError::Content { message: e.to_string() })?;
        self.documents.insert(file_name.to_string(), doc);
        Ok(())
    }

    /// Open an already-built document.
    pub fn open(&mut self, file_name: &str, doc: Document) -> Result<(), DocError> {
        if self.documents.contains_key(file_name) {
            return Err(DocError::AlreadyOpen { name: file_name.to_string() });
        }
        self.documents.insert(file_name.to_string(), doc);
        Ok(())
    }

    /// Close a document.
    pub fn close(&mut self, file_name: &str) -> Result<Document, DocError> {
        let doc = self
            .documents
            .remove(file_name)
            .ok_or_else(|| DocError::NoSuchDocument { name: file_name.to_string() })?;
        if self.selection.as_ref().is_some_and(|s| s.file_name == file_name) {
            self.selection = None;
        }
        Ok(doc)
    }

    /// Read access to an open document.
    pub fn document(&self, file_name: &str) -> Result<&Document, DocError> {
        self.documents
            .get(file_name)
            .ok_or_else(|| DocError::NoSuchDocument { name: file_name.to_string() })
    }

    /// User action: select the element reached by child-element indices
    /// from the root (as a click in a tree view would).
    pub fn select_by_indices(&mut self, file_name: &str, indices: &[usize]) -> Result<(), DocError> {
        let doc = self.document(file_name)?;
        let xml_path = XPath::of(doc, indices).ok_or_else(|| DocError::BadAddress {
            message: format!("indices {indices:?} walk off the tree"),
        })?;
        self.selection = Some(XmlAddress { file_name: file_name.to_string(), xml_path });
        Ok(())
    }

    /// User action: select by path text directly.
    pub fn select_by_path(&mut self, file_name: &str, path: &str) -> Result<(), DocError> {
        let xml_path =
            XPath::parse(path).map_err(|e| DocError::BadAddress { message: e.to_string() })?;
        let addr = XmlAddress { file_name: file_name.to_string(), xml_path };
        self.resolve(&addr)?;
        self.selection = Some(addr);
        Ok(())
    }

    /// Find every element whose *direct* text contains `needle`
    /// (case-insensitive), across all open documents, addressed by
    /// canonical path.
    pub fn find_text(&self, needle: &str) -> Vec<XmlAddress> {
        let lower = needle.to_lowercase();
        let mut out = Vec::new();
        for (file, doc) in &self.documents {
            let mut stack: Vec<Vec<usize>> = vec![vec![]];
            while let Some(indices) = stack.pop() {
                let mut cur = &doc.root;
                for &i in &indices {
                    cur = cur.elements().nth(i).expect("indices derived from tree");
                }
                if cur.text().to_lowercase().contains(&lower) {
                    if let Some(xml_path) = XPath::of(doc, &indices) {
                        out.push(XmlAddress { file_name: file.clone(), xml_path });
                    }
                }
                for (i, _) in cur.elements().enumerate() {
                    let mut child = indices.clone();
                    child.push(i);
                    stack.push(child);
                }
            }
        }
        out.sort_by_key(|a| (a.file_name.clone(), a.xml_path.to_string()));
        out
    }

    /// Resolve an address to its element.
    pub fn resolve(&self, addr: &XmlAddress) -> Result<&Element, DocError> {
        let doc = self.document(&addr.file_name)?;
        addr.xml_path
            .resolve(doc)
            .map_err(|e| DocError::Dangling { message: e.to_string() })
    }

    /// Render an element subtree as an indented outline; the highlighted
    /// element is prefixed with `>>`.
    fn render_outline(root: &Element, highlight: Option<&Element>) -> String {
        let mut out = String::new();
        fn walk(e: &Element, depth: usize, highlight: Option<&Element>, out: &mut String) {
            let marker = if highlight.is_some_and(|h| std::ptr::eq(h, e)) { ">>" } else { "  " };
            let attrs: Vec<String> =
                e.attributes.iter().map(|a| format!("{}={:?}", a.name, a.value)).collect();
            let text = e.text();
            let text = text.trim();
            out.push_str(&format!(
                "{}{}<{}{}{}>{}\n",
                marker,
                "  ".repeat(depth),
                e.name,
                if attrs.is_empty() { String::new() } else { format!(" {}", attrs.join(" ")) },
                if e.children.is_empty() { "/" } else { "" },
                if text.is_empty() { String::new() } else { format!(" {text}") },
            ));
            for c in e.elements() {
                walk(c, depth + 1, highlight, out);
            }
        }
        walk(root, 0, highlight, &mut out);
        out
    }
}

impl BaseApplication for XmlApp {
    type Addr = XmlAddress;

    fn app_name(&self) -> &'static str {
        "XML Viewer"
    }

    fn open_documents(&self) -> Vec<String> {
        self.documents.keys().cloned().collect()
    }

    fn current_selection(&self) -> Result<XmlAddress, DocError> {
        self.selection.clone().ok_or(DocError::NoSelection)
    }

    fn navigate_to(&mut self, addr: &XmlAddress) -> Result<(), DocError> {
        self.resolve(addr)?;
        self.selection = Some(addr.clone());
        Ok(())
    }

    fn extract_content(&self, addr: &XmlAddress) -> Result<String, DocError> {
        Ok(self.resolve(addr)?.deep_text().trim().to_string())
    }

    fn display_in_place(&self, addr: &XmlAddress) -> Result<String, DocError> {
        let doc = self.document(&addr.file_name)?;
        let target = addr
            .xml_path
            .resolve(doc)
            .map_err(|e| DocError::Dangling { message: e.to_string() })?;
        Ok(format!(
            "── {} — {} ──\n{}",
            self.app_name(),
            addr.file_name,
            Self::render_outline(&doc.root, Some(target))
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAB_REPORT: &str = r#"<labReport patient="John Smith">
        <electrolytes>
          <na unit="mEq/L">140</na>
          <k unit="mEq/L">4.1</k>
          <cl unit="mEq/L">102</cl>
          <hco3 unit="mEq/L">26</hco3>
        </electrolytes>
        <renal><bun>18</bun><cr>1.1</cr></renal>
      </labReport>"#;

    fn app() -> XmlApp {
        let mut a = XmlApp::new();
        a.open_text("labs.xml", LAB_REPORT).unwrap();
        a
    }

    #[test]
    fn open_rejects_duplicates_and_bad_xml() {
        let mut a = app();
        assert!(matches!(a.open_text("labs.xml", "<x/>"), Err(DocError::AlreadyOpen { .. })));
        assert!(matches!(a.open_text("bad.xml", "<oops"), Err(DocError::Content { .. })));
    }

    #[test]
    fn select_by_indices_builds_canonical_path() {
        let mut a = app();
        a.select_by_indices("labs.xml", &[0, 1]).unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(addr.xml_path.to_string(), "/labReport/electrolytes/k");
        assert_eq!(a.extract_content(&addr).unwrap(), "4.1");
    }

    #[test]
    fn select_by_path_validates() {
        let mut a = app();
        a.select_by_path("labs.xml", "/labReport/renal/cr").unwrap();
        let addr = a.current_selection().unwrap();
        assert_eq!(a.extract_content(&addr).unwrap(), "1.1");
        assert!(a.select_by_path("labs.xml", "/labReport/nope").is_err());
        assert!(a.select_by_path("labs.xml", "not a path").is_err());
    }

    #[test]
    fn navigate_to_and_dangling() {
        let mut a = app();
        let addr = XmlAddress {
            file_name: "labs.xml".into(),
            xml_path: XPath::parse("/labReport/electrolytes/na").unwrap(),
        };
        a.navigate_to(&addr).unwrap();
        assert_eq!(a.current_selection().unwrap(), addr);

        let dangling = XmlAddress {
            file_name: "labs.xml".into(),
            xml_path: XPath::parse("/labReport/electrolytes/mg").unwrap(),
        };
        assert!(matches!(a.navigate_to(&dangling), Err(DocError::Dangling { .. })));
        assert!(!a.address_is_live(&dangling));
    }

    #[test]
    fn display_in_place_highlights_target() {
        let a = app();
        let addr = XmlAddress {
            file_name: "labs.xml".into(),
            xml_path: XPath::parse("/labReport/electrolytes/k").unwrap(),
        };
        let view = a.display_in_place(&addr).unwrap();
        let hl: Vec<&str> = view.lines().filter(|l| l.starts_with(">>")).collect();
        assert_eq!(hl.len(), 1, "{view}");
        assert!(hl[0].contains("<k"), "{view}");
        assert!(view.contains("labs.xml"));
    }

    #[test]
    fn address_fields_roundtrip_figure8_shape() {
        let addr = XmlAddress {
            file_name: "labs.xml".into(),
            xml_path: XPath::parse("/labReport/electrolytes/k").unwrap(),
        };
        let fields = addr.to_fields();
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["fileName", "xmlPath"], "Figure 8 field names");
        assert_eq!(XmlAddress::from_fields(&fields).unwrap(), addr);
    }

    #[test]
    fn ordinal_paths_address_structurally() {
        // The same path addresses "the 2nd <k>" regardless of values —
        // structure-preserving edits keep marks live.
        let mut a = XmlApp::new();
        a.open_text("r.xml", "<r><k>1</k><k>2</k></r>").unwrap();
        let addr = XmlAddress {
            file_name: "r.xml".into(),
            xml_path: XPath::parse("/r/k[2]").unwrap(),
        };
        assert_eq!(a.extract_content(&addr).unwrap(), "2");
    }

    #[test]
    fn close_clears_selection() {
        let mut a = app();
        a.select_by_path("labs.xml", "/labReport/renal/bun").unwrap();
        a.close("labs.xml").unwrap();
        assert!(matches!(a.current_selection(), Err(DocError::NoSelection)));
        assert!(a.open_documents().is_empty());
    }

    #[test]
    fn extract_content_of_subtree_concatenates() {
        let a = app();
        let addr = XmlAddress {
            file_name: "labs.xml".into(),
            xml_path: XPath::parse("/labReport/renal").unwrap(),
        };
        assert_eq!(a.extract_content(&addr).unwrap(), "181.1");
    }
}
