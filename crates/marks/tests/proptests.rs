//! Property tests for the mark layer: arbitrary mark stores must
//! round-trip through XML persistence bit-exactly, for every address
//! kind and hostile string content.

use basedocs::{
    htmldoc::HtmlTarget, textdoc::TextTarget, HtmlAddress, PdfAddress, SlideAddress, Span,
    SpreadsheetAddress, TextAddress, XmlAddress,
};
use marks::{MarkAddress, MarkManager};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    // File names with XML-hostile characters included.
    "[ -~]{1,24}".prop_filter("nonempty after trim", |s| !s.trim().is_empty())
}

fn address_strategy() -> impl Strategy<Value = MarkAddress> {
    let spreadsheet = (name_strategy(), name_strategy(), 0u32..500, 0u32..40).prop_map(
        |(file, sheet, row, col)| {
            MarkAddress::Spreadsheet(SpreadsheetAddress {
                file_name: file,
                sheet_name: sheet,
                range: basedocs::Range::cell(basedocs::CellRef::new(row, col)),
            })
        },
    );
    let xml = (name_strategy(), 1usize..5, 1usize..4).prop_map(|(file, a, b)| {
        MarkAddress::Xml(XmlAddress {
            file_name: file,
            xml_path: xmlkit::XPath::parse(&format!("/root/a[{a}]/b[{b}]")).unwrap(),
        })
    });
    let text = (name_strategy(), proptest::option::of("[a-z]{1,10}"), 0usize..40, 0usize..30)
        .prop_map(|(file, bookmark, para, len)| {
            MarkAddress::Text(TextAddress {
                file_name: file,
                target: match bookmark {
                    Some(b) => TextTarget::Bookmark(b),
                    None => TextTarget::Span { paragraph: para, span: Span::new(len, len + 7) },
                },
            })
        });
    let html = (name_strategy(), "[a-z0-9-]{1,10}").prop_map(|(url, anchor)| {
        MarkAddress::Html(HtmlAddress { url, target: HtmlTarget::Anchor(anchor) })
    });
    let pdf = (name_strategy(), 0usize..99, 0usize..60, 0usize..80).prop_map(
        |(file, page, line, start)| {
            MarkAddress::Pdf(PdfAddress {
                file_name: file,
                page,
                line,
                span: Span::new(start, start + 5),
            })
        },
    );
    let slides = (name_strategy(), 0usize..40, "[a-z0-9]{1,10}").prop_map(
        |(file, slide, shape_id)| {
            MarkAddress::Slides(SlideAddress { file_name: file, slide, shape_id })
        },
    );
    prop_oneof![spreadsheet, xml, text, html, pdf, slides]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A manager full of arbitrary marks persists to XML and reloads
    /// with identical contents and id allocation.
    #[test]
    fn mark_store_roundtrips(addresses in proptest::collection::vec(address_strategy(), 0..24)) {
        let mut mgr = MarkManager::new();
        for a in &addresses {
            mgr.create_mark_at(a.clone()).unwrap();
        }
        let xml = mgr.to_xml();
        let mut mgr2 = MarkManager::new();
        mgr2.load_xml(&xml).unwrap();
        let before: Vec<_> = mgr.marks().cloned().collect();
        let after: Vec<_> = mgr2.marks().cloned().collect();
        prop_assert_eq!(before, after);
        // Serialization is stable.
        prop_assert_eq!(mgr2.to_xml(), xml);
        // Fresh ids continue past loaded ones.
        if let Some(a) = addresses.first() {
            let next = mgr2.create_mark_at(a.clone()).unwrap();
            prop_assert_eq!(next, format!("mark:{}", addresses.len()));
        }
    }

    /// Address field encoding round-trips through the enum for every kind.
    #[test]
    fn address_fields_roundtrip(address in address_strategy()) {
        let kind = address.kind();
        let fields = address.to_fields();
        let back = MarkAddress::from_fields(kind, &fields).unwrap();
        prop_assert_eq!(back, address);
    }
}
