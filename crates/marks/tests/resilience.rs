//! End-to-end resilience tests: seeded fault schedules driven through a
//! real spreadsheet module under a mock clock. These are the acceptance
//! tests for the resolver: all-kill schedules degrade (never panic,
//! never hang), traces are byte-identical per seed, the breaker
//! short-circuits while open and recovers through half-open probes, and
//! repeatedly-dangling marks are quarantined until a repair re-binds.

use basedocs::spreadsheet::Workbook;
use basedocs::{BaseApplication, DocKind, SpreadsheetApp};
use marks::{
    AppModule, BreakerConfig, BreakerState, Clock, FaultProfile, FlakyControl, MarkError, MarkId,
    MarkManager, MockClock, RebindOutcome, ResilientResolver, ResolutionStyle, RetryPolicy,
    WrapAddress,
};
use std::cell::RefCell;
use std::rc::Rc;

struct Fixture {
    mgr: MarkManager,
    control: FlakyControl,
    clock: MockClock,
    app: Rc<RefCell<SpreadsheetApp>>,
    mark: MarkId,
}

/// A workbook with A1=Lasix / B1=40, marked at A1, behind a
/// [`marks::FlakyModule`]. Faults are armed only after the fixture mark
/// exists, so the schedule starts at call 0 for the test body.
fn fixture(profile: FaultProfile, seed: u64) -> Fixture {
    let clock = MockClock::new();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix").unwrap();
    wb.sheet_mut("Sheet1").unwrap().set_a1("B1", "40").unwrap();
    let mut app = SpreadsheetApp::new();
    app.open(wb).unwrap();
    let app = Rc::new(RefCell::new(app));
    let inner = AppModule::in_context("spreadsheet", Rc::clone(&app));
    let flaky = marks::FlakyModule::new(Box::new(inner), seed, profile, clock.clone());
    let control = flaky.control();
    control.disarm();
    let mut mgr = MarkManager::new();
    mgr.register_module(Box::new(flaky)).unwrap();
    app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    let mark = mgr.create_mark(DocKind::Spreadsheet).unwrap();
    control.arm();
    Fixture { mgr, control, clock, app, mark }
}

fn resolver(clock: &MockClock) -> ResilientResolver {
    ResilientResolver::with_config(
        Rc::new(clock.clone()),
        RetryPolicy {
            max_attempts: 4,
            deadline_ms: 10_000,
            base_backoff_ms: 8,
            max_backoff_ms: 64,
            jitter_seed: 0x7e57,
        },
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 500,
            probe_budget: 3,
            probe_successes: 2,
        },
        2,
    )
}

#[test]
fn all_kill_schedule_degrades_to_excerpt_never_panics() {
    let mut fx = fixture(FaultProfile::always_transient(), 0xdead);
    let mut r = resolver(&fx.clock);
    let out = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(out.is_degraded());
    assert_eq!(out.resolution.style, ResolutionStyle::DegradedExcerpt);
    assert_eq!(out.resolution.display, "Lasix", "fallback is the stored excerpt");
    // Three transient failures trip the breaker; the fourth attempt is a
    // short-circuit, so the module itself saw exactly three calls.
    assert_eq!(out.outcome.attempts.len(), 4);
    assert_eq!(fx.control.calls(), 3);
    assert!(matches!(
        out.outcome.attempts[3].error,
        Some(MarkError::ModuleUnavailable { .. })
    ));
    assert!(matches!(r.breaker_state("spreadsheet"), Some(BreakerState::Open { .. })));
}

#[test]
fn same_seed_reproduces_byte_identical_traces() {
    let traces: Vec<String> = (0..2)
        .map(|_| {
            let mut fx = fixture(FaultProfile::stormy(), 0x5eed_cafe);
            let mut r = resolver(&fx.clock);
            let mut all = String::new();
            for _ in 0..6 {
                let out = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
                all.push_str(&out.outcome.trace());
                fx.clock.advance(100);
            }
            all
        })
        .collect();
    assert_eq!(traces[0], traces[1], "one seed, one trace — byte for byte");
    // And a different seed gives a genuinely different schedule.
    let mut fx = fixture(FaultProfile::stormy(), 0x0bad_5eed);
    let mut r = resolver(&fx.clock);
    let mut other = String::new();
    for _ in 0..6 {
        let out = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
        other.push_str(&out.outcome.trace());
        fx.clock.advance(100);
    }
    assert_ne!(traces[0], other);
}

#[test]
fn latency_faults_blow_the_deadline() {
    let mut fx = fixture(FaultProfile::always_slow(700), 1);
    let mut r = ResilientResolver::with_config(
        Rc::new(fx.clock.clone()),
        RetryPolicy {
            max_attempts: 3,
            deadline_ms: 600,
            base_backoff_ms: 8,
            max_backoff_ms: 64,
            jitter_seed: 1,
        },
        BreakerConfig::default(),
        3,
    );
    let out = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(out.is_degraded());
    // The module answered — 700ms later. The resolver had moved on.
    assert_eq!(out.outcome.attempts.len(), 1);
    assert!(matches!(out.outcome.attempts[0].error, Some(MarkError::Timeout { .. })));
    assert_eq!(fx.clock.now_ms(), 700, "the injected stall advanced the shared clock");
}

#[test]
fn breaker_short_circuits_while_open_and_recovers_through_probes() {
    let mut fx = fixture(FaultProfile::always_transient(), 0xabba);
    // One attempt per call so each resolve() is one breaker event.
    let mut r = ResilientResolver::with_config(
        Rc::new(fx.clock.clone()),
        RetryPolicy {
            max_attempts: 1,
            deadline_ms: 10_000,
            base_backoff_ms: 8,
            max_backoff_ms: 64,
            jitter_seed: 1,
        },
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 500,
            probe_budget: 3,
            probe_successes: 2,
        },
        3,
    );
    for _ in 0..3 {
        assert!(r.resolve(&mut fx.mgr, &fx.mark).unwrap().is_degraded());
    }
    assert!(matches!(r.breaker_state("spreadsheet"), Some(BreakerState::Open { .. })));
    let consumed = fx.control.calls();

    // While open: short-circuit, and the module is not called at all.
    let out = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(matches!(
        out.outcome.attempts[0].error,
        Some(MarkError::ModuleUnavailable { .. })
    ));
    assert_eq!(fx.control.calls(), consumed, "open breaker must not touch the module");

    // Cooldown elapses; the base layer has recovered.
    fx.clock.advance(500);
    fx.control.disarm();
    let probe1 = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(!probe1.is_degraded(), "first half-open probe should pass through");
    assert!(matches!(
        r.breaker_state("spreadsheet"),
        Some(BreakerState::HalfOpen { probes_used: 1, successes: 1 })
    ));
    let probe2 = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(!probe2.is_degraded());
    assert_eq!(r.breaker_state("spreadsheet"), Some(BreakerState::Closed { failures: 0 }));
    assert!(probe2.resolution.display.contains("[Lasix]"), "{}", probe2.resolution.display);
}

#[test]
fn repeated_dangles_quarantine_the_mark() {
    let mut fx = fixture(FaultProfile::healthy(), 7);
    let mut r = resolver(&fx.clock); // dangle_threshold = 2
    fx.app.borrow_mut().close("meds.xls").unwrap();

    let first = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(first.is_degraded());
    assert!(!first.outcome.quarantined);
    assert_eq!(r.dangle_count(&fx.mark), 1);

    let second = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(second.outcome.quarantined, "second dangle crosses the threshold");
    assert!(r.is_quarantined(&fx.mark));
    assert_eq!(r.quarantined_marks(), vec![fx.mark.clone()]);

    // Quarantined resolution short-circuits: excerpt comes back with a
    // Quarantined attempt and the module is never consulted.
    let consumed = fx.control.calls();
    let third = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(matches!(third.outcome.attempts[0].error, Some(MarkError::Quarantined { .. })));
    assert_eq!(third.resolution.display, "Lasix");
    assert_eq!(fx.control.calls(), consumed);

    // Satellite: repeated audits do not shake the mark out of quarantine
    // (or reset its dangle history) — only a successful repair does.
    for _ in 0..3 {
        let audits = fx.mgr.audit();
        assert!(!audits[0].live);
        r.note_audit(&audits);
    }
    assert!(r.is_quarantined(&fx.mark), "audits must not clear quarantine");
    assert_eq!(r.dangle_count(&fx.mark), 2, "audits must not reset dangle history");
}

#[test]
fn repair_rebinds_unique_excerpt_match_and_refuses_ambiguity() {
    let mut fx = fixture(FaultProfile::healthy(), 7);
    let mut r = ResilientResolver::with_config(
        Rc::new(fx.clock.clone()),
        RetryPolicy::default(),
        BreakerConfig::default(),
        1, // quarantine on the first dangle
    );
    fx.app.borrow_mut().close("meds.xls").unwrap();
    r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(r.is_quarantined(&fx.mark));

    // The content resurfaces in an archive workbook.
    let mut wb = Workbook::new("archive.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("C3", "Lasix").unwrap();
    wb.sheet_mut("Sheet1").unwrap().set_a1("D4", "40").unwrap();
    fx.app.borrow_mut().open(wb).unwrap();
    let addr_at = |a1: &str| {
        fx.app.borrow_mut().select("archive.xls", "Sheet1", a1).unwrap();
        fx.app.borrow().current_selection().unwrap().wrap()
    };
    let lasix = addr_at("C3");
    let forty = addr_at("D4");

    // The non-matching candidate is filtered; the unique match wins.
    let outcome = r.try_rebind(&mut fx.mgr, &fx.mark, &[lasix.clone(), forty]).unwrap();
    assert!(matches!(outcome, RebindOutcome::Rebound { ref to, .. } if to.contains("C3")));
    assert!(!r.is_quarantined(&fx.mark), "successful repair releases quarantine");
    assert_eq!(r.dangle_count(&fx.mark), 0);
    let resolved = r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(!resolved.is_degraded(), "rebound mark resolves against the base layer again");

    // Now make the excerpt ambiguous: a second cell with the same text.
    fx.app
        .borrow_mut()
        .workbook_mut("archive.xls")
        .unwrap()
        .sheet_mut("Sheet1")
        .unwrap()
        .set_a1("E5", "Lasix")
        .unwrap();
    let dupe = addr_at("E5");
    fx.app.borrow_mut().close("archive.xls").unwrap();
    r.resolve(&mut fx.mgr, &fx.mark).unwrap();
    assert!(r.is_quarantined(&fx.mark));
    let mut wb = Workbook::new("archive.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("C3", "Lasix").unwrap();
    wb.sheet_mut("Sheet1").unwrap().set_a1("E5", "Lasix").unwrap();
    fx.app.borrow_mut().open(wb).unwrap();
    let outcome = r.try_rebind(&mut fx.mgr, &fx.mark, &[lasix, dupe]).unwrap();
    assert!(matches!(outcome, RebindOutcome::Ambiguous { candidates: 2, .. }));
    assert!(r.is_quarantined(&fx.mark), "ambiguous repair must not guess");
}
