//! Mark modules: the per-application drivers.
//!
//! "A mark is created by a base-layer application interacting with a mark
//! module. … A mark module resolves a mark by driving the base-layer
//! application to the information element designated by the mark."
//! (paper §4.2)
//!
//! [`AppModule`] is the generic adapter: given shared access to any
//! [`BaseApplication`], it implements [`MarkModule`] in one of two
//! resolution styles. This is where the paper's claim that "the amount of
//! modification to a base application is small" becomes concrete — a new
//! base type costs one `Address` impl and one `AppModule` registration.

use crate::error::MarkError;
use crate::mark::{MarkAddress, WrapAddress};
use basedocs::app::Address;
use basedocs::{BaseApplication, DocKind};
use std::cell::RefCell;
use std::rc::Rc;

/// How a module resolves marks — the paper's Moniker contrast: "one
/// manager for Excel can display Excel Marks in context and another act
/// as an in-place viewer".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolutionStyle {
    /// Drive the base application to the element (it becomes the current
    /// selection) and return the application's own highlighted view.
    InContext,
    /// Return the element's content without touching the application's
    /// selection (independent viewing, paper Figure 6).
    InPlace,
    /// The base layer could not be reached (or the mark is quarantined):
    /// the display is the mark's *stored excerpt*, possibly stale, not
    /// live base content. Produced only by the resilient resolver.
    DegradedExcerpt,
}

/// The result of resolving a mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The style that produced this resolution.
    pub style: ResolutionStyle,
    /// The text shown to the user: a highlighted in-context view or the
    /// bare extracted content.
    pub display: String,
}

/// A driver for one base-layer application.
pub trait MarkModule {
    /// The base type this module serves.
    fn kind(&self) -> DocKind;

    /// Registry name; multiple modules per kind are distinguished by it.
    fn module_name(&self) -> &str;

    /// Capture the application's current selection as a mark address.
    fn address_from_selection(&self) -> Result<MarkAddress, MarkError>;

    /// Resolve an address by driving (or reading) the application.
    fn resolve(&self, address: &MarkAddress) -> Result<Resolution, MarkError>;

    /// The addressed element's content, selection left untouched.
    fn extract(&self, address: &MarkAddress) -> Result<String, MarkError>;

    /// Whether the address still resolves.
    fn is_live(&self, address: &MarkAddress) -> bool {
        self.extract(address).is_ok()
    }
}

/// Generic mark module over any base application.
///
/// Applications are shared via `Rc<RefCell<…>>`: the superimposed
/// application, the user, and any number of modules all interact with the
/// same live application instance — exactly the simultaneous-viewing
/// topology of paper Figure 6.
pub struct AppModule<A: BaseApplication> {
    app: Rc<RefCell<A>>,
    name: String,
    style: ResolutionStyle,
}

impl<A: BaseApplication> AppModule<A>
where
    A::Addr: WrapAddress,
{
    /// An in-context module (the default registration for a kind).
    pub fn in_context(name: impl Into<String>, app: Rc<RefCell<A>>) -> Self {
        AppModule { app, name: name.into(), style: ResolutionStyle::InContext }
    }

    /// An in-place viewer module.
    pub fn in_place(name: impl Into<String>, app: Rc<RefCell<A>>) -> Self {
        AppModule { app, name: name.into(), style: ResolutionStyle::InPlace }
    }

    /// Shared handle to the underlying application.
    pub fn app(&self) -> Rc<RefCell<A>> {
        Rc::clone(&self.app)
    }

    fn typed<'m>(&self, address: &'m MarkAddress) -> Result<&'m A::Addr, MarkError> {
        A::Addr::unwrap_ref(address).ok_or(MarkError::KindMismatch {
            expected: A::Addr::kind(),
            found: address.kind(),
        })
    }
}

impl<A: BaseApplication> MarkModule for AppModule<A>
where
    A::Addr: WrapAddress,
{
    fn kind(&self) -> DocKind {
        A::Addr::kind()
    }

    fn module_name(&self) -> &str {
        &self.name
    }

    fn address_from_selection(&self) -> Result<MarkAddress, MarkError> {
        Ok(self.app.borrow().current_selection()?.wrap())
    }

    fn resolve(&self, address: &MarkAddress) -> Result<Resolution, MarkError> {
        let typed = self.typed(address)?;
        match self.style {
            ResolutionStyle::InContext => {
                let mut app = self.app.borrow_mut();
                app.navigate_to(typed)?;
                let display = app.display_in_place(typed)?;
                Ok(Resolution { style: ResolutionStyle::InContext, display })
            }
            // An AppModule never *starts* degraded; DegradedExcerpt is
            // produced only by the resilient resolver's fallback. Treat
            // it as a plain in-place read if anyone asks.
            ResolutionStyle::InPlace | ResolutionStyle::DegradedExcerpt => {
                let display = self.app.borrow().extract_content(typed)?;
                Ok(Resolution { style: ResolutionStyle::InPlace, display })
            }
        }
    }

    fn extract(&self, address: &MarkAddress) -> Result<String, MarkError> {
        let typed = self.typed(address)?;
        Ok(self.app.borrow().extract_content(typed)?)
    }

    fn is_live(&self, address: &MarkAddress) -> bool {
        match self.typed(address) {
            Ok(typed) => self.app.borrow().address_is_live(typed),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basedocs::spreadsheet::Workbook;
    use basedocs::SpreadsheetApp;

    fn shared_app() -> Rc<RefCell<SpreadsheetApp>> {
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix").unwrap();
        wb.sheet_mut("Sheet1").unwrap().set_a1("B1", "40").unwrap();
        let mut app = SpreadsheetApp::new();
        app.open(wb).unwrap();
        Rc::new(RefCell::new(app))
    }

    #[test]
    fn address_from_selection_reads_live_app() {
        let app = shared_app();
        let module = AppModule::in_context("excel", Rc::clone(&app));
        assert!(matches!(
            module.address_from_selection(),
            Err(MarkError::Base(basedocs::DocError::NoSelection))
        ));
        app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let addr = module.address_from_selection().unwrap();
        assert_eq!(addr.to_string(), "meds.xls!Sheet1!B1");
        assert_eq!(addr.kind(), DocKind::Spreadsheet);
    }

    #[test]
    fn in_context_resolution_moves_selection_and_highlights() {
        let app = shared_app();
        let module = AppModule::in_context("excel", Rc::clone(&app));
        app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let addr = module.address_from_selection().unwrap();
        // Move the user's selection elsewhere, then resolve the mark.
        app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let res = module.resolve(&addr).unwrap();
        assert_eq!(res.style, ResolutionStyle::InContext);
        assert!(res.display.contains("[Lasix]"), "{}", res.display);
        // In-context resolution re-selected the marked element.
        assert_eq!(app.borrow().current_selection().unwrap().to_string(), "meds.xls!Sheet1!A1");
    }

    #[test]
    fn in_place_resolution_leaves_selection_alone() {
        let app = shared_app();
        let in_place = AppModule::in_place("excel-viewer", Rc::clone(&app));
        app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let addr = in_place.address_from_selection().unwrap();
        app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let res = in_place.resolve(&addr).unwrap();
        assert_eq!(res.style, ResolutionStyle::InPlace);
        assert_eq!(res.display, "Lasix");
        assert_eq!(
            app.borrow().current_selection().unwrap().to_string(),
            "meds.xls!Sheet1!B1",
            "in-place resolution must not move the selection"
        );
    }

    #[test]
    fn kind_mismatch_detected() {
        let app = shared_app();
        let module = AppModule::in_context("excel", app);
        let wrong = MarkAddress::Xml(basedocs::XmlAddress {
            file_name: "labs.xml".into(),
            xml_path: xmlkit::XPath::parse("/a").unwrap(),
        });
        assert!(matches!(
            module.resolve(&wrong),
            Err(MarkError::KindMismatch { expected: DocKind::Spreadsheet, found: DocKind::Xml })
        ));
        assert!(!module.is_live(&wrong));
    }

    #[test]
    fn liveness_follows_base_document() {
        let app = shared_app();
        let module = AppModule::in_context("excel", Rc::clone(&app));
        app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let addr = module.address_from_selection().unwrap();
        assert!(module.is_live(&addr));
        app.borrow_mut().close("meds.xls").unwrap();
        assert!(!module.is_live(&addr));
    }
}
