//! Deterministic fault injection at the mark-module boundary.
//!
//! [`FlakyModule`] wraps any [`MarkModule`] and injects failures in the
//! spirit of slimio's `FaultVfs` and slimcheck's seed-replay discipline:
//! the fault hitting call *n* is a pure function of `(seed, n)`, so a
//! seed from a failing run replays the exact fault schedule, and two
//! runs with the same seed produce byte-identical resolution traces.
//!
//! Fault taxonomy (see DESIGN.md §9):
//!
//! * **Transient** — the module errors with an I/O-shaped failure that a
//!   retry may outlive.
//! * **Latency** — the module answers, but only after advancing the
//!   shared [`MockClock`]; the resolver's deadline decides whether the
//!   late answer still counts.
//! * **DocumentGone** — the base layer reports the mark's target as
//!   dangling (document closed / element deleted).
//! * **ContentDrift** — the module answers successfully but the content
//!   differs from what was marked.

use crate::error::MarkError;
use crate::mark::MarkAddress;
use crate::module::{MarkModule, Resolution};
use crate::resilience::{mix64, MockClock};
use basedocs::{DocError, DocKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Pass the call through untouched.
    None,
    /// Fail with a retryable I/O-shaped error.
    Transient,
    /// Advance the shared clock by this many ms, then answer.
    Latency(u64),
    /// Report the target as dangling.
    DocumentGone,
    /// Answer, but with visibly drifted content.
    ContentDrift,
}

/// Percent weights for each fault kind; the remainder passes through.
/// Weights must sum to <= 100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    pub transient_pct: u8,
    pub latency_pct: u8,
    pub gone_pct: u8,
    pub drift_pct: u8,
    /// Injected delay for latency faults.
    pub latency_ms: u64,
}

impl FaultProfile {
    /// No faults at all.
    pub const fn healthy() -> Self {
        FaultProfile { transient_pct: 0, latency_pct: 0, gone_pct: 0, drift_pct: 0, latency_ms: 0 }
    }

    /// A lively mixed storm.
    pub const fn stormy() -> Self {
        FaultProfile {
            transient_pct: 35,
            latency_pct: 15,
            gone_pct: 10,
            drift_pct: 10,
            latency_ms: 400,
        }
    }

    /// Every call fails transiently — the all-kill schedule.
    pub const fn always_transient() -> Self {
        FaultProfile { transient_pct: 100, latency_pct: 0, gone_pct: 0, drift_pct: 0, latency_ms: 0 }
    }

    /// Every call stalls for `latency_ms`.
    pub const fn always_slow(latency_ms: u64) -> Self {
        FaultProfile { transient_pct: 0, latency_pct: 100, gone_pct: 0, drift_pct: 0, latency_ms }
    }

    /// The fault for call number `call` under `seed` — a pure function,
    /// so schedules replay exactly and a reference model can mirror the
    /// arithmetic without sharing state.
    pub fn fault(&self, seed: u64, call: u64) -> Fault {
        let roll = (mix64(seed, call) % 100) as u8;
        let mut edge = self.transient_pct;
        if roll < edge {
            return Fault::Transient;
        }
        edge = edge.saturating_add(self.latency_pct);
        if roll < edge {
            return Fault::Latency(self.latency_ms);
        }
        edge = edge.saturating_add(self.gone_pct);
        if roll < edge {
            return Fault::DocumentGone;
        }
        edge = edge.saturating_add(self.drift_pct);
        if roll < edge {
            return Fault::ContentDrift;
        }
        Fault::None
    }
}

/// Clone-able handle to a [`FlakyModule`]'s schedule state. The module
/// is boxed away inside the [`crate::MarkManager`] at registration, so
/// tests keep a control handle to arm faults *after* fixture setup (mark
/// creation also calls the module) and to reseed mid-run.
///
/// Backed by atomics so a harness thread can arm/disarm/reseed a module
/// that lives on a service writer thread (slimserve's pad service boxes
/// the module inside the writer-owned `MarkManager`; the chaos harness
/// keeps only this handle).
#[derive(Clone)]
pub struct FlakyControl {
    seed: Arc<AtomicU64>,
    calls: Arc<AtomicU64>,
    armed: Arc<AtomicBool>,
}

impl FlakyControl {
    /// A fresh armed schedule starting at call zero.
    pub fn new(seed: u64) -> Self {
        FlakyControl {
            seed: Arc::new(AtomicU64::new(seed)),
            calls: Arc::new(AtomicU64::new(0)),
            armed: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Start injecting faults (calls made while disarmed neither fault
    /// nor consume schedule positions).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Switch to a new schedule: new seed, call counter back to zero.
    pub fn reseed(&self, seed: u64) {
        self.seed.store(seed, Ordering::SeqCst);
        self.calls.store(0, Ordering::SeqCst);
    }

    pub fn seed(&self) -> u64 {
        self.seed.load(Ordering::SeqCst)
    }

    /// Faultable calls consumed so far (while armed).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::SeqCst)
    }
}

/// A [`MarkModule`] wrapper that injects seeded faults into `resolve`
/// and `extract`. Selection capture and liveness checks pass through
/// unfaulted (they are local, not base-layer drives).
pub struct FlakyModule {
    inner: Box<dyn MarkModule>,
    profile: FaultProfile,
    clock: MockClock,
    control: FlakyControl,
}

impl FlakyModule {
    pub fn new(
        inner: Box<dyn MarkModule>,
        seed: u64,
        profile: FaultProfile,
        clock: MockClock,
    ) -> Self {
        Self::with_control(inner, profile, clock, FlakyControl::new(seed))
    }

    /// Wrap `inner` around a caller-provided control handle. This is the
    /// service-injection path: the harness mints the [`FlakyControl`] up
    /// front (outside the writer thread), hands a clone into the module
    /// factory that runs on the writer thread, and keeps the original to
    /// arm/disarm the storm mid-run.
    pub fn with_control(
        inner: Box<dyn MarkModule>,
        profile: FaultProfile,
        clock: MockClock,
        control: FlakyControl,
    ) -> Self {
        FlakyModule { inner, profile, clock, control }
    }

    /// A handle for arming/reseeding after the module is boxed away.
    pub fn control(&self) -> FlakyControl {
        self.control.clone()
    }

    /// Consume the next schedule position and return its fault together
    /// with the call number (for error messages).
    fn next_fault(&self) -> (u64, Fault) {
        if !self.control.armed.load(Ordering::SeqCst) {
            return (self.control.calls.load(Ordering::SeqCst), Fault::None);
        }
        let call = self.control.calls.fetch_add(1, Ordering::SeqCst);
        (call, self.profile.fault(self.control.seed.load(Ordering::SeqCst), call))
    }
}

impl MarkModule for FlakyModule {
    fn kind(&self) -> DocKind {
        self.inner.kind()
    }

    fn module_name(&self) -> &str {
        self.inner.module_name()
    }

    fn address_from_selection(&self) -> Result<MarkAddress, MarkError> {
        self.inner.address_from_selection()
    }

    fn resolve(&self, address: &MarkAddress) -> Result<Resolution, MarkError> {
        match self.next_fault() {
            (_, Fault::None) => self.inner.resolve(address),
            (call, Fault::Transient) => Err(MarkError::Io {
                detail: format!("injected transient fault (call {call})"),
            }),
            (_, Fault::Latency(ms)) => {
                self.clock.advance(ms);
                self.inner.resolve(address)
            }
            (_, Fault::DocumentGone) => Err(MarkError::Base(DocError::Dangling {
                message: format!("injected document-gone fault: {}", address.file_name()),
            })),
            (_, Fault::ContentDrift) => {
                let mut resolution = self.inner.resolve(address)?;
                resolution.display.push_str(" [drifted]");
                Ok(resolution)
            }
        }
    }

    fn extract(&self, address: &MarkAddress) -> Result<String, MarkError> {
        match self.next_fault() {
            (_, Fault::None) => self.inner.extract(address),
            (call, Fault::Transient) => Err(MarkError::Io {
                detail: format!("injected transient fault (call {call})"),
            }),
            (_, Fault::Latency(ms)) => {
                self.clock.advance(ms);
                self.inner.extract(address)
            }
            (_, Fault::DocumentGone) => Err(MarkError::Base(DocError::Dangling {
                message: format!("injected document-gone fault: {}", address.file_name()),
            })),
            (_, Fault::ContentDrift) => {
                let mut content = self.inner.extract(address)?;
                content.push_str(" [drifted]");
                Ok(content)
            }
        }
    }

    fn is_live(&self, address: &MarkAddress) -> bool {
        // Liveness probes are cheap local checks; don't consume faults,
        // or audits would perturb the resolution schedule.
        self.inner.is_live(address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_call() {
        let profile = FaultProfile::stormy();
        let a: Vec<Fault> = (0..64).map(|c| profile.fault(0xfeed, c)).collect();
        let b: Vec<Fault> = (0..64).map(|c| profile.fault(0xfeed, c)).collect();
        assert_eq!(a, b);
        let c: Vec<Fault> = (0..64).map(|call| profile.fault(0xbeef, call)).collect();
        assert_ne!(a, c, "different seeds should give different schedules");
        // The storm actually contains a mix.
        assert!(a.contains(&Fault::Transient));
        assert!(a.iter().any(|f| matches!(f, Fault::Latency(_))));
        assert!(a.contains(&Fault::None));
    }

    #[test]
    fn profiles_cover_their_advertised_extremes() {
        let all = FaultProfile::always_transient();
        assert!((0..100).all(|c| all.fault(7, c) == Fault::Transient));
        let none = FaultProfile::healthy();
        assert!((0..100).all(|c| none.fault(7, c) == Fault::None));
        let slow = FaultProfile::always_slow(250);
        assert!((0..100).all(|c| slow.fault(7, c) == Fault::Latency(250)));
    }
}
