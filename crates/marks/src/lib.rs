//! `marks` — mark management for superimposed information.
//!
//! "A fundamental objective of digital superimposed information is
//! maintaining a link to the base-layer information. The **Mark Manager**
//! is the framework for creating and managing these links – called
//! *marks*." (paper §4.2)
//!
//! The crate reproduces the paper's mark architecture (Figure 7) exactly:
//!
//! * [`Mark`] — a mark id plus a typed base-layer address
//!   ([`MarkAddress`], one variant per base type, mirroring the
//!   subclass-of-`Mark`-per-type design of Figure 3);
//! * [`MarkModule`] — the per-base-application driver that *creates* marks
//!   from the application's current selection and *resolves* marks by
//!   driving the application back to the marked element;
//! * [`AppModule`] — a generic adapter turning any
//!   [`basedocs::BaseApplication`] into a mark module, in either
//!   *in-context* style (navigate the real application and show the
//!   element highlighted in place) or *in-place* style (extract the
//!   content without disturbing the application) — the two resolution
//!   styles the paper contrasts with COM Monikers, where "one manager for
//!   Excel can display Excel Marks in context and another act as an
//!   in-place viewer";
//! * [`MarkManager`] — the registry: stores marks generically, routes
//!   creation/resolution to the right module, audits for dangling marks,
//!   and persists the mark store to XML.
//!
//! Everything above the mark layer sees only opaque mark ids: "From the
//! superimposed application's viewpoint, a base information element is
//! addressed by a mark, regardless of its type."

pub mod error;
pub mod flaky;
pub mod manager;
pub mod mark;
pub mod module;
pub mod resilience;

pub use error::MarkError;
pub use flaky::{Fault, FaultProfile, FlakyControl, FlakyModule};
pub use manager::{MarkAudit, MarkManager, MarkStats, RefreshReport};
pub use mark::{Mark, MarkAddress, MarkId, WrapAddress};
pub use module::{AppModule, MarkModule, Resolution, ResolutionStyle};
pub use resilience::{
    Attempt, Breaker, BreakerConfig, BreakerState, Clock, MockClock, RebindOutcome,
    ResilientResolution, ResilientResolver, ResolutionOutcome, RetryPolicy, SystemClock,
};
