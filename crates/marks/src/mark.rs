//! Marks and typed mark addresses.

use basedocs::app::Address;
use basedocs::{
    DocError, DocKind, HtmlAddress, PdfAddress, SlideAddress, SpreadsheetAddress, TextAddress,
    XmlAddress,
};
use std::fmt;

/// A mark identifier, e.g. `"mark:42"`. Mark ids are opaque to everything
/// above the Mark Manager (paper Figure 3: a `MarkHandle` holds only a
/// `markId` string).
pub type MarkId = String;

/// A typed base-layer address: one variant per supported base type,
/// mirroring the paper's one-`Mark`-subclass-per-type design (Figure 3:
/// "Excel Mark", "XML Mark", …; Figure 8 shows two of the layouts).
#[derive(Debug, Clone, PartialEq)]
pub enum MarkAddress {
    Spreadsheet(SpreadsheetAddress),
    Xml(XmlAddress),
    Text(TextAddress),
    Html(HtmlAddress),
    Pdf(PdfAddress),
    Slides(SlideAddress),
}

impl MarkAddress {
    /// The base type this address belongs to.
    pub fn kind(&self) -> DocKind {
        match self {
            MarkAddress::Spreadsheet(_) => DocKind::Spreadsheet,
            MarkAddress::Xml(_) => DocKind::Xml,
            MarkAddress::Text(_) => DocKind::Text,
            MarkAddress::Html(_) => DocKind::Html,
            MarkAddress::Pdf(_) => DocKind::Pdf,
            MarkAddress::Slides(_) => DocKind::Slides,
        }
    }

    /// The containing file/document/url name.
    pub fn file_name(&self) -> &str {
        match self {
            MarkAddress::Spreadsheet(a) => a.file_name(),
            MarkAddress::Xml(a) => a.file_name(),
            MarkAddress::Text(a) => a.file_name(),
            MarkAddress::Html(a) => a.file_name(),
            MarkAddress::Pdf(a) => a.file_name(),
            MarkAddress::Slides(a) => a.file_name(),
        }
    }

    /// Encode as ordered named fields — "one or more attributes that
    /// comprise an address of the appropriate type" (Figure 3).
    pub fn to_fields(&self) -> Vec<(String, String)> {
        match self {
            MarkAddress::Spreadsheet(a) => a.to_fields(),
            MarkAddress::Xml(a) => a.to_fields(),
            MarkAddress::Text(a) => a.to_fields(),
            MarkAddress::Html(a) => a.to_fields(),
            MarkAddress::Pdf(a) => a.to_fields(),
            MarkAddress::Slides(a) => a.to_fields(),
        }
    }

    /// Decode from a kind tag plus named fields.
    pub fn from_fields(kind: DocKind, fields: &[(String, String)]) -> Result<Self, DocError> {
        Ok(match kind {
            DocKind::Spreadsheet => {
                MarkAddress::Spreadsheet(SpreadsheetAddress::from_fields(fields)?)
            }
            DocKind::Xml => MarkAddress::Xml(XmlAddress::from_fields(fields)?),
            DocKind::Text => MarkAddress::Text(TextAddress::from_fields(fields)?),
            DocKind::Html => MarkAddress::Html(HtmlAddress::from_fields(fields)?),
            DocKind::Pdf => MarkAddress::Pdf(PdfAddress::from_fields(fields)?),
            DocKind::Slides => MarkAddress::Slides(SlideAddress::from_fields(fields)?),
        })
    }
}

impl fmt::Display for MarkAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkAddress::Spreadsheet(a) => write!(f, "{a}"),
            MarkAddress::Xml(a) => write!(f, "{a}"),
            MarkAddress::Text(a) => write!(f, "{a}"),
            MarkAddress::Html(a) => write!(f, "{a}"),
            MarkAddress::Pdf(a) => write!(f, "{a}"),
            MarkAddress::Slides(a) => write!(f, "{a}"),
        }
    }
}

/// Conversion between a concrete address type and the [`MarkAddress`]
/// enum — what lets the generic [`crate::AppModule`] adapter work over
/// any [`basedocs::BaseApplication`].
pub trait WrapAddress: Address {
    /// Wrap into the enum.
    fn wrap(self) -> MarkAddress;
    /// Borrow back out of the enum, if the variant matches.
    fn unwrap_ref(addr: &MarkAddress) -> Option<&Self>;
}

macro_rules! impl_wrap {
    ($ty:ty, $variant:ident) => {
        impl WrapAddress for $ty {
            fn wrap(self) -> MarkAddress {
                MarkAddress::$variant(self)
            }
            fn unwrap_ref(addr: &MarkAddress) -> Option<&Self> {
                match addr {
                    MarkAddress::$variant(a) => Some(a),
                    _ => None,
                }
            }
        }
    };
}

impl_wrap!(SpreadsheetAddress, Spreadsheet);
impl_wrap!(XmlAddress, Xml);
impl_wrap!(TextAddress, Text);
impl_wrap!(HtmlAddress, Html);
impl_wrap!(PdfAddress, Pdf);
impl_wrap!(SlideAddress, Slides);

/// A mark: the unit the Mark Manager stores. "A mark is stored and
/// maintained in the superimposed information layer, but references
/// information in the base layer." (paper §4.2)
#[derive(Debug, Clone, PartialEq)]
pub struct Mark {
    /// Unique id, referenced by `MarkHandle`s in superimposed data.
    pub mark_id: MarkId,
    /// The typed base-layer address.
    pub address: MarkAddress,
    /// Content captured at creation time — what the user saw when they
    /// made the mark. Lets the superimposed layer show something
    /// meaningful even when the base document is unavailable, and powers
    /// the audit's "content drifted" signal.
    pub excerpt: String,
}

impl Mark {
    /// The base type of this mark.
    pub fn kind(&self) -> DocKind {
        self.address.kind()
    }
}

impl fmt::Display for Mark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → [{}] {}", self.mark_id, self.kind(), self.address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basedocs::{CellRef, Range, Span};
    use xmlkit::XPath;

    fn sample_addresses() -> Vec<MarkAddress> {
        vec![
            MarkAddress::Spreadsheet(SpreadsheetAddress {
                file_name: "meds.xls".into(),
                sheet_name: "Current".into(),
                range: Range::cell(CellRef::new(1, 1)),
            }),
            MarkAddress::Xml(XmlAddress {
                file_name: "labs.xml".into(),
                xml_path: XPath::parse("/labReport/electrolytes/k").unwrap(),
            }),
            MarkAddress::Text(TextAddress {
                file_name: "note.doc".into(),
                target: basedocs::textdoc::TextTarget::Bookmark("plan".into()),
            }),
            MarkAddress::Html(HtmlAddress {
                url: "drugs/lasix.html".into(),
                target: basedocs::htmldoc::HtmlTarget::Anchor("dosing".into()),
            }),
            MarkAddress::Pdf(PdfAddress {
                file_name: "guide.pdf".into(),
                page: 1,
                line: 2,
                span: Span::new(0, 10),
            }),
            MarkAddress::Slides(SlideAddress {
                file_name: "conf.ppt".into(),
                slide: 0,
                shape_id: "title".into(),
            }),
        ]
    }

    #[test]
    fn every_kind_roundtrips_through_fields() {
        for addr in sample_addresses() {
            let kind = addr.kind();
            let fields = addr.to_fields();
            let back = MarkAddress::from_fields(kind, &fields).unwrap();
            assert_eq!(back, addr);
        }
    }

    #[test]
    fn kinds_cover_all_six() {
        let kinds: Vec<DocKind> = sample_addresses().iter().map(MarkAddress::kind).collect();
        assert_eq!(kinds, DocKind::all().to_vec());
    }

    #[test]
    fn file_name_delegates() {
        let addrs = sample_addresses();
        assert_eq!(addrs[0].file_name(), "meds.xls");
        assert_eq!(addrs[3].file_name(), "drugs/lasix.html");
    }

    #[test]
    fn wrap_unwrap_are_inverse() {
        let a = SpreadsheetAddress {
            file_name: "f.xls".into(),
            sheet_name: "S".into(),
            range: Range::cell(CellRef::new(0, 0)),
        };
        let wrapped = a.clone().wrap();
        assert_eq!(SpreadsheetAddress::unwrap_ref(&wrapped), Some(&a));
        assert_eq!(XmlAddress::unwrap_ref(&wrapped), None);
    }

    #[test]
    fn mark_display_mentions_id_kind_and_address() {
        let mark = Mark {
            mark_id: "mark:3".into(),
            address: sample_addresses().remove(1),
            excerpt: "4.1".into(),
        };
        let text = mark.to_string();
        assert!(text.contains("mark:3"), "{text}");
        assert!(text.contains("xml"), "{text}");
        assert!(text.contains("labs.xml"), "{text}");
    }

    #[test]
    fn from_fields_with_wrong_shape_errors() {
        assert!(MarkAddress::from_fields(DocKind::Pdf, &[]).is_err());
        assert!(MarkAddress::from_fields(
            DocKind::Spreadsheet,
            &[("fileName".into(), "f".into())]
        )
        .is_err());
    }
}
