//! The Mark Manager: registry, storage, audit, and persistence.

use crate::error::MarkError;
use crate::mark::{Mark, MarkAddress, MarkId};
use crate::module::{MarkModule, Resolution};
use basedocs::DocKind;
use slimio::{Integrity, Recovered, StdVfs, Vfs};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::Path;
use xmlkit::{Element, XmlWriter};

/// On-disk format version for the mark store.
const FORMAT_VERSION: &str = "1";

/// Highest format version this build can read.
const SUPPORTED_VERSION: u32 = 1;

/// Version gate shared by strict and salvage loading.
fn check_version(root: &Element) -> Result<(), MarkError> {
    match root.attr("version") {
        Some(FORMAT_VERSION) => Ok(()),
        Some(other) => match other.trim().parse::<u32>() {
            Ok(n) if n > SUPPORTED_VERSION => Err(MarkError::UnsupportedVersion {
                found: other.to_string(),
                supported: SUPPORTED_VERSION,
            }),
            _ => Err(MarkError::Format { message: "missing or unsupported version".into() }),
        },
        None => Err(MarkError::Format { message: "missing or unsupported version".into() }),
    }
}

/// Validate one `<mark>` record and convert it.
fn read_mark(m: &Element) -> Result<Mark, MarkError> {
    if m.name != "mark" {
        return Err(MarkError::Format { message: format!("unexpected element <{}>", m.name) });
    }
    let id = m
        .attr("id")
        .ok_or_else(|| MarkError::Format { message: "mark missing id".into() })?;
    let kind = m
        .attr("kind")
        .and_then(DocKind::from_id)
        .ok_or_else(|| MarkError::Format { message: format!("mark {id} has bad kind") })?;
    let excerpt = m.attr("excerpt").unwrap_or_default().to_string();
    let fields: Vec<(String, String)> = m
        .children_named("f")
        .map(|f| {
            f.attr("n").map(|n| (n.to_string(), f.text())).ok_or_else(|| MarkError::Format {
                message: format!("mark {id} has a field without a name"),
            })
        })
        .collect::<Result<_, _>>()?;
    let address = MarkAddress::from_fields(kind, &fields)
        .map_err(|e| MarkError::Format { message: format!("mark {id}: {e}") })?;
    Ok(Mark { mark_id: id.to_string(), address, excerpt })
}

/// Numeric suffix of a `mark:N` id, for recomputing `next` in salvage.
fn mark_id_number(id: &str) -> Option<u64> {
    id.strip_prefix("mark:").and_then(|n| n.parse().ok())
}

/// Per-kind mark counts, for displays and the E6 experiment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarkStats {
    /// `(kind, number of marks)`, all kinds with at least one mark.
    pub per_kind: Vec<(DocKind, usize)>,
    /// Total marks stored.
    pub total: usize,
    /// Registered modules per kind.
    pub modules: Vec<(DocKind, usize)>,
}

/// One row of a dangling-mark audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkAudit {
    pub mark_id: MarkId,
    pub kind: DocKind,
    /// Whether the address still resolves.
    pub live: bool,
    /// Whether the content at the address still matches the excerpt
    /// captured at creation (only meaningful when `live`). Drift is the
    /// transcription-error risk the paper's redundancy discussion warns
    /// about — the mark still resolves but the value changed.
    pub drifted: bool,
}

/// Outcome of a bulk excerpt refresh: which marks were re-captured,
/// which already matched, and which dangled (base content unreachable,
/// stale excerpt deliberately left in place).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshReport {
    /// Marks whose excerpt changed.
    pub refreshed: Vec<MarkId>,
    /// Marks whose excerpt already matched current base content.
    pub unchanged: Vec<MarkId>,
    /// Marks whose base content could not be read (dangling target or no
    /// module for the kind); their stored excerpt is untouched.
    pub dangling: Vec<MarkId>,
}

impl RefreshReport {
    /// True when every mark could be read from the base layer.
    pub fn is_clean(&self) -> bool {
        self.dangling.is_empty()
    }
}

impl fmt::Display for RefreshReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refreshed, {} unchanged, {} dangling",
            self.refreshed.len(),
            self.unchanged.len(),
            self.dangling.len()
        )?;
        if !self.dangling.is_empty() {
            write!(f, " ({})", self.dangling.join(", "))?;
        }
        Ok(())
    }
}

/// The Mark Manager (paper Figure 7).
///
/// "Since the specific addressing scheme of the base-layer information is
/// encapsulated within the mark, the Mark Manager can generically store
/// and retrieve all marks."
#[derive(Default)]
pub struct MarkManager {
    /// Modules by kind; the first registered module for a kind is its
    /// default.
    modules: HashMap<DocKind, Vec<Box<dyn MarkModule>>>,
    /// The mark store (sorted for deterministic iteration/persistence).
    marks: BTreeMap<MarkId, Mark>,
    next_id: u64,
    /// `(mark id, module name)` pairs, in resolution order — the audit
    /// trail of Figure 7's arrows.
    resolution_log: Vec<(MarkId, String)>,
}

impl MarkManager {
    /// An empty manager with no modules registered.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- module registry ---------------------------------------------------

    /// Register a module. The first module registered for a kind becomes
    /// that kind's default.
    ///
    /// # Errors
    ///
    /// Rejects a second module with the same `(kind, name)`.
    pub fn register_module(&mut self, module: Box<dyn MarkModule>) -> Result<(), MarkError> {
        let kind = module.kind();
        let entry = self.modules.entry(kind).or_default();
        if entry.iter().any(|m| m.module_name() == module.module_name()) {
            return Err(MarkError::Format {
                message: format!(
                    "module {:?} already registered for {kind}",
                    module.module_name()
                ),
            });
        }
        entry.push(module);
        Ok(())
    }

    /// Make a registered module the default for its kind (the module
    /// used by [`MarkManager::create_mark`] and [`MarkManager::resolve`]).
    pub fn set_default_module(&mut self, kind: DocKind, name: &str) -> Result<(), MarkError> {
        let modules = self.modules.get_mut(&kind).ok_or(MarkError::NoModule { kind })?;
        let idx = modules
            .iter()
            .position(|m| m.module_name() == name)
            .ok_or_else(|| MarkError::NoSuchModule { kind, module: name.to_string() })?;
        let module = modules.remove(idx);
        modules.insert(0, module);
        Ok(())
    }

    /// Kinds with at least one registered module.
    pub fn supported_kinds(&self) -> Vec<DocKind> {
        let mut kinds: Vec<DocKind> = self.modules.keys().copied().collect();
        kinds.sort_unstable();
        kinds
    }

    /// Name of the default module for a kind, if one is registered —
    /// lets the resilient resolver key its per-module circuit breakers
    /// without reaching into the registry.
    pub fn default_module_name(&self, kind: DocKind) -> Option<&str> {
        self.modules.get(&kind).and_then(|v| v.first()).map(|m| m.module_name())
    }

    fn default_module(&self, kind: DocKind) -> Result<&dyn MarkModule, MarkError> {
        self.modules
            .get(&kind)
            .and_then(|v| v.first())
            .map(|b| b.as_ref())
            .ok_or(MarkError::NoModule { kind })
    }

    fn named_module(&self, kind: DocKind, name: &str) -> Result<&dyn MarkModule, MarkError> {
        self.modules
            .get(&kind)
            .and_then(|v| v.iter().find(|m| m.module_name() == name))
            .map(|b| b.as_ref())
            .ok_or_else(|| MarkError::NoSuchModule { kind, module: name.to_string() })
    }

    // ---- mark creation -------------------------------------------------------

    /// Create a mark from the current selection of `kind`'s base
    /// application — the paper's creation flow: "Once the user has created
    /// a mark, it can be placed onto the SLIMPad".
    pub fn create_mark(&mut self, kind: DocKind) -> Result<MarkId, MarkError> {
        let module = self.default_module(kind)?;
        let address = module.address_from_selection()?;
        let excerpt = module.extract(&address).unwrap_or_default();
        Ok(self.store(address, excerpt))
    }

    /// Create a mark from an explicit address (programmatic callers and
    /// store loading).
    pub fn create_mark_at(&mut self, address: MarkAddress) -> Result<MarkId, MarkError> {
        let excerpt = match self.default_module(address.kind()) {
            Ok(module) => module.extract(&address).unwrap_or_default(),
            Err(_) => String::new(),
        };
        Ok(self.store(address, excerpt))
    }

    fn store(&mut self, address: MarkAddress, excerpt: String) -> MarkId {
        let mark_id = format!("mark:{}", self.next_id);
        self.next_id += 1;
        self.marks.insert(mark_id.clone(), Mark { mark_id: mark_id.clone(), address, excerpt });
        mark_id
    }

    // ---- mark access -----------------------------------------------------------

    /// Look up a mark by id.
    pub fn get(&self, mark_id: &str) -> Result<&Mark, MarkError> {
        self.marks
            .get(mark_id)
            .ok_or_else(|| MarkError::UnknownMark { mark_id: mark_id.to_string() })
    }

    /// All marks in id order.
    pub fn marks(&self) -> impl Iterator<Item = &Mark> {
        self.marks.values()
    }

    /// Number of stored marks.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True if no marks are stored.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Remove a mark, returning it.
    pub fn remove(&mut self, mark_id: &str) -> Result<Mark, MarkError> {
        self.marks
            .remove(mark_id)
            .ok_or_else(|| MarkError::UnknownMark { mark_id: mark_id.to_string() })
    }

    // ---- resolution ----------------------------------------------------------

    /// Resolve a mark through its kind's default module — the
    /// double-click path of paper Figure 4.
    pub fn resolve(&mut self, mark_id: &str) -> Result<Resolution, MarkError> {
        let mark = self.get(mark_id)?;
        let address = mark.address.clone();
        let module = self.default_module(address.kind())?;
        let resolution = module.resolve(&address)?;
        let name = module.module_name().to_string();
        self.resolution_log.push((mark_id.to_string(), name));
        Ok(resolution)
    }

    /// Resolve through a specific module (e.g. the in-place viewer).
    pub fn resolve_with(&mut self, mark_id: &str, module_name: &str) -> Result<Resolution, MarkError> {
        let mark = self.get(mark_id)?;
        let address = mark.address.clone();
        let module = self.named_module(address.kind(), module_name)?;
        let resolution = module.resolve(&address)?;
        self.resolution_log.push((mark_id.to_string(), module_name.to_string()));
        Ok(resolution)
    }

    /// §6 extension: the marked element's current content.
    pub fn extract_content(&self, mark_id: &str) -> Result<String, MarkError> {
        let mark = self.get(mark_id)?;
        self.default_module(mark.kind())?.extract(&mark.address)
    }

    /// Current content at an arbitrary address (no mark needed) — used
    /// by the repair pass to vet re-bind candidates.
    pub fn extract_at(&self, address: &MarkAddress) -> Result<String, MarkError> {
        self.default_module(address.kind())?.extract(address)
    }

    /// Point an existing mark at a new address (repair re-bind). The
    /// excerpt is kept — a re-bind targets the address that still holds
    /// it. Returns the old address.
    pub fn rebind(&mut self, mark_id: &str, address: MarkAddress) -> Result<MarkAddress, MarkError> {
        let mark = self
            .marks
            .get_mut(mark_id)
            .ok_or_else(|| MarkError::UnknownMark { mark_id: mark_id.to_string() })?;
        Ok(std::mem::replace(&mut mark.address, address))
    }

    /// The resolution audit trail.
    pub fn resolution_log(&self) -> &[(MarkId, String)] {
        &self.resolution_log
    }

    // ---- audit and stats ----------------------------------------------------

    /// Check every mark for liveness and content drift.
    pub fn audit(&self) -> Vec<MarkAudit> {
        self.marks
            .values()
            .map(|mark| {
                let (live, drifted) = match self.default_module(mark.kind()) {
                    Ok(module) => match module.extract(&mark.address) {
                        Ok(current) => (true, current != mark.excerpt),
                        Err(_) => (false, false),
                    },
                    Err(_) => (false, false),
                };
                MarkAudit { mark_id: mark.mark_id.clone(), kind: mark.kind(), live, drifted }
            })
            .collect()
    }

    /// Accept drift on one mark: re-capture its excerpt from the base
    /// document's current content. Returns the old excerpt.
    pub fn refresh_excerpt(&mut self, mark_id: &str) -> Result<String, MarkError> {
        let address = self.get(mark_id)?.address.clone();
        let module = self.default_module(address.kind())?;
        let current = module.extract(&address)?;
        let mark = self
            .marks
            .get_mut(mark_id)
            .ok_or_else(|| MarkError::UnknownMark { mark_id: mark_id.to_string() })?;
        Ok(std::mem::replace(&mut mark.excerpt, current))
    }

    /// Accept drift everywhere: refresh every live mark's excerpt.
    /// Dangling marks are left untouched (their stale excerpt is the
    /// only content left) but *reported*, never silently skipped — the
    /// report's `dangling` ids are exactly the marks a repair pass
    /// should look at.
    pub fn refresh_all_excerpts(&mut self) -> RefreshReport {
        let ids: Vec<MarkId> = self.marks.keys().cloned().collect();
        let mut report = RefreshReport::default();
        for id in ids {
            match self.refresh_excerpt(&id) {
                Ok(old) => {
                    if self.get(&id).map(|m| m.excerpt != old).unwrap_or(false) {
                        report.refreshed.push(id);
                    } else {
                        report.unchanged.push(id);
                    }
                }
                Err(_) => report.dangling.push(id),
            }
        }
        report
    }

    /// Counts per kind and module registry size.
    pub fn stats(&self) -> MarkStats {
        let mut per_kind: BTreeMap<DocKind, usize> = BTreeMap::new();
        for mark in self.marks.values() {
            *per_kind.entry(mark.kind()).or_default() += 1;
        }
        let mut modules: Vec<(DocKind, usize)> =
            self.modules.iter().map(|(k, v)| (*k, v.len())).collect();
        modules.sort_unstable_by_key(|(k, _)| *k);
        MarkStats {
            per_kind: per_kind.into_iter().collect(),
            total: self.marks.len(),
            modules,
        }
    }

    // ---- persistence ----------------------------------------------------------

    /// Serialize the mark store (not the modules — those are code) to XML.
    pub fn to_xml(&self) -> String {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start("marks");
        w.attr("version", FORMAT_VERSION);
        w.attr("next", &self.next_id.to_string());
        for mark in self.marks.values() {
            w.start("mark");
            w.attr("id", &mark.mark_id);
            w.attr("kind", mark.kind().id());
            w.attr("excerpt", &mark.excerpt);
            for (name, value) in mark.address.to_fields() {
                w.start("f");
                w.attr("n", &name);
                w.text(&value);
                w.end();
            }
            w.end();
        }
        w.end();
        w.finish()
    }

    /// Load a mark store previously saved with [`MarkManager::to_xml`]
    /// into this manager (which supplies the modules). Existing marks are
    /// replaced.
    pub fn load_xml(&mut self, text: &str) -> Result<(), MarkError> {
        let doc = xmlkit::parse(text).map_err(|e| MarkError::Xml(e.to_string()))?;
        if doc.root.name != "marks" {
            return Err(MarkError::Format {
                message: format!("expected <marks>, found <{}>", doc.root.name),
            });
        }
        check_version(&doc.root)?;
        let next_id: u64 = doc
            .root
            .attr("next")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| MarkError::Format { message: "bad 'next' attribute".into() })?;
        let mut marks = BTreeMap::new();
        for m in doc.root.elements() {
            let mark = read_mark(m)?;
            marks.insert(mark.mark_id.clone(), mark);
        }
        self.marks = marks;
        self.next_id = next_id;
        Ok(())
    }

    /// Salvage a mark store from possibly damaged XML text: keep every
    /// readable mark, count the rest as lost, and report what happened.
    /// Existing marks are replaced. Errors only when nothing at all is
    /// recoverable or the store declares a newer format version.
    pub fn load_xml_salvage(&mut self, text: &str) -> Result<Recovered<()>, MarkError> {
        let salvaged = xmlkit::parse_salvage(text);
        let root = match salvaged.root {
            Some(root) => root,
            None => {
                return Err(match salvaged.error {
                    Some(e) => MarkError::Xml(e.to_string()),
                    None => MarkError::Format { message: "no root element".into() },
                })
            }
        };
        if root.name != "marks" {
            return Err(MarkError::Format {
                message: format!("expected <marks>, found <{}>", root.name),
            });
        }
        check_version(&root)?;

        let mut recovered = Recovered::clean((), 0);
        if let Some(e) = &salvaged.error {
            recovered.note(format!("file damaged: {e}"));
        }
        let mut marks = BTreeMap::new();
        let mut max_id = None::<u64>;
        let children: Vec<&Element> = root.elements().collect();
        let suspect_last = salvaged.unclosed >= 2;
        for (i, m) in children.iter().enumerate() {
            if suspect_last && i + 1 == children.len() {
                recovered.lost += 1;
                recovered.note(format!("mark #{i} truncated mid-record; dropped"));
                continue;
            }
            match read_mark(m) {
                Ok(mark) => {
                    max_id = max_id.max(mark_id_number(&mark.mark_id));
                    marks.insert(mark.mark_id.clone(), mark);
                    recovered.salvaged += 1;
                }
                Err(e) => {
                    recovered.lost += 1;
                    recovered.note(format!("skipped unreadable mark: {e}"));
                }
            }
        }
        // The 'next' counter may itself be damaged: recompute a safe one
        // so newly created marks never collide with salvaged ids.
        let declared_next = root.attr("next").and_then(|n| n.parse::<u64>().ok());
        let floor = max_id.map(|n| n + 1).unwrap_or(0);
        let next_id = match declared_next {
            Some(n) if n >= floor => n,
            other => {
                recovered.note(format!(
                    "'next' counter {} repaired to {floor}",
                    other.map(|n| n.to_string()).unwrap_or_else(|| "missing".into())
                ));
                floor
            }
        };
        self.marks = marks;
        self.next_id = next_id;
        Ok(recovered)
    }

    /// Write the mark store to a file: sealed with a checksum footer and
    /// installed atomically. A crash at any point leaves the previous
    /// file intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MarkError> {
        self.save_to(&StdVfs, path.as_ref())
    }

    /// [`save`](MarkManager::save) through an explicit [`Vfs`] backend.
    pub fn save_to(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), MarkError> {
        slimio::save_atomic(vfs, path, &self.to_xml())?;
        Ok(())
    }

    /// Load a mark store file saved by [`MarkManager::save`] into this
    /// manager (which supplies the modules). Strict: a file failing its
    /// integrity check is refused with [`MarkError::Corrupt`]; legacy
    /// files without a footer are trusted as-is.
    pub fn load_file(&mut self, path: impl AsRef<Path>) -> Result<(), MarkError> {
        self.load_file_from(&StdVfs, path.as_ref())
    }

    /// [`load_file`](MarkManager::load_file) through an explicit [`Vfs`].
    pub fn load_file_from(&mut self, vfs: &dyn Vfs, path: &Path) -> Result<(), MarkError> {
        let (verdict, payload) = slimio::load_sealed(vfs, path)?;
        if verdict == Integrity::Corrupt {
            return Err(MarkError::Corrupt {
                detail: format!("{} (checksum mismatch or truncation)", path.display()),
            });
        }
        self.load_xml(&payload)
    }

    /// Salvage a mark store file: recover every readable mark instead of
    /// failing hard.
    pub fn load_file_salvage(&mut self, path: impl AsRef<Path>) -> Result<Recovered<()>, MarkError> {
        self.load_file_salvage_from(&StdVfs, path.as_ref())
    }

    /// [`load_file_salvage`](MarkManager::load_file_salvage) through an
    /// explicit [`Vfs`] backend.
    pub fn load_file_salvage_from(
        &mut self,
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<Recovered<()>, MarkError> {
        let (verdict, payload) = slimio::load_sealed(vfs, path)?;
        let mut recovered = self.load_xml_salvage(&payload)?;
        if verdict == Integrity::Corrupt {
            recovered.note("integrity check failed: checksum mismatch or truncation");
        }
        Ok(recovered)
    }
}

impl std::fmt::Debug for MarkManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarkManager")
            .field("marks", &self.marks.len())
            .field("kinds", &self.supported_kinds())
            .field("next_id", &self.next_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{AppModule, ResolutionStyle};
    use basedocs::spreadsheet::Workbook;
    use basedocs::{SpreadsheetApp, XmlApp};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn manager_with_apps() -> (MarkManager, Rc<RefCell<SpreadsheetApp>>, Rc<RefCell<XmlApp>>) {
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix").unwrap();
        wb.sheet_mut("Sheet1").unwrap().set_a1("B1", "40").unwrap();
        let mut sheet_app = SpreadsheetApp::new();
        sheet_app.open(wb).unwrap();
        let sheet_app = Rc::new(RefCell::new(sheet_app));

        let mut xml_app = XmlApp::new();
        xml_app.open_text("labs.xml", "<labs><na>140</na><k>4.1</k></labs>").unwrap();
        let xml_app = Rc::new(RefCell::new(xml_app));

        let mut mgr = MarkManager::new();
        mgr.register_module(Box::new(AppModule::in_context("excel", Rc::clone(&sheet_app))))
            .unwrap();
        mgr.register_module(Box::new(AppModule::in_place(
            "excel-viewer",
            Rc::clone(&sheet_app),
        )))
        .unwrap();
        mgr.register_module(Box::new(AppModule::in_context("xml", Rc::clone(&xml_app))))
            .unwrap();
        (mgr, sheet_app, xml_app)
    }

    #[test]
    fn create_from_selection_and_resolve() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let id = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        assert_eq!(id, "mark:0");
        assert_eq!(mgr.get(&id).unwrap().excerpt, "Lasix");

        let res = mgr.resolve(&id).unwrap();
        assert_eq!(res.style, ResolutionStyle::InContext);
        assert!(res.display.contains("[Lasix]"));
        assert_eq!(mgr.resolution_log(), &[(id, "excel".to_string())]);
    }

    #[test]
    fn create_without_selection_fails() {
        let (mut mgr, _, _) = manager_with_apps();
        assert!(matches!(
            mgr.create_mark(DocKind::Spreadsheet),
            Err(MarkError::Base(basedocs::DocError::NoSelection))
        ));
    }

    #[test]
    fn create_for_unregistered_kind_fails() {
        let (mut mgr, _, _) = manager_with_apps();
        assert!(matches!(
            mgr.create_mark(DocKind::Pdf),
            Err(MarkError::NoModule { kind: DocKind::Pdf })
        ));
    }

    #[test]
    fn duplicate_module_names_rejected() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        let err = mgr
            .register_module(Box::new(AppModule::in_context("excel", sheet_app)))
            .unwrap_err();
        assert!(err.to_string().contains("excel"));
    }

    #[test]
    fn default_module_can_be_switched() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let id = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        assert_eq!(mgr.resolve(&id).unwrap().style, ResolutionStyle::InContext);
        mgr.set_default_module(DocKind::Spreadsheet, "excel-viewer").unwrap();
        assert_eq!(mgr.resolve(&id).unwrap().style, ResolutionStyle::InPlace);
        assert!(matches!(
            mgr.set_default_module(DocKind::Spreadsheet, "nope"),
            Err(MarkError::NoSuchModule { .. })
        ));
        assert!(matches!(
            mgr.set_default_module(DocKind::Pdf, "x"),
            Err(MarkError::NoModule { .. })
        ));
    }

    #[test]
    fn resolve_with_selects_alternate_module() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let id = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        let res = mgr.resolve_with(&id, "excel-viewer").unwrap();
        assert_eq!(res.style, ResolutionStyle::InPlace);
        assert_eq!(res.display, "40");
        assert!(matches!(
            mgr.resolve_with(&id, "nope"),
            Err(MarkError::NoSuchModule { .. })
        ));
    }

    #[test]
    fn marks_across_kinds_coexist() {
        let (mut mgr, sheet_app, xml_app) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let m1 = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        xml_app.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        let m2 = mgr.create_mark(DocKind::Xml).unwrap();
        assert_eq!(mgr.len(), 2);
        assert_eq!(mgr.extract_content(&m1).unwrap(), "Lasix");
        assert_eq!(mgr.extract_content(&m2).unwrap(), "4.1");
        let stats = mgr.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(
            stats.per_kind,
            vec![(DocKind::Spreadsheet, 1), (DocKind::Xml, 1)]
        );
    }

    #[test]
    fn audit_reports_live_drifted_and_dangling() {
        let (mut mgr, sheet_app, xml_app) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let healthy = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let drifting = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        xml_app.borrow_mut().select_by_path("labs.xml", "/labs/na").unwrap();
        let dangling = mgr.create_mark(DocKind::Xml).unwrap();

        // Drift: base value edited under the mark.
        sheet_app
            .borrow_mut()
            .workbook_mut("meds.xls")
            .unwrap()
            .sheet_mut("Sheet1")
            .unwrap()
            .set_a1("A1", "Furosemide")
            .unwrap();
        // Dangle: base document closed.
        xml_app.borrow_mut().close("labs.xml").unwrap();

        let audit = mgr.audit();
        let row = |id: &str| audit.iter().find(|a| a.mark_id == id).unwrap();
        assert!(row(&healthy).live && !row(&healthy).drifted);
        assert!(row(&drifting).live && row(&drifting).drifted);
        assert!(!row(&dangling).live);
    }

    #[test]
    fn refreshing_excerpts_accepts_drift() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let id = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        sheet_app
            .borrow_mut()
            .workbook_mut("meds.xls")
            .unwrap()
            .sheet_mut("Sheet1")
            .unwrap()
            .set_a1("A1", "Furosemide")
            .unwrap();
        assert!(mgr.audit()[0].drifted);
        let old = mgr.refresh_excerpt(&id).unwrap();
        assert_eq!(old, "Lasix");
        assert_eq!(mgr.get(&id).unwrap().excerpt, "Furosemide");
        assert!(!mgr.audit()[0].drifted, "drift accepted");
        // A second refresh changes nothing.
        let report = mgr.refresh_all_excerpts();
        assert!(report.refreshed.is_empty());
        assert_eq!(report.unchanged, vec![id]);
        assert!(report.is_clean());
    }

    #[test]
    fn refresh_all_counts_only_real_changes() {
        let (mut mgr, sheet_app, xml_app) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        mgr.create_mark(DocKind::Spreadsheet).unwrap();
        xml_app.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        mgr.create_mark(DocKind::Xml).unwrap();
        // Drift one of the two; close nothing.
        sheet_app
            .borrow_mut()
            .workbook_mut("meds.xls")
            .unwrap()
            .sheet_mut("Sheet1")
            .unwrap()
            .set_a1("A1", "Torsemide")
            .unwrap();
        let report = mgr.refresh_all_excerpts();
        assert_eq!(report.refreshed.len(), 1);
        assert_eq!(report.unchanged.len(), 1);
        assert!(report.is_clean());
        // Dangling marks are untouched — and reported, not hidden.
        xml_app.borrow_mut().close("labs.xml").unwrap();
        let report = mgr.refresh_all_excerpts();
        assert!(report.refreshed.is_empty());
        assert_eq!(report.unchanged.len(), 1);
        assert_eq!(report.dangling.len(), 1);
        assert!(!report.is_clean());
        assert!(report.to_string().contains("1 dangling"), "{report}");
    }

    #[test]
    fn refresh_excerpt_on_dangling_mark_errors_and_keeps_excerpt() {
        let (mut mgr, _, xml_app) = manager_with_apps();
        xml_app.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        let id = mgr.create_mark(DocKind::Xml).unwrap();
        let excerpt = mgr.get(&id).unwrap().excerpt.clone();
        assert!(!excerpt.is_empty());
        xml_app.borrow_mut().close("labs.xml").unwrap();
        // The refresh fails loudly instead of blanking the excerpt…
        assert!(mgr.refresh_excerpt(&id).is_err());
        // …which is now the only copy of the marked content.
        assert_eq!(mgr.get(&id).unwrap().excerpt, excerpt);
    }

    #[test]
    fn rebind_repoints_a_mark_and_keeps_its_excerpt() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let id = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "B1").unwrap();
        let new_addr = mgr
            .modules
            .get(&DocKind::Spreadsheet)
            .and_then(|v| v.first())
            .unwrap()
            .address_from_selection()
            .unwrap();
        let old = mgr.rebind(&id, new_addr.clone()).unwrap();
        assert_eq!(old.to_string(), "meds.xls!Sheet1!A1");
        assert_eq!(mgr.get(&id).unwrap().address, new_addr);
        assert_eq!(mgr.get(&id).unwrap().excerpt, "Lasix", "rebind must not touch the excerpt");
        assert!(mgr.rebind("mark:99", new_addr).is_err());
    }

    #[test]
    fn default_module_name_tracks_registry_order() {
        let (mgr, _, _) = manager_with_apps();
        assert_eq!(mgr.default_module_name(DocKind::Spreadsheet), Some("excel"));
        assert_eq!(mgr.default_module_name(DocKind::Xml), Some("xml"));
        assert_eq!(mgr.default_module_name(DocKind::Pdf), None);
    }

    #[test]
    fn xml_persistence_roundtrips_marks() {
        let (mut mgr, sheet_app, xml_app) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        mgr.create_mark(DocKind::Spreadsheet).unwrap();
        xml_app.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        mgr.create_mark(DocKind::Xml).unwrap();

        let xml = mgr.to_xml();
        let (mut mgr2, _, _) = manager_with_apps();
        mgr2.load_xml(&xml).unwrap();
        assert_eq!(mgr2.len(), 2);
        let originals: Vec<_> = mgr.marks().cloned().collect();
        let loaded: Vec<_> = mgr2.marks().cloned().collect();
        assert_eq!(originals, loaded);
        // Id allocation continues past loaded ids.
        let next = mgr2.create_mark_at(originals[0].address.clone()).unwrap();
        assert_eq!(next, "mark:2");
    }

    #[test]
    fn load_rejects_malformed_stores() {
        let (mut mgr, _, _) = manager_with_apps();
        assert!(matches!(mgr.load_xml("<wrong/>"), Err(MarkError::Format { .. })));
        assert!(matches!(mgr.load_xml("not xml"), Err(MarkError::Xml(_))));
        assert!(matches!(
            mgr.load_xml(r#"<marks version="1"><mark id="m" kind="alien"/></marks>"#),
            Err(MarkError::Format { .. })
        ));
        assert!(matches!(
            mgr.load_xml(r#"<marks version="1" next="0"><mark id="m" kind="xml"/></marks>"#),
            Err(MarkError::Format { .. })
        ));
    }

    #[test]
    fn remove_and_unknown_mark_errors() {
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        let id = mgr.create_mark(DocKind::Spreadsheet).unwrap();
        assert_eq!(mgr.remove(&id).unwrap().mark_id, id);
        assert!(mgr.is_empty());
        assert!(matches!(mgr.remove(&id), Err(MarkError::UnknownMark { .. })));
        assert!(matches!(mgr.resolve(&id), Err(MarkError::UnknownMark { .. })));
    }

    #[test]
    fn excerpt_survives_persistence_for_unavailable_base() {
        // A mark whose base app is not registered still loads (excerpt
        // provides the display fallback).
        let (mut mgr, sheet_app, _) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        mgr.create_mark(DocKind::Spreadsheet).unwrap();
        let xml = mgr.to_xml();
        let mut bare = MarkManager::new(); // no modules at all
        bare.load_xml(&xml).unwrap();
        assert_eq!(bare.marks().next().unwrap().excerpt, "Lasix");
        assert!(matches!(
            bare.extract_content("mark:0"),
            Err(MarkError::NoModule { .. })
        ));
    }

    // ---- durability & recovery ------------------------------------------

    use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
    use std::path::Path;

    fn populated_manager() -> MarkManager {
        let (mut mgr, sheet_app, xml_app) = manager_with_apps();
        sheet_app.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
        mgr.create_mark(DocKind::Spreadsheet).unwrap();
        xml_app.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        mgr.create_mark(DocKind::Xml).unwrap();
        mgr
    }

    #[test]
    fn newer_version_is_a_typed_refusal() {
        let mut mgr = MarkManager::new();
        assert!(matches!(
            mgr.load_xml(r#"<marks version="3" next="0"/>"#),
            Err(MarkError::UnsupportedVersion { ref found, supported: 1 }) if found == "3"
        ));
        assert!(matches!(
            mgr.load_xml_salvage(r#"<marks version="3" next="0"/>"#),
            Err(MarkError::UnsupportedVersion { .. })
        ));
        assert!(matches!(
            mgr.load_xml(r#"<marks version="banana" next="0"/>"#),
            Err(MarkError::Format { .. })
        ));
    }

    #[test]
    fn file_save_load_roundtrips_and_is_sealed() {
        let mgr = populated_manager();
        let vfs = MemVfs::new();
        mgr.save_to(&vfs, Path::new("marks.xml")).unwrap();
        assert_eq!(vfs.file_count(), 1, "temp file must not linger");
        let raw = String::from_utf8(vfs.bytes("marks.xml").unwrap().to_vec()).unwrap();
        assert!(raw.contains("<!--slimio v1 crc32="), "missing seal footer");

        let (mut mgr2, _, _) = manager_with_apps();
        mgr2.load_file_from(&vfs, Path::new("marks.xml")).unwrap();
        assert_eq!(mgr2.len(), 2);
        let originals: Vec<_> = mgr.marks().cloned().collect();
        let loaded: Vec<_> = mgr2.marks().cloned().collect();
        assert_eq!(originals, loaded);
    }

    #[test]
    fn crash_during_save_preserves_previous_file() {
        let old = populated_manager();
        for op in [FaultOp::Write, FaultOp::Sync, FaultOp::Rename] {
            let base = MemVfs::new();
            old.save_to(&base, Path::new("marks.xml")).unwrap();
            let config = FaultConfig::new(op, FaultMode::Torn, 0, 23).halting();
            let vfs = FaultVfs::new(base, config);
            assert!(old.save_to(&vfs, Path::new("marks.xml")).is_err());
            let disk = vfs.into_inner();
            let (mut reread, _, _) = manager_with_apps();
            reread.load_file_from(&disk, Path::new("marks.xml")).unwrap();
            assert_eq!(reread.len(), old.len(), "{op:?} damaged the previous file");
        }
    }

    #[test]
    fn corrupt_file_refused_strictly_but_salvageable() {
        let mgr = populated_manager();
        let vfs = MemVfs::new();
        mgr.save_to(&vfs, Path::new("marks.xml")).unwrap();
        let mut bytes = vfs.bytes("marks.xml").unwrap().to_vec();
        let idx = String::from_utf8(bytes.clone()).unwrap().find("Lasix").unwrap();
        bytes[idx] = b'Z';
        vfs.write(Path::new("marks.xml"), &bytes).unwrap();

        let mut strict = MarkManager::new();
        assert!(matches!(
            strict.load_file_from(&vfs, Path::new("marks.xml")),
            Err(MarkError::Corrupt { .. })
        ));

        let mut salvager = MarkManager::new();
        let report = salvager.load_file_salvage_from(&vfs, Path::new("marks.xml")).unwrap();
        assert_eq!(report.salvaged, 2);
        assert!(report.notes.iter().any(|n| n.contains("integrity")));
    }

    #[test]
    fn salvage_recovers_prefix_and_repairs_next_counter() {
        let mgr = populated_manager();
        let xml = mgr.to_xml();
        // Truncate inside the second mark's record.
        let cut = xml.rfind("<mark ").unwrap() + 12;
        let mut salvager = MarkManager::new();
        let report = salvager.load_xml_salvage(&xml[..cut]).unwrap();
        assert_eq!(report.salvaged, 1);
        assert_eq!(salvager.len(), 1);
        assert!(!report.is_clean());
        // New ids must not collide with the salvaged mark.
        let address = salvager.marks().next().unwrap().address.clone();
        let new_id = salvager.create_mark_at(address).unwrap();
        assert!(salvager.get(&new_id).is_ok());
        assert_ne!(new_id, salvager.marks().next().unwrap().mark_id);
    }

    #[test]
    fn salvage_of_wellformed_store_is_clean() {
        let mgr = populated_manager();
        let mut salvager = MarkManager::new();
        let report = salvager.load_xml_salvage(&mgr.to_xml()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.salvaged, 2);
        let originals: Vec<_> = mgr.marks().cloned().collect();
        let loaded: Vec<_> = salvager.marks().cloned().collect();
        assert_eq!(originals, loaded);
    }

    #[test]
    fn salvage_skips_unreadable_marks_mid_store() {
        // A real store with one unreadable record injected up front.
        let xml = populated_manager()
            .to_xml()
            .replacen("<mark ", r#"<mark id="mark:9" kind="alien"/><mark "#, 1);
        let mut salvager = MarkManager::new();
        let report = salvager.load_xml_salvage(&xml).unwrap();
        assert_eq!(report.salvaged, 2);
        assert_eq!(report.lost, 1);
        assert!(report.notes.iter().any(|n| n.contains("unreadable")));
        assert!(salvager.get("mark:0").is_ok());
        assert!(salvager.get("mark:1").is_ok());
    }
}
