//! Resilient mark resolution: deadlines, bounded retry with backoff,
//! per-module circuit breakers, and excerpt-degraded fallback.
//!
//! The paper's mark modules "drive the base-layer application to the
//! information element designated by the mark" (§4.2) — every resolution
//! is a call across a process boundary into software that can stall,
//! fail transiently, or lose the document outright. [`ResilientResolver`]
//! wraps [`MarkManager::resolve`] with the classic failure-safety trio:
//!
//! * a **per-call deadline** and bounded retries with exponential
//!   backoff plus deterministic jitter ([`RetryPolicy`]);
//! * a **per-module circuit breaker** ([`Breaker`]) so a misbehaving
//!   base application is short-circuited instead of hammered, with
//!   half-open probes to detect recovery;
//! * **graceful degradation**: when resolution ultimately fails the
//!   caller still gets a [`Resolution`] — the mark's stored excerpt as
//!   [`ResolutionStyle::DegradedExcerpt`] — together with a structured
//!   [`ResolutionOutcome`] recording every attempt.
//!
//! Marks that repeatedly dangle are **quarantined** (resolution
//! short-circuits to the excerpt until a repair pass re-binds them; see
//! `core`'s repair pass, which searches the base layer for the saved
//! excerpt and calls [`ResilientResolver::try_rebind`]).
//!
//! All timing flows through a pluggable [`Clock`], so tests run on a
//! [`MockClock`] — instant, and byte-identically reproducible per seed.

use crate::error::MarkError;
use crate::manager::{MarkAudit, MarkManager};
use crate::mark::{MarkAddress, MarkId};
use crate::module::{Resolution, ResolutionStyle};
use basedocs::DocError;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// splitmix64-style mixer shared by backoff jitter and fault schedules:
/// two words in, one well-scrambled word out, fully deterministic.
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Time source for the resolver. Production uses [`SystemClock`]; every
/// test uses [`MockClock`] so backoff sleeps are instant and timestamps
/// in traces are reproducible.
pub trait Clock {
    /// Milliseconds since this clock's epoch.
    fn now_ms(&self) -> u64;
    /// Block (or pretend to block) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// A manually advanced clock. Cloning shares the underlying instant, so
/// a fault injector and a resolver can move the same timeline — and the
/// instant is atomic, so a chaos harness on another thread can stall a
/// service whose deadlines read the same clock (`Send + Sync`).
#[derive(Clone, Default)]
pub struct MockClock {
    now: Arc<AtomicU64>,
}

impl MockClock {
    pub fn new() -> Self {
        MockClock::default()
    }

    /// Move time forward.
    pub fn advance(&self, ms: u64) {
        // Saturating add without a compare loop: time is u64 ms; wrapping
        // would need half a billion years of uptime, but stay exact.
        let _ = self.now.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |now| {
            Some(now.saturating_add(ms))
        });
    }

    /// Jump to an absolute instant (monotonic: earlier values ignored).
    pub fn set(&self, ms: u64) {
        let _ = self.now.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |now| {
            Some(now.max(ms))
        });
    }
}

impl Clock for MockClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance(ms);
    }
}

/// Wall-clock time, measured from construction.
pub struct SystemClock {
    start: std::time::Instant,
}

impl SystemClock {
    pub fn new() -> Self {
        SystemClock { start: std::time::Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Retry/deadline policy for one resolution call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most attempts per resolution (>= 1).
    pub max_attempts: u32,
    /// Per-call deadline: once this much time has passed since the call
    /// started, no further attempt is made and late successes count as
    /// failures.
    pub deadline_ms: u64,
    /// Backoff before retry `n` is `base << (n-1)`, capped at
    /// `max_backoff_ms`, plus deterministic jitter in `0..=base`.
    pub base_backoff_ms: u64,
    pub max_backoff_ms: u64,
    /// Seed for the jitter stream; same seed, same backoff schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            deadline_ms: 1_000,
            base_backoff_ms: 8,
            max_backoff_ms: 256,
            jitter_seed: 0x5eed_ba5e,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the `retry`-th retry (`retry >= 1`): exponential
    /// with a cap, plus deterministic jitter so synchronized callers
    /// would still fan out — and so traces stay byte-identical per seed.
    pub fn backoff_ms(&self, retry: u32) -> u64 {
        let base = self.base_backoff_ms.max(1);
        let exp = base
            .saturating_mul(1u64 << (retry.saturating_sub(1)).min(16))
            .min(self.max_backoff_ms.max(base));
        exp + mix64(self.jitter_seed, retry as u64) % (base + 1)
    }
}

/// Circuit-breaker tuning for one module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed -> Open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects calls before probing.
    pub cooldown_ms: u64,
    /// Probe calls admitted while half-open before the breaker gives up
    /// and re-opens.
    pub probe_budget: u32,
    /// Probe successes needed to close again.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 500,
            probe_budget: 3,
            probe_successes: 2,
        }
    }
}

/// Observable breaker state, also used for trace formatting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; `failures` consecutive failures so far.
    Closed { failures: u32 },
    /// Calls are short-circuited until `until_ms`.
    Open { until_ms: u64 },
    /// Cooldown elapsed; a bounded probe budget trickles calls through.
    HalfOpen { probes_used: u32, successes: u32 },
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed { failures } => write!(f, "closed(failures={failures})"),
            BreakerState::Open { until_ms } => write!(f, "open(until={until_ms}ms)"),
            BreakerState::HalfOpen { probes_used, successes } => {
                write!(f, "half-open(probes={probes_used}, ok={successes})")
            }
        }
    }
}

/// Admission decision for one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    Allowed,
    /// The breaker is open; no call may be made until `open_until`.
    ShortCircuit { open_until: u64 },
}

/// Per-module circuit breaker.
///
/// ```text
///            failure_threshold consecutive failures
///   Closed ------------------------------------------> Open
///     ^                                                  |
///     | probe_successes                     cooldown_ms  |
///     |   successes                           elapsed    v
///   HalfOpen <---------------------------------------- (admit)
///     |   ^
///     |   | any failure, or probe budget exhausted
///     +---+--------------------------------------------> Open
/// ```
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker { cfg, state: BreakerState::Closed { failures: 0 } }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decide whether a call may proceed at time `now`.
    pub fn admit(&mut self, now: u64) -> Admit {
        match self.state {
            BreakerState::Closed { .. } => Admit::Allowed,
            BreakerState::Open { until_ms } if now < until_ms => {
                Admit::ShortCircuit { open_until: until_ms }
            }
            BreakerState::Open { .. } => {
                // Cooldown elapsed: start probing.
                self.state = BreakerState::HalfOpen { probes_used: 1, successes: 0 };
                Admit::Allowed
            }
            BreakerState::HalfOpen { probes_used, successes } => {
                if probes_used >= self.cfg.probe_budget {
                    // Probe budget spent without closing — re-open.
                    self.state =
                        BreakerState::Open { until_ms: now.saturating_add(self.cfg.cooldown_ms) };
                    Admit::ShortCircuit { open_until: now.saturating_add(self.cfg.cooldown_ms) }
                } else {
                    self.state =
                        BreakerState::HalfOpen { probes_used: probes_used + 1, successes };
                    Admit::Allowed
                }
            }
        }
    }

    /// Record a successful call.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed { .. } => {
                self.state = BreakerState::Closed { failures: 0 };
            }
            BreakerState::HalfOpen { probes_used, successes } => {
                let successes = successes + 1;
                if successes >= self.cfg.probe_successes {
                    self.state = BreakerState::Closed { failures: 0 };
                } else {
                    self.state = BreakerState::HalfOpen { probes_used, successes };
                }
            }
            // A success while open means a call slipped out before the
            // trip; keep rejecting until cooldown.
            BreakerState::Open { .. } => {}
        }
    }

    /// Record a failed call finishing at time `now`.
    pub fn on_failure(&mut self, now: u64) {
        match self.state {
            BreakerState::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.failure_threshold {
                    self.state =
                        BreakerState::Open { until_ms: now.saturating_add(self.cfg.cooldown_ms) };
                } else {
                    self.state = BreakerState::Closed { failures };
                }
            }
            BreakerState::HalfOpen { .. } => {
                self.state =
                    BreakerState::Open { until_ms: now.saturating_add(self.cfg.cooldown_ms) };
            }
            BreakerState::Open { .. } => {}
        }
    }
}

/// One resolution attempt as recorded in a [`ResolutionOutcome`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attempt {
    /// Clock reading when the attempt was admitted (before the module
    /// call, after any backoff sleep).
    pub at_ms: u64,
    /// `None` for success; the attempt's error otherwise.
    pub error: Option<MarkError>,
}

/// Structured account of one resilient resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolutionOutcome {
    pub mark_id: MarkId,
    /// Module the call was routed to (`None` when no module was
    /// registered for the mark's kind).
    pub module: Option<String>,
    /// Every attempt in order, including short-circuits and timeouts.
    pub attempts: Vec<Attempt>,
    /// True when the caller got the stored excerpt, not the base layer.
    pub degraded: bool,
    /// True when the audit machinery flagged this mark's excerpt as
    /// drifted from current base content.
    pub stale: bool,
    /// True when the mark is quarantined (now, possibly as a result of
    /// this very call).
    pub quarantined: bool,
    /// Breaker state for `module` after the call, if a breaker exists.
    pub breaker: Option<BreakerState>,
    pub started_ms: u64,
    pub finished_ms: u64,
}

impl ResolutionOutcome {
    /// Number of attempts that carried an error.
    pub fn failed_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| a.error.is_some()).count()
    }

    /// Deterministic multi-line trace. Contains only timestamps, error
    /// text, and state — never display content — so two runs of the same
    /// seeded fault schedule produce byte-identical traces.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        let module = self.module.as_deref().unwrap_or("(none)");
        let verdict = if self.degraded { "DEGRADED" } else { "ok" };
        out.push_str(&format!(
            "resolve {} via {module}: {verdict} after {} attempt(s), {}ms..{}ms\n",
            self.mark_id,
            self.attempts.len(),
            self.started_ms,
            self.finished_ms,
        ));
        for (i, attempt) in self.attempts.iter().enumerate() {
            match &attempt.error {
                None => out.push_str(&format!("  #{} @{}ms: ok\n", i + 1, attempt.at_ms)),
                Some(e) => out.push_str(&format!("  #{} @{}ms: {e}\n", i + 1, attempt.at_ms)),
            }
        }
        if let Some(state) = &self.breaker {
            out.push_str(&format!("  breaker[{module}]: {state}\n"));
        }
        out.push_str(&format!(
            "  flags: stale={} quarantined={}\n",
            self.stale, self.quarantined
        ));
        out
    }
}

/// A resolution plus the structured account of how it was obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilientResolution {
    pub resolution: Resolution,
    pub outcome: ResolutionOutcome,
}

impl ResilientResolution {
    /// True when `resolution.display` is the stored excerpt rather than
    /// live base-layer content.
    pub fn is_degraded(&self) -> bool {
        self.outcome.degraded
    }
}

/// What a repair pass did with one quarantined mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebindOutcome {
    /// Exactly one candidate held the saved excerpt; the mark now points
    /// at it and is out of quarantine.
    Rebound { mark_id: MarkId, to: String },
    /// No candidate held the saved excerpt; the mark stays quarantined.
    NoMatch { mark_id: MarkId },
    /// Multiple candidates held the saved excerpt; re-binding would be a
    /// guess, so the mark stays quarantined.
    Ambiguous { mark_id: MarkId, candidates: usize },
}

/// Resolution with deadlines, retries, breakers, and degradation.
///
/// The resolver is deliberately separate from [`MarkManager`] (which
/// stays the paper-faithful registry): it owns only failure-handling
/// state — breakers per module, dangle counts and quarantine per mark,
/// staleness flags fed by [`MarkManager::audit`].
pub struct ResilientResolver {
    policy: RetryPolicy,
    breaker_cfg: BreakerConfig,
    /// Dangling failures before a mark is quarantined.
    dangle_threshold: u32,
    clock: Rc<dyn Clock>,
    breakers: BTreeMap<String, Breaker>,
    dangle_counts: BTreeMap<MarkId, u32>,
    quarantined: BTreeSet<MarkId>,
    stale: BTreeSet<MarkId>,
}

impl Default for ResilientResolver {
    fn default() -> Self {
        ResilientResolver::new(Rc::new(SystemClock::new()))
    }
}

impl ResilientResolver {
    pub fn new(clock: Rc<dyn Clock>) -> Self {
        ResilientResolver::with_config(
            clock,
            RetryPolicy::default(),
            BreakerConfig::default(),
            3,
        )
    }

    pub fn with_config(
        clock: Rc<dyn Clock>,
        policy: RetryPolicy,
        breaker_cfg: BreakerConfig,
        dangle_threshold: u32,
    ) -> Self {
        ResilientResolver {
            policy,
            breaker_cfg,
            dangle_threshold: dangle_threshold.max(1),
            clock,
            breakers: BTreeMap::new(),
            dangle_counts: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            stale: BTreeSet::new(),
        }
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Breaker state for a module, if any call has been routed to it.
    pub fn breaker_state(&self, module: &str) -> Option<BreakerState> {
        self.breakers.get(module).map(|b| b.state())
    }

    /// Feed audit results in: drifted marks are flagged stale (and the
    /// flag clears when a later audit sees them undrifted). Auditing
    /// never clears quarantine — only a successful repair does.
    pub fn note_audit(&mut self, audits: &[MarkAudit]) {
        for audit in audits {
            if audit.drifted {
                self.stale.insert(audit.mark_id.clone());
            } else {
                self.stale.remove(&audit.mark_id);
            }
        }
    }

    pub fn is_stale(&self, mark_id: &str) -> bool {
        self.stale.contains(mark_id)
    }

    pub fn is_quarantined(&self, mark_id: &str) -> bool {
        self.quarantined.contains(mark_id)
    }

    /// Marks currently quarantined, in id order.
    pub fn quarantined_marks(&self) -> Vec<MarkId> {
        self.quarantined.iter().cloned().collect()
    }

    /// Consecutive dangling resolutions recorded against a mark.
    pub fn dangle_count(&self, mark_id: &str) -> u32 {
        self.dangle_counts.get(mark_id).copied().unwrap_or(0)
    }

    /// Lift a mark out of quarantine and forget its dangle history —
    /// called after a successful re-bind (or by an operator override).
    pub fn release(&mut self, mark_id: &str) {
        self.quarantined.remove(mark_id);
        self.dangle_counts.remove(mark_id);
    }

    /// Resolve with deadlines, retries, a breaker, and excerpt fallback.
    ///
    /// `Err` is reserved for caller mistakes (unknown mark id); every
    /// base-layer failure mode degrades to the stored excerpt instead.
    pub fn resolve(
        &mut self,
        mgr: &mut MarkManager,
        mark_id: &str,
    ) -> Result<ResilientResolution, MarkError> {
        let mark = mgr.get(mark_id)?;
        let excerpt = mark.excerpt.clone();
        let kind = mark.kind();
        let started = self.clock.now_ms();
        let mut outcome = ResolutionOutcome {
            mark_id: mark_id.to_string(),
            module: None,
            attempts: Vec::new(),
            degraded: false,
            stale: self.stale.contains(mark_id),
            quarantined: self.quarantined.contains(mark_id),
            breaker: None,
            started_ms: started,
            finished_ms: started,
        };

        if outcome.quarantined {
            outcome.attempts.push(Attempt {
                at_ms: started,
                error: Some(MarkError::Quarantined { mark_id: mark_id.to_string() }),
            });
            return Ok(self.degrade(excerpt, outcome));
        }

        let module = match mgr.default_module_name(kind) {
            Some(name) => name.to_string(),
            None => {
                outcome
                    .attempts
                    .push(Attempt { at_ms: started, error: Some(MarkError::NoModule { kind }) });
                return Ok(self.degrade(excerpt, outcome));
            }
        };
        outcome.module = Some(module.clone());

        let deadline = started.saturating_add(self.policy.deadline_ms);
        for attempt_no in 1..=self.policy.max_attempts.max(1) {
            if attempt_no > 1 {
                self.clock.sleep_ms(self.policy.backoff_ms(attempt_no - 1));
            }
            let now = self.clock.now_ms();
            if now >= deadline {
                outcome.attempts.push(Attempt {
                    at_ms: now,
                    error: Some(MarkError::Timeout {
                        mark_id: mark_id.to_string(),
                        module: module.clone(),
                        deadline_ms: self.policy.deadline_ms,
                    }),
                });
                break;
            }
            let breaker = self
                .breakers
                .entry(module.clone())
                .or_insert_with(|| Breaker::new(self.breaker_cfg.clone()));
            if let Admit::ShortCircuit { open_until } = breaker.admit(now) {
                outcome.attempts.push(Attempt {
                    at_ms: now,
                    error: Some(MarkError::ModuleUnavailable {
                        module: module.clone(),
                        open_until,
                    }),
                });
                break;
            }
            let result = mgr.resolve(mark_id);
            let after = self.clock.now_ms();
            // `mgr.resolve` can advance an injected clock; re-fetch the
            // breaker entry (the map may not be re-borrowed across the
            // call) — it must exist, we just inserted it.
            let breaker = match self.breakers.get_mut(&module) {
                Some(b) => b,
                None => break,
            };
            match result {
                Ok(_) if after > deadline => {
                    // The module answered, but past the deadline — the
                    // caller has moved on; count it against the breaker.
                    breaker.on_failure(after);
                    outcome.attempts.push(Attempt {
                        at_ms: now,
                        error: Some(MarkError::Timeout {
                            mark_id: mark_id.to_string(),
                            module: module.clone(),
                            deadline_ms: self.policy.deadline_ms,
                        }),
                    });
                    break;
                }
                Ok(resolution) => {
                    breaker.on_success();
                    outcome.attempts.push(Attempt { at_ms: now, error: None });
                    outcome.breaker = Some(breaker.state());
                    outcome.finished_ms = after;
                    self.dangle_counts.remove(mark_id);
                    return Ok(ResilientResolution { resolution, outcome });
                }
                Err(e) => {
                    breaker.on_failure(after);
                    let dangling = is_dangling(&e);
                    let retryable = is_retryable(&e);
                    outcome.attempts.push(Attempt { at_ms: now, error: Some(e) });
                    if dangling {
                        let n = self.dangle_counts.entry(mark_id.to_string()).or_insert(0);
                        *n += 1;
                        if *n >= self.dangle_threshold {
                            self.quarantined.insert(mark_id.to_string());
                            outcome.quarantined = true;
                        }
                    }
                    if !retryable {
                        break;
                    }
                }
            }
        }
        Ok(self.degrade(excerpt, outcome))
    }

    /// Re-bind a mark to the unique candidate address that still holds
    /// its saved excerpt. Candidates whose current content differs from
    /// the excerpt (or that no module can read) are filtered out; zero
    /// or multiple survivors refuse the re-bind.
    pub fn try_rebind(
        &mut self,
        mgr: &mut MarkManager,
        mark_id: &str,
        candidates: &[MarkAddress],
    ) -> Result<RebindOutcome, MarkError> {
        let excerpt = mgr.get(mark_id)?.excerpt.clone();
        if excerpt.is_empty() {
            // An empty excerpt matches everything; never guess.
            return Ok(RebindOutcome::NoMatch { mark_id: mark_id.to_string() });
        }
        let matching: Vec<&MarkAddress> = candidates
            .iter()
            .filter(|addr| mgr.extract_at(addr).as_deref() == Ok(excerpt.as_str()))
            .collect();
        match matching.len() {
            0 => Ok(RebindOutcome::NoMatch { mark_id: mark_id.to_string() }),
            1 => {
                let to = matching[0].clone();
                let display = to.to_string();
                mgr.rebind(mark_id, to)?;
                self.release(mark_id);
                Ok(RebindOutcome::Rebound { mark_id: mark_id.to_string(), to: display })
            }
            n => Ok(RebindOutcome::Ambiguous { mark_id: mark_id.to_string(), candidates: n }),
        }
    }

    fn degrade(&self, excerpt: String, mut outcome: ResolutionOutcome) -> ResilientResolution {
        outcome.degraded = true;
        if let Some(module) = &outcome.module {
            outcome.breaker = self.breakers.get(module).map(|b| b.state());
        }
        outcome.finished_ms = self.clock.now_ms();
        ResilientResolution {
            resolution: Resolution { style: ResolutionStyle::DegradedExcerpt, display: excerpt },
            outcome,
        }
    }
}

/// Errors that indicate the mark's target is gone (document closed,
/// element deleted) rather than the module misbehaving.
fn is_dangling(e: &MarkError) -> bool {
    matches!(
        e,
        MarkError::Base(DocError::NoSuchDocument { .. }) | MarkError::Base(DocError::Dangling { .. })
    )
}

/// Errors worth retrying: transient I/O-shaped failures. Dangling
/// targets and routing bugs won't heal on retry.
fn is_retryable(e: &MarkError) -> bool {
    matches!(e, MarkError::Io { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig { failure_threshold: 3, cooldown_ms: 100, probe_budget: 3, probe_successes: 2 }
    }

    #[test]
    fn breaker_trips_open_at_threshold() {
        let mut b = Breaker::new(cfg());
        assert_eq!(b.admit(0), Admit::Allowed);
        b.on_failure(10);
        b.on_failure(20);
        assert_eq!(b.state(), BreakerState::Closed { failures: 2 });
        b.on_failure(30);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 130 });
        // Short-circuits while open.
        assert_eq!(b.admit(50), Admit::ShortCircuit { open_until: 130 });
        assert_eq!(b.admit(129), Admit::ShortCircuit { open_until: 130 });
    }

    #[test]
    fn breaker_success_resets_closed_failure_count() {
        let mut b = Breaker::new(cfg());
        b.on_failure(1);
        b.on_failure(2);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
        // The streak restarts: two more failures still don't trip it.
        b.on_failure(3);
        b.on_failure(4);
        assert_eq!(b.state(), BreakerState::Closed { failures: 2 });
    }

    #[test]
    fn breaker_recovers_through_half_open_probes() {
        let mut b = Breaker::new(cfg());
        for t in [1, 2, 3] {
            b.on_failure(t);
        }
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        // Cooldown elapsed: the next admit becomes the first probe.
        assert_eq!(b.admit(103), Admit::Allowed);
        assert_eq!(b.state(), BreakerState::HalfOpen { probes_used: 1, successes: 0 });
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen { probes_used: 1, successes: 1 });
        assert_eq!(b.admit(104), Admit::Allowed);
        b.on_success();
        // probe_successes reached: closed again, streak cleared.
        assert_eq!(b.state(), BreakerState::Closed { failures: 0 });
    }

    #[test]
    fn breaker_failure_during_half_open_reopens() {
        let mut b = Breaker::new(cfg());
        for t in [1, 2, 3] {
            b.on_failure(t);
        }
        assert_eq!(b.admit(200), Admit::Allowed);
        b.on_failure(205);
        assert_eq!(b.state(), BreakerState::Open { until_ms: 305 });
    }

    #[test]
    fn breaker_probe_budget_exhaustion_reopens() {
        let mut b = Breaker::new(cfg());
        for t in [1, 2, 3] {
            b.on_failure(t);
        }
        // Three probes admitted, none concluding (no on_success/failure
        // recorded — e.g. probes cut short by timeouts elsewhere).
        assert_eq!(b.admit(200), Admit::Allowed);
        assert_eq!(b.admit(201), Admit::Allowed);
        assert_eq!(b.admit(202), Admit::Allowed);
        // Budget spent: the breaker re-opens defensively.
        assert_eq!(b.admit(203), Admit::ShortCircuit { open_until: 303 });
        assert_eq!(b.state(), BreakerState::Open { until_ms: 303 });
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            deadline_ms: 10_000,
            base_backoff_ms: 8,
            max_backoff_ms: 64,
            jitter_seed: 42,
        };
        let a: Vec<u64> = (1..8).map(|n| policy.backoff_ms(n)).collect();
        let b: Vec<u64> = (1..8).map(|n| policy.backoff_ms(n)).collect();
        assert_eq!(a, b, "same policy must give the same schedule");
        for (n, ms) in a.iter().enumerate() {
            // exp part capped at 64, jitter bounded by base.
            assert!(*ms <= 64 + 8, "retry {} backoff {} exceeds cap+jitter", n + 1, ms);
        }
        // Exponential growth is visible before the cap.
        assert!(a[1] >= a[0].saturating_sub(8), "monotone-ish growth expected");
        let other = RetryPolicy { jitter_seed: 43, ..policy };
        let c: Vec<u64> = (1..8).map(|n| other.backoff_ms(n)).collect();
        assert_ne!(a, c, "different jitter seeds should differ somewhere");
    }

    #[test]
    fn mock_clock_is_shared_across_clones() {
        let clock = MockClock::new();
        let other = clock.clone();
        clock.advance(250);
        assert_eq!(other.now_ms(), 250);
        other.sleep_ms(50);
        assert_eq!(clock.now_ms(), 300);
        clock.set(200); // monotonic: no rewind
        assert_eq!(clock.now_ms(), 300);
    }
}
