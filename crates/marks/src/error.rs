//! Error type for mark operations.

use basedocs::{DocError, DocKind};
use std::fmt;

/// Errors from mark creation, resolution, and persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MarkError {
    /// No mark with the given id exists in the manager.
    UnknownMark { mark_id: String },
    /// No module is registered for the requested document kind.
    NoModule { kind: DocKind },
    /// No module with the given name exists for the kind.
    NoSuchModule { kind: DocKind, module: String },
    /// A module was asked to handle an address of the wrong kind — an
    /// internal routing bug surfaced as an error rather than a panic so
    /// persisted data can never crash the host application.
    KindMismatch { expected: DocKind, found: DocKind },
    /// The underlying base application failed.
    Base(DocError),
    /// The persisted mark store is malformed.
    Format { message: String },
    /// The persisted mark store is not well-formed XML.
    Xml(String),
    /// The store declares a format version newer than this build supports.
    UnsupportedVersion { found: String, supported: u32 },
    /// The store file failed its integrity check (checksum mismatch or
    /// truncation); salvage loading may still recover a prefix.
    Corrupt { detail: String },
    /// An I/O failure while reading or writing a mark store file.
    Io { detail: String },
    /// A resolution ran out of time: the per-call deadline elapsed
    /// before the module produced (a timely) answer.
    Timeout { mark_id: String, module: String, deadline_ms: u64 },
    /// The module's circuit breaker is open; calls are short-circuited
    /// until `open_until` (clock ms) at the earliest.
    ModuleUnavailable { module: String, open_until: u64 },
    /// The mark has dangled repeatedly and is quarantined; resolution
    /// degrades to the stored excerpt until a repair pass re-binds it.
    Quarantined { mark_id: String },
}

impl fmt::Display for MarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkError::UnknownMark { mark_id } => write!(f, "unknown mark {mark_id:?}"),
            MarkError::NoModule { kind } => {
                write!(f, "no mark module registered for base type {kind}")
            }
            MarkError::NoSuchModule { kind, module } => {
                write!(f, "no mark module {module:?} for base type {kind}")
            }
            MarkError::KindMismatch { expected, found } => {
                write!(f, "mark module for {expected} handed a {found} address")
            }
            MarkError::Base(e) => write!(f, "base application error: {e}"),
            MarkError::Format { message } => write!(f, "invalid mark store: {message}"),
            MarkError::Xml(m) => write!(f, "mark store is not well-formed XML: {m}"),
            MarkError::UnsupportedVersion { found, supported } => write!(
                f,
                "mark store declares format version {found}, \
                 but this build supports at most version {supported}"
            ),
            MarkError::Corrupt { detail } => {
                write!(f, "mark store failed its integrity check: {detail}")
            }
            MarkError::Io { detail } => write!(f, "mark store I/O error: {detail}"),
            MarkError::Timeout { mark_id, module, deadline_ms } => write!(
                f,
                "resolving mark {mark_id:?} via module {module:?} \
                 exceeded the {deadline_ms}ms deadline"
            ),
            MarkError::ModuleUnavailable { module, open_until } => write!(
                f,
                "mark module {module:?} unavailable: circuit open until t={open_until}ms"
            ),
            MarkError::Quarantined { mark_id } => write!(
                f,
                "mark {mark_id:?} is quarantined after repeated dangling \
                 resolutions; run a repair pass to re-bind it"
            ),
        }
    }
}

impl std::error::Error for MarkError {}

impl From<slimio::IoError> for MarkError {
    fn from(e: slimio::IoError) -> Self {
        MarkError::Io { detail: e.to_string() }
    }
}

impl From<DocError> for MarkError {
    fn from(e: DocError) -> Self {
        MarkError::Base(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MarkError::UnknownMark { mark_id: "mark:7".into() };
        assert!(e.to_string().contains("mark:7"));
        let e = MarkError::NoModule { kind: DocKind::Pdf };
        assert!(e.to_string().contains("pdf"));
        let e = MarkError::Base(DocError::NoSelection);
        assert!(e.to_string().contains("no current selection"));
    }

    #[test]
    fn resilience_variants_name_module_and_mark() {
        let e = MarkError::Timeout {
            mark_id: "mark:3".into(),
            module: "spreadsheet".into(),
            deadline_ms: 1000,
        };
        assert!(e.to_string().contains("mark:3"));
        assert!(e.to_string().contains("spreadsheet"));
        assert!(e.to_string().contains("1000ms"));
        let e = MarkError::ModuleUnavailable { module: "xml".into(), open_until: 750 };
        assert!(e.to_string().contains("xml"));
        assert!(e.to_string().contains("750"));
        let e = MarkError::Quarantined { mark_id: "mark:9".into() };
        assert!(e.to_string().contains("mark:9"));
        assert!(e.to_string().contains("quarantine"));
    }
}
