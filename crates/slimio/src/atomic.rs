//! Atomic durable save: write-temp → fsync → rename.
//!
//! The invariant callers get: a crash at *any* point during
//! [`save_atomic`] leaves the destination either untouched (still the
//! previous version, still loadable) or fully replaced by the new
//! sealed artifact. The dangerous window of a direct
//! `std::fs::write` — destination truncated, new bytes partly written —
//! never exists, because all writing happens to a sibling temp file and
//! the only mutation of the destination is a rename.

use crate::seal::{check_seal, seal, Integrity};
use crate::vfs::Vfs;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// An I/O failure with the operation and path that produced it.
#[derive(Debug)]
pub struct IoError {
    pub op: &'static str,
    pub path: PathBuf,
    pub source: io::Error,
}

impl IoError {
    fn new(op: &'static str, path: &Path, source: io::Error) -> Self {
        IoError { op, path: path.to_path_buf(), source }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<IoError> for io::Error {
    fn from(e: IoError) -> Self {
        io::Error::new(e.source.kind(), e.to_string())
    }
}

/// Sibling temp path: `pad.xml` → `pad.xml.slimio-tmp`. A sibling (not
/// a tempdir) so the final rename never crosses a file system.
fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".slimio-tmp");
    path.with_file_name(name)
}

/// The directory whose entry table the final rename mutates.
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// Durably, atomically install raw `bytes` at `path`: write-temp →
/// fsync → rename → fsync the parent directory. The directory sync is
/// what makes the *rename itself* survive power loss; without it the
/// old file can reappear after a crash even though the save reported
/// success.
pub fn install_atomic(vfs: &mut dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), IoError> {
    let tmp = temp_path(path);
    let result = (|| {
        vfs.write(&tmp, bytes).map_err(|e| IoError::new("write", &tmp, e))?;
        vfs.sync(&tmp).map_err(|e| IoError::new("sync", &tmp, e))?;
        vfs.rename(&tmp, path).map_err(|e| IoError::new("rename", path, e))?;
        let dir = parent_dir(path);
        vfs.sync_dir(dir).map_err(|e| IoError::new("sync_dir", dir, e))?;
        Ok(())
    })();
    if result.is_err() {
        // Best effort: don't leave the temp file behind, but the original
        // error is what the caller needs to see.
        let _ = vfs.remove(&tmp);
    }
    result
}

/// Seal `payload` and durably, atomically install it at `path`.
pub fn save_atomic(vfs: &mut dyn Vfs, path: &Path, payload: &str) -> Result<(), IoError> {
    install_atomic(vfs, path, seal(payload).as_bytes())
}

/// Remove a stale `.slimio-tmp` sibling left by a crash between the
/// temp write and the rename (the in-process cleanup in
/// [`install_atomic`] only runs when the process survives the failed
/// save). Returns `true` if a leftover was found and removed. Call this
/// when *opening* an artifact for ongoing use.
pub fn sweep_stale_temp(vfs: &mut dyn Vfs, path: &Path) -> bool {
    let tmp = temp_path(path);
    if vfs.exists(&tmp) {
        vfs.remove(&tmp).is_ok()
    } else {
        false
    }
}

/// Read a possibly-sealed artifact: the integrity verdict plus the
/// payload text with any footer stripped.
///
/// Non-UTF-8 content is reported as `Corrupt` with a lossy decode so
/// salvage can still look at the readable prefix.
pub fn load_sealed(vfs: &dyn Vfs, path: &Path) -> Result<(Integrity, String), IoError> {
    let bytes = vfs.read(path).map_err(|e| IoError::new("read", path, e))?;
    match String::from_utf8(bytes) {
        Ok(text) => {
            let (verdict, payload) = check_seal(&text);
            Ok((verdict, payload.to_string()))
        }
        Err(e) => {
            let text = String::from_utf8_lossy(e.as_bytes()).into_owned();
            let (_, payload) = check_seal(&text);
            Ok((Integrity::Corrupt, payload.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};

    const OLD: &str = "<trim version=\"1\"><t s=\"old\" p=\"p\"><lit>v</lit></t></trim>";
    const NEW: &str = "<trim version=\"1\"><t s=\"new\" p=\"p\"><lit>v</lit></t></trim>";

    fn with_existing() -> MemVfs {
        let mut vfs = MemVfs::new();
        save_atomic(&mut vfs, Path::new("store.xml"), OLD).unwrap();
        vfs
    }

    #[test]
    fn save_then_load_verifies() {
        let mut vfs = MemVfs::new();
        save_atomic(&mut vfs, Path::new("store.xml"), NEW).unwrap();
        let (verdict, payload) = load_sealed(&vfs, Path::new("store.xml")).unwrap();
        assert_eq!(verdict, Integrity::Verified);
        assert_eq!(payload, NEW);
        assert_eq!(vfs.file_count(), 1, "temp file must not linger");
    }

    #[test]
    fn every_faulted_step_preserves_the_previous_version() {
        for (op, index) in [(FaultOp::Write, 0), (FaultOp::Sync, 0), (FaultOp::Rename, 0)] {
            for mode in [FaultMode::Fail, FaultMode::Torn] {
                for seed in 0..8 {
                    let config = FaultConfig::new(op, mode, index, seed).halting();
                    let mut vfs = FaultVfs::new(with_existing(), config);
                    let err = save_atomic(&mut vfs, Path::new("store.xml"), NEW);
                    assert!(err.is_err(), "{op:?}/{mode:?} should surface an error");
                    assert!(vfs.fault_fired());
                    // "Reboot": inspect the disk the crashed process left.
                    let disk = vfs.into_inner();
                    let (verdict, payload) =
                        load_sealed(&disk, Path::new("store.xml")).unwrap();
                    assert_eq!(
                        verdict,
                        Integrity::Verified,
                        "{op:?}/{mode:?} seed {seed}: previous version damaged"
                    );
                    assert_eq!(payload, OLD);
                }
            }
        }
    }

    #[test]
    fn sync_dir_failure_errors_but_leaves_a_loadable_artifact() {
        // The rename itself succeeded; only its durability barrier failed.
        // The caller sees an error and must not ack the save, but the disk
        // holds either the old or the new artifact — both fully sealed.
        for mode in [FaultMode::Fail, FaultMode::Torn] {
            let config = FaultConfig::new(FaultOp::SyncDir, mode, 0, 0).halting();
            let mut vfs = FaultVfs::new(with_existing(), config);
            assert!(save_atomic(&mut vfs, Path::new("store.xml"), NEW).is_err());
            assert!(vfs.fault_fired());
            let disk = vfs.into_inner();
            let (verdict, payload) = load_sealed(&disk, Path::new("store.xml")).unwrap();
            assert_eq!(verdict, Integrity::Verified, "{mode:?}: artifact damaged");
            assert!(payload == OLD || payload == NEW, "{mode:?}: hybrid artifact");
        }
    }

    #[test]
    fn successful_save_syncs_the_parent_directory() {
        // Scheduling a fault on the first sync_dir must make the save fail:
        // proof that the protocol actually issues the barrier.
        let config = FaultConfig::new(FaultOp::SyncDir, FaultMode::Fail, 0, 0);
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        assert!(save_atomic(&mut vfs, Path::new("dir/store.xml"), NEW).is_err());
        assert!(vfs.fault_fired());
    }

    #[test]
    fn crash_between_write_and_rename_leaves_a_temp_the_sweep_removes() {
        // A halting rename fault kills the in-process cleanup too — the
        // temp file survives the "crash" exactly as it would on a real disk.
        let config = FaultConfig::new(FaultOp::Rename, FaultMode::Fail, 0, 0).halting();
        let mut vfs = FaultVfs::new(with_existing(), config);
        assert!(save_atomic(&mut vfs, Path::new("store.xml"), NEW).is_err());
        let mut disk = vfs.into_inner();
        assert_eq!(disk.file_count(), 2, "crash should strand the temp file");

        // "Reboot": the open-time sweep clears it; a second sweep is a no-op.
        assert!(sweep_stale_temp(&mut disk, Path::new("store.xml")));
        assert_eq!(disk.file_count(), 1);
        assert!(!sweep_stale_temp(&mut disk, Path::new("store.xml")));
        let (verdict, payload) = load_sealed(&disk, Path::new("store.xml")).unwrap();
        assert_eq!(verdict, Integrity::Verified);
        assert_eq!(payload, OLD);
    }

    #[test]
    fn silent_torn_write_is_caught_at_load() {
        // The disk lies about the temp write; the rename then installs a
        // truncated artifact. The seal check must refuse to verify it.
        let config = FaultConfig::new(FaultOp::Write, FaultMode::SilentTorn, 0, 5);
        let mut vfs = FaultVfs::new(with_existing(), config);
        let _ = save_atomic(&mut vfs, Path::new("store.xml"), NEW);
        let disk = vfs.into_inner();
        let (verdict, payload) = load_sealed(&disk, Path::new("store.xml")).unwrap();
        if payload == OLD {
            // Tear landed at full length minus footer? Then old survived.
            assert_eq!(verdict, Integrity::Verified);
        } else {
            assert_ne!(verdict, Integrity::Verified, "lying disk went undetected");
        }
    }

    #[test]
    fn failed_save_cleans_up_the_temp_file() {
        let config = FaultConfig::new(FaultOp::Sync, FaultMode::Fail, 0, 0);
        let mut vfs = FaultVfs::new(with_existing(), config);
        let _ = save_atomic(&mut vfs, Path::new("store.xml"), NEW);
        let disk = vfs.into_inner();
        assert_eq!(disk.file_count(), 1, "temp file left behind after failed save");
    }

    #[test]
    fn legacy_unsealed_file_loads_as_unsealed() {
        let mut vfs = MemVfs::new();
        vfs.write(Path::new("legacy.xml"), OLD.as_bytes()).unwrap();
        let (verdict, payload) = load_sealed(&vfs, Path::new("legacy.xml")).unwrap();
        assert_eq!(verdict, Integrity::Unsealed);
        assert_eq!(payload, OLD);
    }

    #[test]
    fn non_utf8_content_is_corrupt_not_a_panic() {
        let mut vfs = MemVfs::new();
        vfs.write(Path::new("bin.xml"), &[0x3C, 0xFF, 0xFE, 0x00]).unwrap();
        let (verdict, _) = load_sealed(&vfs, Path::new("bin.xml")).unwrap();
        assert_eq!(verdict, Integrity::Corrupt);
    }
}
