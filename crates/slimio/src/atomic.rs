//! Atomic durable save: write-temp → fsync → rename.
//!
//! The invariant callers get: a crash at *any* point during
//! [`save_atomic`] leaves the destination either untouched (still the
//! previous version, still loadable) or fully replaced by the new
//! sealed artifact. The dangerous window of a direct
//! `std::fs::write` — destination truncated, new bytes partly written —
//! never exists, because all writing happens to a sibling temp file and
//! the only mutation of the destination is a rename.
//!
//! Temp names are unique per install (`pad.xml.slimio-tmp.<token>`), and
//! every in-flight temp is registered in a process-wide table while the
//! install runs. [`sweep_stale_temp`] — the open-time cleanup — only
//! removes temps for *its own* artifact that are *not* registered, so an
//! opener can no longer delete the temp a concurrently-saving sibling
//! session is about to rename into place.

use crate::seal::{check_seal, seal, Integrity};
use crate::vfs::Vfs;
use std::collections::HashSet;
use std::ffi::OsString;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// An I/O failure with the operation and path that produced it.
#[derive(Debug)]
pub struct IoError {
    pub op: &'static str,
    pub path: PathBuf,
    pub source: io::Error,
}

impl IoError {
    fn new(op: &'static str, path: &Path, source: io::Error) -> Self {
        IoError { op, path: path.to_path_buf(), source }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}: {}", self.op, self.path.display(), self.source)
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<IoError> for io::Error {
    fn from(e: IoError) -> Self {
        io::Error::new(e.source.kind(), e.to_string())
    }
}

/// Marker all temp siblings carry: `pad.xml` → `pad.xml.slimio-tmp…`.
const TMP_MARKER: &str = ".slimio-tmp";

/// The temp prefix every install of `path` uses (and the sweep scopes
/// itself to): the destination file name plus the marker.
fn temp_prefix(path: &Path) -> OsString {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(TMP_MARKER);
    name
}

/// Unique sibling temp path: `pad.xml` → `pad.xml.slimio-tmp.<token>`.
/// A sibling (not a tempdir) so the final rename never crosses a file
/// system; a process-unique token so concurrent installs — even of the
/// same artifact — never write through each other's temp.
fn temp_path(path: &Path) -> PathBuf {
    static TOKEN: AtomicU64 = AtomicU64::new(0);
    let mut name = temp_prefix(path);
    name.push(format!(".{:x}", TOKEN.fetch_add(1, Ordering::Relaxed)));
    path.with_file_name(name)
}

/// The directory whose entry table the final rename mutates.
fn parent_dir(path: &Path) -> &Path {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    }
}

/// In-flight temps: registered for the duration of an install so the
/// sweep can tell a *live* sibling save from a crash leftover. Process-
/// wide is the right scope — the sweep protects against same-process
/// sibling sessions; a temp from a different (crashed) process is by
/// definition stale.
fn active_temps() -> &'static Mutex<HashSet<PathBuf>> {
    static ACTIVE: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Registration guard: deregisters on drop, so even a panicking VFS
/// backend cannot leak a registry entry (which would shield a genuinely
/// stale temp from every future sweep).
struct ActiveTemp(PathBuf);

impl ActiveTemp {
    fn register(tmp: &Path) -> Self {
        active_temps()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(tmp.to_path_buf());
        ActiveTemp(tmp.to_path_buf())
    }
}

impl Drop for ActiveTemp {
    fn drop(&mut self) {
        active_temps().lock().unwrap_or_else(PoisonError::into_inner).remove(&self.0);
    }
}

/// Durably, atomically install raw `bytes` at `path`: write-temp →
/// fsync → rename → fsync the parent directory. The directory sync is
/// what makes the *rename itself* survive power loss; without it the
/// old file can reappear after a crash even though the save reported
/// success.
pub fn install_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> Result<(), IoError> {
    let tmp = temp_path(path);
    let _active = ActiveTemp::register(&tmp);
    let result = (|| {
        vfs.write(&tmp, bytes).map_err(|e| IoError::new("write", &tmp, e))?;
        vfs.sync(&tmp).map_err(|e| IoError::new("sync", &tmp, e))?;
        vfs.rename(&tmp, path).map_err(|e| IoError::new("rename", path, e))?;
        let dir = parent_dir(path);
        vfs.sync_dir(dir).map_err(|e| IoError::new("sync_dir", dir, e))?;
        Ok(())
    })();
    if result.is_err() {
        // Best effort: don't leave the temp file behind, but the original
        // error is what the caller needs to see.
        let _ = vfs.remove(&tmp);
    }
    result
}

/// Seal `payload` and durably, atomically install it at `path`.
pub fn save_atomic(vfs: &dyn Vfs, path: &Path, payload: &str) -> Result<(), IoError> {
    install_atomic(vfs, path, seal(payload).as_bytes())
}

/// Remove stale temp siblings of `path` left by a crash between the
/// temp write and the rename (the in-process cleanup in
/// [`install_atomic`] only runs when the process survives the failed
/// save). Scoped two ways: only temps whose name starts with *this*
/// artifact's `…​.slimio-tmp` prefix are candidates, and temps
/// registered by an in-flight sibling install are skipped — sweeping on
/// open must never break a concurrent save of the same artifact.
/// Returns `true` if at least one leftover was removed. Call this when
/// *opening* an artifact for ongoing use.
pub fn sweep_stale_temp(vfs: &dyn Vfs, path: &Path) -> bool {
    let prefix = temp_prefix(path);
    let prefix = prefix.to_string_lossy().into_owned();
    let dir = parent_dir(path);
    let Ok(entries) = vfs.list(dir) else { return false };
    let mut removed = false;
    for entry in entries {
        let is_temp = entry
            .file_name()
            .map(|n| n.to_string_lossy().starts_with(&prefix))
            .unwrap_or(false);
        if !is_temp {
            continue;
        }
        let live = active_temps()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .contains(&entry);
        if !live && vfs.remove(&entry).is_ok() {
            removed = true;
        }
    }
    removed
}

/// Read a possibly-sealed artifact: the integrity verdict plus the
/// payload text with any footer stripped.
///
/// Non-UTF-8 content is reported as `Corrupt` with a lossy decode so
/// salvage can still look at the readable prefix.
pub fn load_sealed(vfs: &dyn Vfs, path: &Path) -> Result<(Integrity, String), IoError> {
    let bytes = vfs.read(path).map_err(|e| IoError::new("read", path, e))?;
    match String::from_utf8(bytes) {
        Ok(text) => {
            let (verdict, payload) = check_seal(&text);
            Ok((verdict, payload.to_string()))
        }
        Err(e) => {
            let text = String::from_utf8_lossy(e.as_bytes()).into_owned();
            let (_, payload) = check_seal(&text);
            Ok((Integrity::Corrupt, payload.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
    use std::sync::Arc;

    const OLD: &str = "<trim version=\"1\"><t s=\"old\" p=\"p\"><lit>v</lit></t></trim>";
    const NEW: &str = "<trim version=\"1\"><t s=\"new\" p=\"p\"><lit>v</lit></t></trim>";

    fn with_existing() -> MemVfs {
        let vfs = MemVfs::new();
        save_atomic(&vfs, Path::new("store.xml"), OLD).unwrap();
        vfs
    }

    #[test]
    fn save_then_load_verifies() {
        let vfs = MemVfs::new();
        save_atomic(&vfs, Path::new("store.xml"), NEW).unwrap();
        let (verdict, payload) = load_sealed(&vfs, Path::new("store.xml")).unwrap();
        assert_eq!(verdict, Integrity::Verified);
        assert_eq!(payload, NEW);
        assert_eq!(vfs.file_count(), 1, "temp file must not linger");
    }

    #[test]
    fn every_faulted_step_preserves_the_previous_version() {
        for (op, index) in [(FaultOp::Write, 0), (FaultOp::Sync, 0), (FaultOp::Rename, 0)] {
            for mode in [FaultMode::Fail, FaultMode::Torn] {
                for seed in 0..8 {
                    let config = FaultConfig::new(op, mode, index, seed).halting();
                    let vfs = FaultVfs::new(with_existing(), config);
                    let err = save_atomic(&vfs, Path::new("store.xml"), NEW);
                    assert!(err.is_err(), "{op:?}/{mode:?} should surface an error");
                    assert!(vfs.fault_fired());
                    // "Reboot": inspect the disk the crashed process left.
                    let disk = vfs.into_inner();
                    let (verdict, payload) =
                        load_sealed(&disk, Path::new("store.xml")).unwrap();
                    assert_eq!(
                        verdict,
                        Integrity::Verified,
                        "{op:?}/{mode:?} seed {seed}: previous version damaged"
                    );
                    assert_eq!(payload, OLD);
                }
            }
        }
    }

    #[test]
    fn sync_dir_failure_errors_but_leaves_a_loadable_artifact() {
        // The rename itself succeeded; only its durability barrier failed.
        // The caller sees an error and must not ack the save, but the disk
        // holds either the old or the new artifact — both fully sealed.
        for mode in [FaultMode::Fail, FaultMode::Torn] {
            let config = FaultConfig::new(FaultOp::SyncDir, mode, 0, 0).halting();
            let vfs = FaultVfs::new(with_existing(), config);
            assert!(save_atomic(&vfs, Path::new("store.xml"), NEW).is_err());
            assert!(vfs.fault_fired());
            let disk = vfs.into_inner();
            let (verdict, payload) = load_sealed(&disk, Path::new("store.xml")).unwrap();
            assert_eq!(verdict, Integrity::Verified, "{mode:?}: artifact damaged");
            assert!(payload == OLD || payload == NEW, "{mode:?}: hybrid artifact");
        }
    }

    #[test]
    fn successful_save_syncs_the_parent_directory() {
        // Scheduling a fault on the first sync_dir must make the save fail:
        // proof that the protocol actually issues the barrier.
        let config = FaultConfig::new(FaultOp::SyncDir, FaultMode::Fail, 0, 0);
        let vfs = FaultVfs::new(MemVfs::new(), config);
        assert!(save_atomic(&vfs, Path::new("dir/store.xml"), NEW).is_err());
        assert!(vfs.fault_fired());
    }

    #[test]
    fn crash_between_write_and_rename_leaves_a_temp_the_sweep_removes() {
        // A halting rename fault kills the in-process cleanup too — the
        // temp file survives the "crash" exactly as it would on a real disk.
        let config = FaultConfig::new(FaultOp::Rename, FaultMode::Fail, 0, 0).halting();
        let vfs = FaultVfs::new(with_existing(), config);
        assert!(save_atomic(&vfs, Path::new("store.xml"), NEW).is_err());
        let disk = vfs.into_inner();
        assert_eq!(disk.file_count(), 2, "crash should strand the temp file");

        // "Reboot": the open-time sweep clears it; a second sweep is a no-op.
        assert!(sweep_stale_temp(&disk, Path::new("store.xml")));
        assert_eq!(disk.file_count(), 1);
        assert!(!sweep_stale_temp(&disk, Path::new("store.xml")));
        let (verdict, payload) = load_sealed(&disk, Path::new("store.xml")).unwrap();
        assert_eq!(verdict, Integrity::Verified);
        assert_eq!(payload, OLD);
    }

    #[test]
    fn sweep_only_touches_its_own_artifacts_temps() {
        // Strand temps for two different artifacts in one directory.
        for name in ["a.xml", "b.xml"] {
            let config = FaultConfig::new(FaultOp::Rename, FaultMode::Fail, 0, 0).halting();
            let vfs = FaultVfs::new(MemVfs::new(), config);
            assert!(save_atomic(&vfs, Path::new(name), OLD).is_err());
            let disk = vfs.into_inner();
            assert_eq!(disk.file_count(), 1);
            // Opening the *other* artifact must not sweep this temp.
            let other = if name == "a.xml" { "b.xml" } else { "a.xml" };
            assert!(!sweep_stale_temp(&disk, Path::new(other)));
            assert_eq!(disk.file_count(), 1);
            assert!(sweep_stale_temp(&disk, Path::new(name)));
            assert_eq!(disk.file_count(), 0);
        }
    }

    /// A VFS decorator that parks the saving thread after the temp-file
    /// write, holding it there until released — freezing a sibling
    /// session exactly inside the write→rename window the old sweep
    /// used to raid.
    struct ParkAfterWrite<V> {
        inner: V,
        gate: Arc<(Mutex<bool>, std::sync::Condvar)>,
    }

    impl<V> ParkAfterWrite<V> {
        fn new(inner: V) -> (Self, Arc<(Mutex<bool>, std::sync::Condvar)>) {
            let gate = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
            (ParkAfterWrite { inner, gate: gate.clone() }, gate)
        }
    }

    impl<V: Vfs> Vfs for ParkAfterWrite<V> {
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
            self.inner.write(path, data)?;
            let (lock, cvar) = &*self.gate;
            let mut released = lock.lock().unwrap();
            while !*released {
                released = cvar.wait(released).unwrap();
            }
            Ok(())
        }
        fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
            self.inner.append(path, data)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }
        fn sync(&self, path: &Path) -> io::Result<()> {
            self.inner.sync(path)
        }
        fn sync_dir(&self, dir: &Path) -> io::Result<()> {
            self.inner.sync_dir(dir)
        }
        fn remove(&self, path: &Path) -> io::Result<()> {
            self.inner.remove(path)
        }
        fn exists(&self, path: &Path) -> bool {
            self.inner.exists(path)
        }
        fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
            self.inner.list(dir)
        }
    }

    /// Regression: an opener's sweep must not delete the temp file of a
    /// sibling session whose save is mid-flight (between write and
    /// rename). Before the active-temp registry, this deleted the temp
    /// and the sibling's rename failed.
    #[test]
    fn sweep_skips_a_live_sibling_saves_temp() {
        let shared = Arc::new(MemVfs::new());
        save_atomic(&*shared, Path::new("store.xml"), OLD).unwrap();

        let (parking, gate) = ParkAfterWrite::new(shared.clone());
        let saver = std::thread::spawn(move || save_atomic(&parking, Path::new("store.xml"), NEW));

        // Wait until the sibling is parked inside the dangerous window:
        // its unique temp exists but the rename has not happened.
        while shared.file_count() < 2 {
            std::thread::yield_now();
        }

        // The "opener" sweeps. The sibling's temp is registered as live,
        // so nothing may be removed.
        assert!(!sweep_stale_temp(&*shared, Path::new("store.xml")));
        assert_eq!(shared.file_count(), 2, "live sibling temp was swept");

        // Release the sibling: its rename must succeed and install NEW.
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        saver.join().unwrap().expect("sibling save must survive the sweep");
        let (verdict, payload) = load_sealed(&*shared, Path::new("store.xml")).unwrap();
        assert_eq!(verdict, Integrity::Verified);
        assert_eq!(payload, NEW);
        assert_eq!(shared.file_count(), 1, "temp must be renamed away");
    }

    #[test]
    fn concurrent_saves_of_one_artifact_use_distinct_temps() {
        let shared = Arc::new(MemVfs::new());
        let savers: Vec<_> = (0..8)
            .map(|i| {
                let vfs = shared.clone();
                std::thread::spawn(move || {
                    for round in 0..16 {
                        let payload = format!(
                            "<trim version=\"1\"><t s=\"w{i}r{round}\" p=\"p\"><lit>v</lit></t></trim>"
                        );
                        save_atomic(&*vfs, Path::new("store.xml"), &payload).unwrap();
                    }
                })
            })
            .collect();
        for s in savers {
            s.join().unwrap();
        }
        // Last-writer-wins, but the artifact must always be whole and
        // sealed, and no temp may linger.
        assert_eq!(shared.file_count(), 1);
        let (verdict, _) = load_sealed(&*shared, Path::new("store.xml")).unwrap();
        assert_eq!(verdict, Integrity::Verified);
    }

    #[test]
    fn silent_torn_write_is_caught_at_load() {
        // The disk lies about the temp write; the rename then installs a
        // truncated artifact. The seal check must refuse to verify it.
        let config = FaultConfig::new(FaultOp::Write, FaultMode::SilentTorn, 0, 5);
        let vfs = FaultVfs::new(with_existing(), config);
        let _ = save_atomic(&vfs, Path::new("store.xml"), NEW);
        let disk = vfs.into_inner();
        let (verdict, payload) = load_sealed(&disk, Path::new("store.xml")).unwrap();
        if payload == OLD {
            // Tear landed at full length minus footer? Then old survived.
            assert_eq!(verdict, Integrity::Verified);
        } else {
            assert_ne!(verdict, Integrity::Verified, "lying disk went undetected");
        }
    }

    #[test]
    fn failed_save_cleans_up_the_temp_file() {
        let config = FaultConfig::new(FaultOp::Sync, FaultMode::Fail, 0, 0);
        let vfs = FaultVfs::new(with_existing(), config);
        let _ = save_atomic(&vfs, Path::new("store.xml"), NEW);
        let disk = vfs.into_inner();
        assert_eq!(disk.file_count(), 1, "temp file left behind after failed save");
    }

    #[test]
    fn legacy_unsealed_file_loads_as_unsealed() {
        let vfs = MemVfs::new();
        vfs.write(Path::new("legacy.xml"), OLD.as_bytes()).unwrap();
        let (verdict, payload) = load_sealed(&vfs, Path::new("legacy.xml")).unwrap();
        assert_eq!(verdict, Integrity::Unsealed);
        assert_eq!(payload, OLD);
    }

    #[test]
    fn legacy_exact_name_temp_is_still_swept() {
        // Artifacts written by older versions used the fixed name
        // `<file>.slimio-tmp`; the prefix-scoped sweep must still clear
        // those leftovers.
        let vfs = with_existing();
        vfs.write(Path::new("store.xml.slimio-tmp"), b"stale").unwrap();
        assert!(sweep_stale_temp(&vfs, Path::new("store.xml")));
        assert_eq!(vfs.file_count(), 1);
    }

    #[test]
    fn non_utf8_content_is_corrupt_not_a_panic() {
        let vfs = MemVfs::new();
        vfs.write(Path::new("bin.xml"), &[0x3C, 0xFF, 0xFE, 0x00]).unwrap();
        let (verdict, _) = load_sealed(&vfs, Path::new("bin.xml")).unwrap();
        assert_eq!(verdict, Integrity::Corrupt);
    }
}
