//! Salvage recovery report.

use std::fmt;

/// The result of a salvage load: the recovered value plus an accounting
/// of what survived and what didn't.
///
/// Every salvage-capable loader in the workspace returns this shape so
/// callers — and users reading a recovery log — see one vocabulary:
/// `salvaged` items made it, `lost` items were present in the damaged
/// artifact but could not be recovered, and `notes` says why in
/// human-readable terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered<T> {
    /// The recovered value (possibly empty, never absent: salvage that
    /// recovers nothing still yields a valid empty store).
    pub value: T,
    /// Number of items recovered intact.
    pub salvaged: usize,
    /// Number of items detected as present but unrecoverable.
    pub lost: usize,
    /// Human-readable notes on what happened, in discovery order.
    pub notes: Vec<String>,
}

impl<T> Recovered<T> {
    /// A clean load: everything salvaged, nothing lost, no notes.
    pub fn clean(value: T, salvaged: usize) -> Self {
        Recovered { value, salvaged, lost: 0, notes: Vec::new() }
    }

    /// True when nothing was lost and no degradation was noted.
    pub fn is_clean(&self) -> bool {
        self.lost == 0 && self.notes.is_empty()
    }

    /// Map the recovered value, keeping the accounting.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Recovered<U> {
        Recovered { value: f(self.value), salvaged: self.salvaged, lost: self.lost, notes: self.notes }
    }

    /// Record a degradation note.
    pub fn note(&mut self, message: impl Into<String>) {
        self.notes.push(message.into());
    }
}

impl<T> fmt::Display for Recovered<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "salvaged {} item(s), lost {}", self.salvaged, self.lost)?;
        for note in &self.notes {
            write!(f, "; {note}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report() {
        let r = Recovered::clean(vec![1, 2, 3], 3);
        assert!(r.is_clean());
        assert_eq!(r.to_string(), "salvaged 3 item(s), lost 0");
    }

    #[test]
    fn degraded_report() {
        let mut r = Recovered::clean((), 5);
        r.lost = 2;
        r.note("last triple truncated mid-element");
        assert!(!r.is_clean());
        assert_eq!(r.to_string(), "salvaged 5 item(s), lost 2; last triple truncated mid-element");
    }

    #[test]
    fn map_keeps_accounting() {
        let mut r = Recovered::clean(4usize, 4);
        r.note("x");
        let mapped = r.map(|n| n * 2);
        assert_eq!(mapped.value, 8);
        assert_eq!(mapped.salvaged, 4);
        assert_eq!(mapped.notes, vec!["x".to_string()]);
    }
}
