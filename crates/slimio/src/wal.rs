//! Write-ahead log: CRC-framed append-only records with torn-tail salvage.
//!
//! The WAL turns "every save rewrites the whole artifact" into "every
//! commit appends one small frame". A log file is:
//!
//! ```text
//! header:  "SWAL" | version u32 | base_seq u64 | bind_crc u32      (20 bytes)
//! frame*:  "SWFR" | seq u64     | len u32      | crc u32 | payload (20 + len)
//! ```
//!
//! all integers little-endian. Each frame's `crc` is the CRC32 of
//! `seq ‖ len ‖ payload`, so a frame is self-verifying; `seq` values are
//! strictly contiguous starting at `base_seq`, so a valid log has no
//! holes. Recovery scans from the header and keeps the longest prefix of
//! frames that pass magic, length, CRC and sequence checks — a torn tail
//! (the classic crash-during-append) is salvaged away by atomically
//! truncating the file back to the last good frame, never by guessing.
//!
//! `bind_crc` ties the log to the snapshot generation it extends: it is
//! the CRC32 of the snapshot payload the log was created (or last
//! [`Wal::reset`]) against. If a crash lands between "new snapshot
//! installed" and "log reset", the stale log's bind no longer matches
//! the snapshot on disk; [`Wal::open`] detects this and discards the
//! stale frames — they are already included in the snapshot — instead
//! of replaying old state over new.
//!
//! Group commit: [`Wal::append_batch`] writes any number of frames with
//! exactly one `append` and one `sync` system call, so the per-commit
//! cost is the batch, not the operation count.

use crate::atomic::{install_atomic, sweep_stale_temp};
use crate::crc::crc32;
use crate::vfs::Vfs;
use crate::IoError;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk format version of the log header.
pub const WAL_VERSION: u32 = 1;

const WAL_MAGIC: &[u8; 4] = b"SWAL";
const FRAME_MAGIC: &[u8; 4] = b"SWFR";
const HEADER_LEN: usize = 20;
const FRAME_HEADER_LEN: usize = 20;

/// One recovered log record: its sequence number and opaque payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// What [`Wal::open`] found and did, in salvage-report vocabulary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalReport {
    /// The log file did not exist and was created empty.
    pub created: bool,
    /// A stale `.slimio-tmp` sibling from a crashed truncation was removed.
    pub swept_temp: bool,
    /// Frames recovered intact (and returned to the caller).
    pub frames: usize,
    /// Bytes dropped from the tail because they failed validation.
    pub torn_bytes: usize,
    /// Valid frames discarded because the log predates the snapshot on
    /// disk (crash between snapshot install and log reset); their effects
    /// are already in the snapshot.
    pub discarded_frames: usize,
    /// Human-readable notes on anything unusual, in discovery order.
    pub notes: Vec<String>,
}

impl WalReport {
    /// True when the open found a pristine log: nothing torn, nothing
    /// discarded, nothing swept.
    pub fn is_clean(&self) -> bool {
        !self.created
            && !self.swept_temp
            && self.torn_bytes == 0
            && self.discarded_frames == 0
            && self.notes.is_empty()
    }
}

/// An open write-ahead log positioned at its durable tail.
///
/// The struct tracks the known-good byte length and next sequence
/// number; a failed append poisons the handle and the next append (or an
/// explicit [`Wal::repair`]) truncates any torn suffix before retrying.
#[derive(Debug, Clone)]
pub struct Wal {
    path: PathBuf,
    next_seq: u64,
    len_bytes: u64,
    bind_crc: u32,
    poisoned: bool,
}

fn header_bytes(base_seq: u64, bind_crc: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(WAL_MAGIC);
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&base_seq.to_le_bytes());
    h[16..20].copy_from_slice(&bind_crc.to_le_bytes());
    h
}

fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut buf = Vec::with_capacity(12 + payload.len());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    crc32(&buf)
}

fn encode_frame(buf: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    buf.extend_from_slice(FRAME_MAGIC);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame_crc(seq, payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Scan frames starting at the header boundary. Returns the valid
/// frames, the byte offset just past the last valid frame, and the next
/// expected sequence number. Stops (without error) at the first frame
/// that fails any check — everything past that point is the torn tail.
fn scan_frames(bytes: &[u8], base_seq: u64, verify_crc: bool) -> (Vec<WalFrame>, usize, u64) {
    let mut frames = Vec::new();
    let mut off = HEADER_LEN;
    let mut expected = base_seq;
    while bytes.len() - off >= FRAME_HEADER_LEN {
        if &bytes[off..off + 4] != FRAME_MAGIC {
            break;
        }
        let seq = u64_at(bytes, off + 4);
        let len = u32_at(bytes, off + 12) as usize;
        let crc = u32_at(bytes, off + 16);
        let Some(end) = off.checked_add(FRAME_HEADER_LEN).and_then(|s| s.checked_add(len))
        else {
            break;
        };
        if end > bytes.len() || seq != expected {
            break;
        }
        let payload = &bytes[off + FRAME_HEADER_LEN..end];
        if verify_crc && frame_crc(seq, payload) != crc {
            break;
        }
        frames.push(WalFrame { seq, payload: payload.to_vec() });
        expected += 1;
        off = end;
    }
    (frames, off, expected)
}

/// What [`scan_wal`] read out of raw log bytes, with nothing repaired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Header format version.
    pub version: u32,
    /// Sequence number of the first frame of this generation.
    pub base_seq: u64,
    /// Snapshot CRC the header claims this generation extends.
    pub bind_crc: u32,
    /// Frames that pass magic, length, CRC and contiguity checks.
    pub frames: Vec<WalFrame>,
    /// Byte length of the valid prefix (header + valid frames).
    pub valid_len: usize,
    /// Trailing bytes that fail validation (a torn tail, if non-zero).
    pub torn_bytes: usize,
    /// Sequence number the next frame would carry.
    pub next_seq: u64,
}

/// Structurally scan raw log bytes without touching the file.
///
/// [`Wal::open`] *repairs* as it reads — truncating torn tails and
/// installing fresh logs over stale generations — which is exactly wrong
/// for offline inspection. `scan_wal` is the read-only twin used by the
/// `wal-verify` fsck: it re-checks every magic, length, CRC and sequence
/// and reports what it saw, mutating nothing. Returns `Err` with a
/// description when the header itself is unreadable or from the future.
pub fn scan_wal(bytes: &[u8]) -> Result<WalScan, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!(
            "log shorter than its {HEADER_LEN}-byte header ({} byte(s))",
            bytes.len()
        ));
    }
    if &bytes[..4] != WAL_MAGIC {
        return Err(format!("bad log magic {:02x?} (want {WAL_MAGIC:02x?})", &bytes[..4]));
    }
    let version = u32_at(bytes, 4);
    if version > WAL_VERSION {
        return Err(format!("log format version {version} is newer than supported {WAL_VERSION}"));
    }
    let base_seq = u64_at(bytes, 8);
    let bind_crc = u32_at(bytes, 16);
    let (frames, valid_end, next_seq) = scan_frames(bytes, base_seq, true);
    Ok(WalScan {
        version,
        base_seq,
        bind_crc,
        torn_bytes: bytes.len() - valid_end,
        valid_len: valid_end,
        frames,
        next_seq,
    })
}

impl Wal {
    /// Open (or create) the log at `path`, salvaging a torn tail and
    /// returning the recovered frames in order.
    ///
    /// `bind_crc` is the CRC32 of the snapshot payload this log extends
    /// (use `crc32(b"")` when there is no snapshot yet). A log whose
    /// header carries a different bind is stale — its frames are already
    /// folded into the snapshot — and is discarded, not replayed.
    pub fn open(
        vfs: &dyn Vfs,
        path: &Path,
        bind_crc: u32,
    ) -> Result<(Wal, Vec<WalFrame>, WalReport), IoError> {
        Self::open_impl(vfs, path, bind_crc, true)
    }

    /// Open with the tail-frame CRC verification disabled. Exists only so
    /// the slimcheck mutation harness can prove the differential tests
    /// notice when this check is missing; never call it from real code.
    #[doc(hidden)]
    pub fn testonly_open_skip_tail_crc(
        vfs: &dyn Vfs,
        path: &Path,
        bind_crc: u32,
    ) -> Result<(Wal, Vec<WalFrame>, WalReport), IoError> {
        Self::open_impl(vfs, path, bind_crc, false)
    }

    fn open_impl(
        vfs: &dyn Vfs,
        path: &Path,
        bind_crc: u32,
        verify_crc: bool,
    ) -> Result<(Wal, Vec<WalFrame>, WalReport), IoError> {
        let mut report =
            WalReport { swept_temp: sweep_stale_temp(vfs, path), ..WalReport::default() };
        if report.swept_temp {
            report.notes.push("removed stale temp file from an interrupted truncation".into());
        }

        if !vfs.exists(path) {
            let wal = Wal::install_fresh(vfs, path, 0, bind_crc)?;
            report.created = true;
            return Ok((wal, Vec::new(), report));
        }

        let bytes = vfs.read(path).map_err(|e| io_err("read", path, e))?;
        let header_ok = bytes.len() >= HEADER_LEN && &bytes[..4] == WAL_MAGIC;
        if !header_ok {
            // Unreadable header: nothing in this file can be trusted.
            // Start a fresh log; the snapshot alone is the recovery point.
            report.torn_bytes = bytes.len();
            report.notes.push("log header unreadable; starting a fresh log".into());
            let wal = Wal::install_fresh(vfs, path, 0, bind_crc)?;
            return Ok((wal, Vec::new(), report));
        }
        let version = u32_at(&bytes, 4);
        if version > WAL_VERSION {
            // A newer build wrote this; refuse rather than clobber.
            return Err(io_err(
                "open",
                path,
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("log format version {version} is newer than supported {WAL_VERSION}"),
                ),
            ));
        }
        let base_seq = u64_at(&bytes, 8);
        let header_bind = u32_at(&bytes, 16);

        let (frames, valid_end, next_seq) = scan_frames(&bytes, base_seq, verify_crc);

        if header_bind != bind_crc {
            // The log belongs to a different snapshot generation: a crash
            // landed between snapshot install and log reset. Every valid
            // frame here is already part of the installed snapshot.
            report.discarded_frames = frames.len();
            report.notes.push(format!(
                "log predates the snapshot on disk; discarded {} already-compacted frame(s)",
                frames.len()
            ));
            let wal = Wal::install_fresh(vfs, path, next_seq, bind_crc)?;
            return Ok((wal, Vec::new(), report));
        }

        let torn = bytes.len() - valid_end;
        if torn > 0 {
            // Salvage: atomically truncate the torn tail so the next open
            // (and any external reader) sees only verified frames.
            install_atomic(vfs, path, &bytes[..valid_end])?;
            report.torn_bytes = torn;
            report.notes.push(format!(
                "salvaged torn tail: dropped {torn} trailing byte(s) after frame prefix"
            ));
        }

        report.frames = frames.len();
        let wal = Wal {
            path: path.to_path_buf(),
            next_seq,
            len_bytes: valid_end as u64,
            bind_crc,
            poisoned: false,
        };
        Ok((wal, frames, report))
    }

    fn install_fresh(
        vfs: &dyn Vfs,
        path: &Path,
        base_seq: u64,
        bind_crc: u32,
    ) -> Result<Wal, IoError> {
        install_atomic(vfs, path, &header_bytes(base_seq, bind_crc))?;
        Ok(Wal {
            path: path.to_path_buf(),
            next_seq: base_seq,
            len_bytes: HEADER_LEN as u64,
            bind_crc,
            poisoned: false,
        })
    }

    /// Append one record; returns its assigned sequence number.
    pub fn append(&mut self, vfs: &dyn Vfs, payload: &[u8]) -> Result<u64, IoError> {
        let seq = self.next_seq;
        self.append_batch(vfs, std::slice::from_ref(&payload))?;
        Ok(seq)
    }

    /// Group commit: append every payload as its own frame with exactly
    /// one append and one sync, regardless of batch size. Either the
    /// whole batch is acknowledged or the handle is poisoned and nothing
    /// is acknowledged (a torn suffix is truncated on the next append,
    /// repair, or open).
    pub fn append_batch(
        &mut self,
        vfs: &dyn Vfs,
        payloads: &[&[u8]],
    ) -> Result<(), IoError> {
        if self.poisoned {
            self.repair(vfs)?;
        }
        if payloads.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for (i, payload) in payloads.iter().enumerate() {
            encode_frame(&mut buf, self.next_seq + i as u64, payload);
        }
        if let Err(e) = vfs.append(&self.path, &buf) {
            self.poisoned = true;
            return Err(io_err("append", &self.path, e));
        }
        if let Err(e) = vfs.sync(&self.path) {
            // The bytes may or may not be durable; until proven otherwise
            // the tail is suspect.
            self.poisoned = true;
            return Err(io_err("sync", &self.path, e));
        }
        self.next_seq += payloads.len() as u64;
        self.len_bytes += buf.len() as u64;
        Ok(())
    }

    /// Truncate any unacknowledged suffix a failed append may have left,
    /// restoring the file to its last known-good length.
    pub fn repair(&mut self, vfs: &dyn Vfs) -> Result<(), IoError> {
        let bytes = vfs.read(&self.path).map_err(|e| io_err("read", &self.path, e))?;
        let good = self.len_bytes as usize;
        if bytes.len() < good {
            return Err(io_err(
                "repair",
                &self.path,
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("log shrank below its durable length ({} < {good})", bytes.len()),
                ),
            ));
        }
        if bytes.len() > good {
            install_atomic(vfs, &self.path, &bytes[..good])?;
        }
        self.poisoned = false;
        Ok(())
    }

    /// Start a new log generation after compaction: atomically replace
    /// the file with an empty log whose `base_seq` continues the sequence
    /// and whose bind ties it to the just-installed snapshot.
    pub fn reset(&mut self, vfs: &dyn Vfs, bind_crc: u32) -> Result<(), IoError> {
        install_atomic(vfs, &self.path, &header_bytes(self.next_seq, bind_crc))?;
        self.len_bytes = HEADER_LEN as u64;
        self.bind_crc = bind_crc;
        self.poisoned = false;
        Ok(())
    }

    /// The sequence number the next appended frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Acknowledged on-disk length in bytes (header + valid frames).
    pub fn len_bytes(&self) -> u64 {
        self.len_bytes
    }

    /// True when the log holds no frames (header only).
    pub fn is_empty(&self) -> bool {
        self.len_bytes == HEADER_LEN as u64
    }

    /// The snapshot CRC this log generation is bound to.
    pub fn bind_crc(&self) -> u32 {
        self.bind_crc
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn io_err(op: &'static str, path: &Path, source: io::Error) -> IoError {
    IoError { op, path: path.to_path_buf(), source }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};

    const LOG: &str = "store.wal";
    const BIND: u32 = 0xDEAD_BEEF;

    fn log_path() -> &'static Path {
        Path::new(LOG)
    }

    /// A log with three committed frames; returns the disk and the byte
    /// offset of each frame boundary (for the truncation sweep).
    fn with_frames() -> (MemVfs, Vec<u64>, Vec<Vec<u8>>) {
        let vfs = MemVfs::new();
        let (mut wal, _, report) = Wal::open(&vfs, log_path(), BIND).unwrap();
        assert!(report.created);
        let payloads =
            vec![b"alpha".to_vec(), b"".to_vec(), vec![0xA5; 300], b"omega".to_vec()];
        let mut boundaries = vec![wal.len_bytes()];
        for p in &payloads {
            wal.append(&vfs, p).unwrap();
            boundaries.push(wal.len_bytes());
        }
        (vfs, boundaries, payloads)
    }

    #[test]
    fn roundtrip_preserves_frames_and_sequence() {
        let (vfs, _, payloads) = with_frames();
        let (wal, frames, report) = Wal::open(&vfs, log_path(), BIND).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(frames.len(), payloads.len());
        for (i, frame) in frames.iter().enumerate() {
            assert_eq!(frame.seq, i as u64);
            assert_eq!(frame.payload, payloads[i]);
        }
        assert_eq!(wal.next_seq(), payloads.len() as u64);
    }

    #[test]
    fn group_commit_is_one_append_and_one_sync() {
        // Scheduling a fault on the *second* append (and separately the
        // second sync) must not fire during a 50-payload batch: the batch
        // goes down in a single append + single sync.
        for op in [FaultOp::Append, FaultOp::Sync] {
            let base = MemVfs::new();
            let (mut wal, _, _) = Wal::open(&base, log_path(), BIND).unwrap();
            let vfs = FaultVfs::new(base, FaultConfig::new(op, FaultMode::Fail, 1, 0));
            let payloads: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 8]).collect();
            let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
            wal.append_batch(&vfs, &refs).unwrap();
            assert!(!vfs.fault_fired(), "{op:?}: batch used more than one {op:?}");
            let disk = vfs.into_inner();
            let (_, frames, _) = Wal::open(&disk, log_path(), BIND).unwrap();
            assert_eq!(frames.len(), 50);
        }
    }

    #[test]
    fn every_byte_truncation_recovers_exactly_the_committed_prefix() {
        let (vfs, boundaries, payloads) = with_frames();
        let full = vfs.bytes(LOG).unwrap().to_vec();
        for cut in 0..=full.len() {
            let disk = MemVfs::new();
            disk.write(log_path(), &full[..cut]).unwrap();
            let (wal, frames, _) = Wal::open(&disk, log_path(), BIND).unwrap();
            // Expected: every frame wholly contained in the first `cut` bytes.
            let expect =
                boundaries[1..].iter().take_while(|&&end| end <= cut as u64).count();
            assert_eq!(frames.len(), expect, "cut at byte {cut}");
            for (i, frame) in frames.iter().enumerate() {
                assert_eq!(frame.payload, payloads[i], "cut at byte {cut}");
            }
            // Salvage must have truncated the file back to the last good
            // frame, and a second open must be clean and identical.
            assert_eq!(wal.len_bytes(), boundaries[expect.min(boundaries.len() - 1)]);
            let (_, again, report) = Wal::open(&disk, log_path(), BIND).unwrap();
            assert_eq!(again.len(), expect, "reopen after salvage, cut {cut}");
            assert_eq!(report.torn_bytes, 0, "salvage must be idempotent, cut {cut}");
        }
    }

    #[test]
    fn corrupted_tail_payload_is_dropped_by_crc() {
        let (vfs, boundaries, payloads) = with_frames();
        let mut bytes = vfs.bytes(LOG).unwrap().to_vec();
        // Flip one payload byte inside the last frame.
        let tail_payload_start = boundaries[boundaries.len() - 2] as usize + 20;
        bytes[tail_payload_start] ^= 0x01;
        let disk = MemVfs::new();
        disk.write(log_path(), &bytes).unwrap();
        let (_, frames, report) = Wal::open(&disk, log_path(), BIND).unwrap();
        assert_eq!(frames.len(), payloads.len() - 1, "corrupt tail frame must be dropped");
        assert!(report.torn_bytes > 0);
    }

    #[test]
    fn testonly_skip_crc_accepts_the_corrupted_tail() {
        // The mutation hook: with CRC verification off, the flipped byte
        // sails through — which is exactly what the slimcheck mutation
        // test relies on to prove the harness notices.
        let (vfs, boundaries, payloads) = with_frames();
        let mut bytes = vfs.bytes(LOG).unwrap().to_vec();
        let tail_payload_start = boundaries[boundaries.len() - 2] as usize + 20;
        bytes[tail_payload_start] ^= 0x01;
        let disk = MemVfs::new();
        disk.write(log_path(), &bytes).unwrap();
        let (_, frames, _) =
            Wal::testonly_open_skip_tail_crc(&disk, log_path(), BIND).unwrap();
        assert_eq!(frames.len(), payloads.len(), "skip-crc open must keep the bad frame");
        assert_ne!(frames.last().unwrap().payload, payloads.last().unwrap().clone());
    }

    #[test]
    fn append_fault_matrix_recovers_committed_prefix() {
        for op in [FaultOp::Append, FaultOp::Sync] {
            for mode in [FaultMode::Fail, FaultMode::Torn, FaultMode::SilentTorn] {
                for seed in 0..8u64 {
                    // Two committed frames, then a faulted third append;
                    // the fault index skips the opens' internal syncs by
                    // counting only ops issued after setup.
                    let base = MemVfs::new();
                    let (mut wal, _, _) = Wal::open(&base, log_path(), BIND).unwrap();
                    wal.append(&base, b"one").unwrap();
                    wal.append(&base, b"two").unwrap();
                    let config = FaultConfig::new(op, mode, 0, seed).halting();
                    let vfs = FaultVfs::new(base, config);
                    let result = wal.append(&vfs, b"three");
                    assert!(vfs.fault_fired(), "{op:?}/{mode:?}");
                    let disk = vfs.into_inner();
                    let (_, frames, _) = Wal::open(&disk, log_path(), BIND).unwrap();
                    let recovered: Vec<&[u8]> =
                        frames.iter().map(|f| f.payload.as_slice()).collect();
                    match (&result, mode) {
                        (Err(_), _) => {
                            // Unacknowledged: recovery may or may not see the
                            // third frame's bytes, but must never see garbage
                            // and must keep the acknowledged prefix.
                            assert!(
                                recovered == [b"one" as &[u8], b"two"]
                                    || recovered == [b"one" as &[u8], b"two", b"three"],
                                "{op:?}/{mode:?} seed {seed}: {recovered:?}"
                            );
                        }
                        (Ok(_), FaultMode::SilentTorn) => {
                            // The disk lied; a torn suffix is detectable and
                            // dropped, leaving exactly the true prefix.
                            assert!(
                                recovered == [b"one" as &[u8], b"two"]
                                    || recovered == [b"one" as &[u8], b"two", b"three"],
                                "{op:?}/{mode:?} seed {seed}: {recovered:?}"
                            );
                        }
                        (Ok(_), _) => panic!("{op:?}/{mode:?} must not succeed"),
                    }
                }
            }
        }
    }

    #[test]
    fn poisoned_wal_self_repairs_on_next_append() {
        let base = MemVfs::new();
        let (mut wal, _, _) = Wal::open(&base, log_path(), BIND).unwrap();
        wal.append(&base, b"one").unwrap();

        // Torn append: some suffix bytes land, the error poisons the handle.
        let config = FaultConfig::new(FaultOp::Append, FaultMode::Torn, 0, 5);
        let vfs = FaultVfs::new(base, config);
        assert!(wal.append(&vfs, b"two-torn").is_err());
        let disk = vfs.into_inner();

        // The process survived; the next append truncates the torn suffix
        // and continues the sequence.
        let seq = wal.append(&disk, b"two").unwrap();
        assert_eq!(seq, 1);
        let (_, frames, report) = Wal::open(&disk, log_path(), BIND).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].payload, b"two");
    }

    #[test]
    fn bind_mismatch_discards_stale_frames() {
        let (vfs, _, _) = with_frames();
        let (wal, frames, report) = Wal::open(&vfs, log_path(), 0x0BAD_F00D).unwrap();
        assert!(frames.is_empty(), "stale frames must not replay");
        assert_eq!(report.discarded_frames, 4);
        // Sequence numbering continues: no seq is ever reused.
        assert_eq!(wal.next_seq(), 4);
        // And the fresh generation opens clean under the new bind.
        let (_, frames, report) = Wal::open(&vfs, log_path(), 0x0BAD_F00D).unwrap();
        assert!(frames.is_empty());
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn reset_starts_a_new_generation_continuing_the_sequence() {
        let (vfs, _, _) = with_frames();
        let (mut wal, frames, _) = Wal::open(&vfs, log_path(), BIND).unwrap();
        assert_eq!(frames.len(), 4);
        wal.reset(&vfs, 0x1111_2222).unwrap();
        assert!(wal.is_empty());
        let seq = wal.append(&vfs, b"post-compact").unwrap();
        assert_eq!(seq, 4, "sequence must continue across generations");
        let (_, frames, report) = Wal::open(&vfs, log_path(), 0x1111_2222).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].seq, 4);
    }

    #[test]
    fn garbage_header_salvages_to_a_fresh_log() {
        let vfs = MemVfs::new();
        vfs.write(log_path(), b"not a wal at all").unwrap();
        let (wal, frames, report) = Wal::open(&vfs, log_path(), BIND).unwrap();
        assert!(frames.is_empty());
        assert_eq!(report.torn_bytes, 16);
        assert!(!report.notes.is_empty());
        assert_eq!(wal.next_seq(), 0);
        let (_, _, report) = Wal::open(&vfs, log_path(), BIND).unwrap();
        assert!(report.is_clean(), "{report:?}");
    }

    #[test]
    fn future_version_refuses_to_open() {
        let vfs = MemVfs::new();
        let mut header = header_bytes(0, BIND);
        header[4..8].copy_from_slice(&(WAL_VERSION + 1).to_le_bytes());
        vfs.write(log_path(), &header).unwrap();
        assert!(Wal::open(&vfs, log_path(), BIND).is_err());
    }

    #[test]
    fn scan_wal_reads_without_repairing() {
        let (vfs, boundaries, payloads) = with_frames();
        let mut bytes = vfs.bytes(LOG).unwrap().to_vec();
        // Corrupt the last frame's payload: scan must report the torn
        // tail, keep the prefix, and leave the bytes alone.
        let tail_payload_start = boundaries[boundaries.len() - 2] as usize + 20;
        bytes[tail_payload_start] ^= 0x01;
        let scan = scan_wal(&bytes).unwrap();
        assert_eq!(scan.version, WAL_VERSION);
        assert_eq!(scan.base_seq, 0);
        assert_eq!(scan.bind_crc, BIND);
        assert_eq!(scan.frames.len(), payloads.len() - 1);
        assert!(scan.torn_bytes > 0);
        assert_eq!(scan.valid_len as u64, boundaries[boundaries.len() - 2]);
        // Clean bytes scan clean.
        let clean = scan_wal(&vfs.bytes(LOG).unwrap()).unwrap();
        assert_eq!(clean.torn_bytes, 0);
        assert_eq!(clean.frames.len(), payloads.len());
        assert_eq!(clean.next_seq, payloads.len() as u64);
        // Unreadable headers and future versions are typed refusals.
        assert!(scan_wal(b"short").is_err());
        assert!(scan_wal(b"not a wal header ..").is_err());
        let mut future = header_bytes(0, BIND).to_vec();
        future[4..8].copy_from_slice(&(WAL_VERSION + 1).to_le_bytes());
        assert!(scan_wal(&future).is_err());
    }

    #[test]
    fn open_sweeps_a_stale_truncation_temp() {
        let (vfs, _, _) = with_frames();
        vfs.write(Path::new("store.wal.slimio-tmp"), b"leftover").unwrap();
        let (_, frames, report) = Wal::open(&vfs, log_path(), BIND).unwrap();
        assert!(report.swept_temp);
        assert_eq!(frames.len(), 4);
        assert!(!vfs.exists(Path::new("store.wal.slimio-tmp")));
    }
}
