//! CRC32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The seal footer needs a checksum that is cheap, dependency-free, and
//! stable across platforms. CRC32 detects all single-burst errors up to
//! 32 bits and virtually all truncations, which covers the failure modes
//! the fault injector produces (torn prefixes, flipped bytes).

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Checksum `data` with the IEEE CRC32.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"<trim version=\"1\"/>");
        let b = crc32(b"<trim version=\"1\"/=");
        assert_ne!(a, b);
    }

    #[test]
    fn sensitive_to_truncation() {
        let payload = b"<marks version=\"1\" next=\"4\"></marks>";
        let full = crc32(payload);
        for cut in 0..payload.len() {
            assert_ne!(crc32(&payload[..cut]), full, "truncation at {cut} collided");
        }
    }
}
