//! Virtual file system: the seam every persistence site goes through.
//!
//! Three backends:
//!
//! - [`StdVfs`] — the real disk.
//! - [`MemVfs`] — an in-memory map, for tests that want speed and
//!   isolation.
//! - [`FaultVfs`] — wraps any backend and injects one deterministic
//!   fault (fail / torn / silently-torn) into the nth write, rename, or
//!   sync, optionally halting all further mutation to simulate the
//!   process dying at that instant.
//!
//! The trait is deliberately tiny: exactly the operations the atomic
//! save protocol and the loaders need, nothing speculative. All methods
//! take `&self` — backends use interior mutability — so one VFS can be
//! shared across threads (`Arc<dyn Vfs + Send + Sync>`): the service
//! writer thread commits through the same backend a chaos injector
//! re-arms faults on.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The file operations the persistence layer is allowed to perform.
pub trait Vfs {
    /// Read an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create or replace a file with `data`.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append `data` to the end of a file, creating it if absent.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Atomically rename `from` onto `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Force a previously written file's bytes to stable storage.
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// Force a directory's entry table to stable storage, making earlier
    /// renames and creations inside it durable. On POSIX a rename is only
    /// guaranteed to survive power loss after the *parent directory* is
    /// fsynced; skipping this is the classic "atomic save that wasn't".
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Delete a file; succeeds silently if it does not exist.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
    /// Files directly inside `dir` (non-recursive). The open-time temp
    /// sweep uses this to find stale `.slimio-tmp.*` siblings.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// Lock that shrugs off poisoning: a panic in one thread must not turn
/// every later VFS call into a second panic (the supervisor contains
/// the first one; the "disk" itself survives).
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

macro_rules! delegate_vfs {
    ($ty:ty) => {
        impl<V: Vfs + ?Sized> Vfs for $ty {
            fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
                (**self).read(path)
            }
            fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
                (**self).write(path, data)
            }
            fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
                (**self).append(path, data)
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                (**self).rename(from, to)
            }
            fn sync(&self, path: &Path) -> io::Result<()> {
                (**self).sync(path)
            }
            fn sync_dir(&self, dir: &Path) -> io::Result<()> {
                (**self).sync_dir(dir)
            }
            fn remove(&self, path: &Path) -> io::Result<()> {
                (**self).remove(path)
            }
            fn exists(&self, path: &Path) -> bool {
                (**self).exists(path)
            }
            fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
                (**self).list(dir)
            }
        }
    };
}

delegate_vfs!(&V);
delegate_vfs!(std::sync::Arc<V>);

/// The real file system.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
        std::fs::File::open(dir)?.sync_all()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }
}

/// In-memory file system for tests. Cheap to clone (snapshots the
/// "disk") and shareable across threads.
#[derive(Debug, Default)]
pub struct MemVfs {
    files: Mutex<BTreeMap<PathBuf, Vec<u8>>>,
}

impl Clone for MemVfs {
    fn clone(&self) -> Self {
        MemVfs { files: Mutex::new(relock(&self.files).clone()) }
    }
}

impl MemVfs {
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// Direct access for assertions: the raw bytes of a file, if any.
    pub fn bytes(&self, path: impl AsRef<Path>) -> Option<Vec<u8>> {
        relock(&self.files).get(path.as_ref()).cloned()
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        relock(&self.files).len()
    }
}

/// The parent directory a path's entry lives in, as `MemVfs` keys see
/// it: `""` for bare names (the same normalization `list` applies).
fn mem_parent(path: &Path) -> &Path {
    path.parent().unwrap_or_else(|| Path::new(""))
}

impl Vfs for MemVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        relock(&self.files)
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        relock(&self.files).insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        relock(&self.files).entry(path.to_path_buf()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = relock(&self.files);
        let data = files.remove(from).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{}", from.display()))
        })?;
        files.insert(to.to_path_buf(), data);
        Ok(())
    }

    fn sync(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        relock(&self.files).remove(path);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        relock(&self.files).contains_key(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let dir = if dir == Path::new(".") { Path::new("") } else { dir };
        Ok(relock(&self.files)
            .keys()
            .filter(|p| mem_parent(p) == dir)
            .cloned()
            .collect())
    }
}

/// Which operation class a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    Write,
    Append,
    Rename,
    Sync,
    SyncDir,
}

/// How the targeted operation misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation does nothing and returns an error.
    Fail,
    /// A prefix of the data lands, then the operation errors (a crash
    /// mid-write). For renames and syncs this behaves like [`Fail`].
    ///
    /// [`Fail`]: FaultMode::Fail
    Torn,
    /// A prefix of the data lands but the operation *reports success* —
    /// the lying-disk case only the checksum seal can catch. For a
    /// rename this means "reported done, never happened"; for a sync,
    /// a no-op that claims durability.
    SilentTorn,
}

/// One scheduled fault: the `index`th (0-based) operation of kind `op`
/// misbehaves according to `mode`. `seed` makes the torn-prefix length
/// deterministic; `halt_after_fault` makes every later mutating
/// operation fail, simulating the process dying at the fault.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    pub op: FaultOp,
    pub mode: FaultMode,
    pub index: u64,
    pub seed: u64,
    pub halt_after_fault: bool,
}

impl FaultConfig {
    pub fn new(op: FaultOp, mode: FaultMode, index: u64, seed: u64) -> Self {
        FaultConfig { op, mode, index, seed, halt_after_fault: false }
    }

    /// Simulate a hard crash at the fault: all subsequent mutation fails.
    pub fn halting(mut self) -> Self {
        self.halt_after_fault = true;
        self
    }
}

/// Mutable fault-schedule state, behind one lock so a shared
/// `FaultVfs` can be re-armed while another thread is writing.
#[derive(Debug)]
struct FaultState {
    config: Option<FaultConfig>,
    writes: u64,
    appends: u64,
    renames: u64,
    syncs: u64,
    sync_dirs: u64,
    fired: bool,
    halted: bool,
}

impl FaultState {
    fn new(config: Option<FaultConfig>) -> Self {
        FaultState {
            config,
            writes: 0,
            appends: 0,
            renames: 0,
            syncs: 0,
            sync_dirs: 0,
            fired: false,
            halted: false,
        }
    }
}

/// What `arm` decided for one operation.
enum Decision {
    /// The process already "died": the op must fail without touching disk.
    Halted,
    /// Not the victim: pass through.
    Pass,
    /// The scheduled fault: misbehave per `mode`; `torn_counter` feeds
    /// the deterministic torn-length derivation.
    Fault { mode: FaultMode, torn_counter: u64, seed: u64 },
}

/// A [`Vfs`] decorator that injects the configured fault. Shareable:
/// the schedule lives behind a lock, and [`FaultVfs::rearm`] /
/// [`FaultVfs::disarm`] swap it at runtime (the chaos harness's lever).
#[derive(Debug)]
pub struct FaultVfs<V> {
    inner: V,
    state: Mutex<FaultState>,
}

impl<V: Vfs> FaultVfs<V> {
    pub fn new(inner: V, config: FaultConfig) -> Self {
        FaultVfs { inner, state: Mutex::new(FaultState::new(Some(config))) }
    }

    /// A transparent wrapper with no fault scheduled (arm one later).
    pub fn unarmed(inner: V) -> Self {
        FaultVfs { inner, state: Mutex::new(FaultState::new(None)) }
    }

    /// Whether the scheduled fault actually triggered.
    pub fn fault_fired(&self) -> bool {
        relock(&self.state).fired
    }

    /// Whether a halting fault has "killed the process": all mutation
    /// fails until [`FaultVfs::rearm`] or [`FaultVfs::disarm`].
    pub fn halted(&self) -> bool {
        relock(&self.state).halted
    }

    /// Install a fresh schedule: counters, `fired`, and `halted` reset,
    /// so a "rebooted" process can reuse the same shared disk.
    pub fn rearm(&self, config: FaultConfig) {
        *relock(&self.state) = FaultState::new(Some(config));
    }

    /// Clear the schedule entirely: behave as the plain inner backend.
    pub fn disarm(&self) {
        *relock(&self.state) = FaultState::new(None);
    }

    /// Unwrap the inner backend (to inspect state "after the crash").
    pub fn into_inner(self) -> V {
        self.inner
    }

    /// Borrow the inner backend.
    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Deterministic torn-prefix length in `0..=len` (splitmix64 on the
    /// seed and the op counter, so distinct faults tear differently).
    fn torn_len(seed: u64, counter: u64, len: usize) -> usize {
        let mut z = seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % (len as u64 + 1)) as usize
    }

    fn fault_error(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    fn halted_error(&self) -> io::Error {
        io::Error::other("injected fault: process halted")
    }

    /// Count the operation and decide its fate.
    fn arm(&self, op: FaultOp) -> Decision {
        let mut st = relock(&self.state);
        let was_halted = st.halted;
        let counter = match op {
            FaultOp::Write => {
                st.writes += 1;
                st.writes - 1
            }
            FaultOp::Append => {
                st.appends += 1;
                st.appends - 1
            }
            FaultOp::Rename => {
                st.renames += 1;
                st.renames - 1
            }
            FaultOp::Sync => {
                st.syncs += 1;
                st.syncs - 1
            }
            FaultOp::SyncDir => {
                st.sync_dirs += 1;
                st.sync_dirs - 1
            }
        };
        if was_halted {
            return Decision::Halted;
        }
        match st.config {
            Some(config) if !st.fired && config.op == op && counter == config.index => {
                st.fired = true;
                if config.halt_after_fault {
                    st.halted = true;
                }
                Decision::Fault { mode: config.mode, torn_counter: counter + 1, seed: config.seed }
            }
            _ => Decision::Pass,
        }
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.arm(FaultOp::Write) {
            Decision::Halted => Err(self.halted_error()),
            Decision::Pass => self.inner.write(path, data),
            Decision::Fault { mode: FaultMode::Fail, .. } => Err(self.fault_error("write failed")),
            Decision::Fault { mode: FaultMode::Torn, torn_counter, seed } => {
                let keep = Self::torn_len(seed, torn_counter, data.len());
                self.inner.write(path, &data[..keep])?;
                Err(self.fault_error("write torn"))
            }
            Decision::Fault { mode: FaultMode::SilentTorn, torn_counter, seed } => {
                let keep = Self::torn_len(seed, torn_counter, data.len());
                self.inner.write(path, &data[..keep])
            }
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.arm(FaultOp::Append) {
            Decision::Halted => Err(self.halted_error()),
            Decision::Pass => self.inner.append(path, data),
            Decision::Fault { mode: FaultMode::Fail, .. } => Err(self.fault_error("append failed")),
            Decision::Fault { mode: FaultMode::Torn, torn_counter, seed } => {
                let keep = Self::torn_len(seed, torn_counter, data.len());
                self.inner.append(path, &data[..keep])?;
                Err(self.fault_error("append torn"))
            }
            Decision::Fault { mode: FaultMode::SilentTorn, torn_counter, seed } => {
                let keep = Self::torn_len(seed, torn_counter, data.len());
                self.inner.append(path, &data[..keep])
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm(FaultOp::Rename) {
            Decision::Halted => Err(self.halted_error()),
            Decision::Pass => self.inner.rename(from, to),
            Decision::Fault { mode: FaultMode::Fail | FaultMode::Torn, .. } => {
                Err(self.fault_error("rename failed"))
            }
            // Reported done, never happened: the metadata update was lost.
            Decision::Fault { mode: FaultMode::SilentTorn, .. } => Ok(()),
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        match self.arm(FaultOp::Sync) {
            Decision::Halted => Err(self.halted_error()),
            Decision::Pass => self.inner.sync(path),
            Decision::Fault { mode: FaultMode::Fail | FaultMode::Torn, .. } => {
                Err(self.fault_error("sync failed"))
            }
            Decision::Fault { mode: FaultMode::SilentTorn, .. } => Ok(()),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.arm(FaultOp::SyncDir) {
            Decision::Halted => Err(self.halted_error()),
            Decision::Pass => self.inner.sync_dir(dir),
            Decision::Fault { mode: FaultMode::Fail | FaultMode::Torn, .. } => {
                Err(self.fault_error("sync_dir failed"))
            }
            Decision::Fault { mode: FaultMode::SilentTorn, .. } => Ok(()),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        if relock(&self.state).halted {
            return Err(self.halted_error());
        }
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_basics() {
        let vfs = MemVfs::new();
        let path = Path::new("a.xml");
        assert!(!vfs.exists(path));
        assert!(vfs.read(path).is_err());
        vfs.write(path, b"hello").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"hello");
        vfs.rename(path, Path::new("b.xml")).unwrap();
        assert!(!vfs.exists(path));
        assert_eq!(vfs.read(Path::new("b.xml")).unwrap(), b"hello");
        vfs.remove(Path::new("b.xml")).unwrap();
        vfs.remove(Path::new("b.xml")).unwrap(); // idempotent
        assert_eq!(vfs.file_count(), 0);
    }

    #[test]
    fn mem_vfs_lists_only_the_requested_directory() {
        let vfs = MemVfs::new();
        vfs.write(Path::new("root.xml"), b"r").unwrap();
        vfs.write(Path::new("dir/a.xml"), b"a").unwrap();
        vfs.write(Path::new("dir/b.xml"), b"b").unwrap();
        vfs.write(Path::new("dir/sub/c.xml"), b"c").unwrap();
        let mut in_dir = vfs.list(Path::new("dir")).unwrap();
        in_dir.sort();
        assert_eq!(in_dir, vec![PathBuf::from("dir/a.xml"), PathBuf::from("dir/b.xml")]);
        let at_root = vfs.list(Path::new("")).unwrap();
        assert_eq!(at_root, vec![PathBuf::from("root.xml")]);
        // "." and "" address the same root namespace.
        assert_eq!(vfs.list(Path::new(".")).unwrap(), at_root);
    }

    #[test]
    fn mem_vfs_is_shareable_across_threads() {
        let vfs = std::sync::Arc::new(MemVfs::new());
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let vfs = vfs.clone();
                std::thread::spawn(move || {
                    let path = PathBuf::from(format!("t{i}.bin"));
                    for round in 0..50u32 {
                        vfs.write(&path, &round.to_le_bytes()).unwrap();
                        vfs.append(&path, b"+").unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(vfs.file_count(), 4);
    }

    #[test]
    fn fault_fail_hits_the_scheduled_write_only() {
        let config = FaultConfig::new(FaultOp::Write, FaultMode::Fail, 1, 7);
        let vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("one"), b"1").unwrap();
        assert!(vfs.write(Path::new("two"), b"2").is_err());
        assert!(vfs.fault_fired());
        vfs.write(Path::new("three"), b"3").unwrap();
        let inner = vfs.into_inner();
        assert!(inner.exists(Path::new("one")));
        assert!(!inner.exists(Path::new("two")));
        assert!(inner.exists(Path::new("three")));
    }

    #[test]
    fn torn_write_leaves_a_strict_prefix_and_errors() {
        let data = b"0123456789abcdef";
        for seed in 0..32 {
            let config = FaultConfig::new(FaultOp::Write, FaultMode::Torn, 0, seed);
            let vfs = FaultVfs::new(MemVfs::new(), config);
            assert!(vfs.write(Path::new("f"), data).is_err());
            let inner = vfs.into_inner();
            let on_disk = inner.bytes("f").unwrap();
            assert!(on_disk.len() <= data.len());
            assert_eq!(on_disk, &data[..on_disk.len()]);
        }
    }

    #[test]
    fn torn_prefix_is_deterministic_per_seed() {
        let data = vec![0xAB; 1000];
        let lens: Vec<usize> = (0..2)
            .map(|_| {
                let config = FaultConfig::new(FaultOp::Write, FaultMode::Torn, 0, 42);
                let vfs = FaultVfs::new(MemVfs::new(), config);
                let _ = vfs.write(Path::new("f"), &data);
                vfs.into_inner().bytes("f").unwrap().len()
            })
            .collect();
        assert_eq!(lens[0], lens[1]);
    }

    #[test]
    fn silent_torn_write_reports_success() {
        let config = FaultConfig::new(FaultOp::Write, FaultMode::SilentTorn, 0, 99);
        let vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("f"), &[1u8; 64]).unwrap(); // lies
        assert!(vfs.fault_fired());
    }

    #[test]
    fn silent_rename_loses_the_rename() {
        let config = FaultConfig::new(FaultOp::Rename, FaultMode::SilentTorn, 0, 3);
        let vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("tmp"), b"x").unwrap();
        vfs.rename(Path::new("tmp"), Path::new("final")).unwrap(); // lies
        let inner = vfs.into_inner();
        assert!(inner.exists(Path::new("tmp")));
        assert!(!inner.exists(Path::new("final")));
    }

    #[test]
    fn mem_vfs_append_creates_and_extends() {
        let vfs = MemVfs::new();
        let path = Path::new("log");
        vfs.append(path, b"ab").unwrap();
        vfs.append(path, b"cd").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"abcd");
    }

    #[test]
    fn torn_append_leaves_old_content_plus_a_prefix() {
        for seed in 0..16 {
            let config = FaultConfig::new(FaultOp::Append, FaultMode::Torn, 1, seed);
            let vfs = FaultVfs::new(MemVfs::new(), config);
            vfs.append(Path::new("log"), b"first").unwrap();
            assert!(vfs.append(Path::new("log"), b"second").is_err());
            let on_disk = vfs.into_inner().read(Path::new("log")).unwrap();
            assert!(on_disk.starts_with(b"first"));
            assert!(on_disk.len() <= b"firstsecond".len());
            assert_eq!(&on_disk[5..], &b"second"[..on_disk.len() - 5]);
        }
    }

    #[test]
    fn failed_append_lands_nothing() {
        let config = FaultConfig::new(FaultOp::Append, FaultMode::Fail, 0, 0);
        let vfs = FaultVfs::new(MemVfs::new(), config);
        assert!(vfs.append(Path::new("log"), b"x").is_err());
        assert!(!vfs.into_inner().exists(Path::new("log")));
    }

    #[test]
    fn sync_dir_fault_fires_on_schedule() {
        let config = FaultConfig::new(FaultOp::SyncDir, FaultMode::Fail, 1, 0);
        let vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.sync_dir(Path::new(".")).unwrap();
        assert!(vfs.sync_dir(Path::new(".")).is_err());
        assert!(vfs.fault_fired());
        vfs.sync_dir(Path::new(".")).unwrap();
    }

    #[test]
    fn halting_fault_kills_all_later_mutation() {
        let config = FaultConfig::new(FaultOp::Sync, FaultMode::Fail, 0, 0).halting();
        let vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("f"), b"x").unwrap();
        assert!(vfs.sync(Path::new("f")).is_err());
        assert!(vfs.halted());
        assert!(vfs.write(Path::new("g"), b"y").is_err());
        assert!(vfs.append(Path::new("f"), b"y").is_err());
        assert!(vfs.rename(Path::new("f"), Path::new("h")).is_err());
        assert!(vfs.sync_dir(Path::new(".")).is_err());
        assert!(vfs.remove(Path::new("f")).is_err());
        // Reads still work: the "disk" survives the process.
        assert_eq!(vfs.read(Path::new("f")).unwrap(), b"x");
    }

    #[test]
    fn rearm_resets_schedule_and_revives_a_halted_disk() {
        let config = FaultConfig::new(FaultOp::Write, FaultMode::Fail, 0, 0).halting();
        let vfs = FaultVfs::new(MemVfs::new(), config);
        assert!(vfs.write(Path::new("f"), b"x").is_err());
        assert!(vfs.halted());
        // "Reboot": a fresh schedule targets the second write from now.
        vfs.rearm(FaultConfig::new(FaultOp::Write, FaultMode::Fail, 1, 0));
        assert!(!vfs.fault_fired());
        vfs.write(Path::new("f"), b"x").unwrap();
        assert!(vfs.write(Path::new("g"), b"y").is_err());
        assert!(vfs.fault_fired());
        // Disarm: transparent passthrough from here on.
        vfs.disarm();
        vfs.write(Path::new("g"), b"y").unwrap();
        assert!(!vfs.fault_fired());
    }

    #[test]
    fn unarmed_wrapper_is_transparent() {
        let vfs = FaultVfs::unarmed(MemVfs::new());
        vfs.write(Path::new("f"), b"x").unwrap();
        vfs.sync(Path::new("f")).unwrap();
        assert!(!vfs.fault_fired());
        assert!(!vfs.halted());
    }
}
