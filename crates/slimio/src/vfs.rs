//! Virtual file system: the seam every persistence site goes through.
//!
//! Three backends:
//!
//! - [`StdVfs`] — the real disk.
//! - [`MemVfs`] — an in-memory map, for tests that want speed and
//!   isolation.
//! - [`FaultVfs`] — wraps any backend and injects one deterministic
//!   fault (fail / torn / silently-torn) into the nth write, rename, or
//!   sync, optionally halting all further mutation to simulate the
//!   process dying at that instant.
//!
//! The trait is deliberately tiny: exactly the operations the atomic
//! save protocol and the loaders need, nothing speculative.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// The file operations the persistence layer is allowed to perform.
pub trait Vfs {
    /// Read an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create or replace a file with `data`.
    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append `data` to the end of a file, creating it if absent.
    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Atomically rename `from` onto `to`, replacing `to` if it exists.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    /// Force a previously written file's bytes to stable storage.
    fn sync(&mut self, path: &Path) -> io::Result<()>;
    /// Force a directory's entry table to stable storage, making earlier
    /// renames and creations inside it durable. On POSIX a rename is only
    /// guaranteed to survive power loss after the *parent directory* is
    /// fsynced; skipping this is the classic "atomic save that wasn't".
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
    /// Delete a file; succeeds silently if it does not exist.
    fn remove(&mut self, path: &Path) -> io::Result<()>;
    /// Whether a file exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The real file system.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl Vfs for StdVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(data)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        let dir = if dir.as_os_str().is_empty() { Path::new(".") } else { dir };
        std::fs::File::open(dir)?.sync_all()
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// In-memory file system for tests.
#[derive(Debug, Default, Clone)]
pub struct MemVfs {
    files: BTreeMap<PathBuf, Vec<u8>>,
}

impl MemVfs {
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// Direct access for assertions: the raw bytes of a file, if any.
    pub fn bytes(&self, path: impl AsRef<Path>) -> Option<&[u8]> {
        self.files.get(path.as_ref()).map(Vec::as_slice)
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .get(path)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display())))
    }

    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files.insert(path.to_path_buf(), data.to_vec());
        Ok(())
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.files.entry(path.to_path_buf()).or_default().extend_from_slice(data);
        Ok(())
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let data = self.files.remove(from).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("{}", from.display()))
        })?;
        self.files.insert(to.to_path_buf(), data);
        Ok(())
    }

    fn sync(&mut self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn sync_dir(&mut self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.files.remove(path);
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.files.contains_key(path)
    }
}

/// Which operation class a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    Write,
    Append,
    Rename,
    Sync,
    SyncDir,
}

/// How the targeted operation misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation does nothing and returns an error.
    Fail,
    /// A prefix of the data lands, then the operation errors (a crash
    /// mid-write). For renames and syncs this behaves like [`Fail`].
    ///
    /// [`Fail`]: FaultMode::Fail
    Torn,
    /// A prefix of the data lands but the operation *reports success* —
    /// the lying-disk case only the checksum seal can catch. For a
    /// rename this means "reported done, never happened"; for a sync,
    /// a no-op that claims durability.
    SilentTorn,
}

/// One scheduled fault: the `index`th (0-based) operation of kind `op`
/// misbehaves according to `mode`. `seed` makes the torn-prefix length
/// deterministic; `halt_after_fault` makes every later mutating
/// operation fail, simulating the process dying at the fault.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    pub op: FaultOp,
    pub mode: FaultMode,
    pub index: u64,
    pub seed: u64,
    pub halt_after_fault: bool,
}

impl FaultConfig {
    pub fn new(op: FaultOp, mode: FaultMode, index: u64, seed: u64) -> Self {
        FaultConfig { op, mode, index, seed, halt_after_fault: false }
    }

    /// Simulate a hard crash at the fault: all subsequent mutation fails.
    pub fn halting(mut self) -> Self {
        self.halt_after_fault = true;
        self
    }
}

/// A [`Vfs`] decorator that injects the configured fault.
#[derive(Debug)]
pub struct FaultVfs<V> {
    inner: V,
    config: FaultConfig,
    writes: u64,
    appends: u64,
    renames: u64,
    syncs: u64,
    sync_dirs: u64,
    fired: bool,
    halted: bool,
}

impl<V: Vfs> FaultVfs<V> {
    pub fn new(inner: V, config: FaultConfig) -> Self {
        FaultVfs {
            inner,
            config,
            writes: 0,
            appends: 0,
            renames: 0,
            syncs: 0,
            sync_dirs: 0,
            fired: false,
            halted: false,
        }
    }

    /// Whether the scheduled fault actually triggered.
    pub fn fault_fired(&self) -> bool {
        self.fired
    }

    /// Unwrap the inner backend (to inspect state "after the crash").
    pub fn into_inner(self) -> V {
        self.inner
    }

    /// Borrow the inner backend.
    pub fn inner(&self) -> &V {
        &self.inner
    }

    /// Deterministic torn-prefix length in `0..=len` (splitmix64 on the
    /// seed and the op counter, so distinct faults tear differently).
    fn torn_len(&self, counter: u64, len: usize) -> usize {
        let mut z = self.config.seed ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % (len as u64 + 1)) as usize
    }

    fn fault_error(&self, what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }

    fn halted_error(&self) -> io::Error {
        io::Error::other("injected fault: process halted")
    }

    /// Returns the fault mode if this operation is the scheduled victim.
    fn arm(&mut self, op: FaultOp) -> Option<FaultMode> {
        let counter = match op {
            FaultOp::Write => {
                self.writes += 1;
                self.writes - 1
            }
            FaultOp::Append => {
                self.appends += 1;
                self.appends - 1
            }
            FaultOp::Rename => {
                self.renames += 1;
                self.renames - 1
            }
            FaultOp::Sync => {
                self.syncs += 1;
                self.syncs - 1
            }
            FaultOp::SyncDir => {
                self.sync_dirs += 1;
                self.sync_dirs - 1
            }
        };
        if !self.fired && self.config.op == op && counter == self.config.index {
            self.fired = true;
            if self.config.halt_after_fault {
                self.halted = true;
            }
            Some(self.config.mode)
        } else {
            None
        }
    }
}

impl<V: Vfs> Vfs for FaultVfs<V> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn write(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        let was_halted = self.halted;
        match self.arm(FaultOp::Write) {
            _ if was_halted => Err(self.halted_error()),
            None => self.inner.write(path, data),
            Some(FaultMode::Fail) => Err(self.fault_error("write failed")),
            Some(FaultMode::Torn) => {
                let keep = self.torn_len(self.writes, data.len());
                self.inner.write(path, &data[..keep])?;
                Err(self.fault_error("write torn"))
            }
            Some(FaultMode::SilentTorn) => {
                let keep = self.torn_len(self.writes, data.len());
                self.inner.write(path, &data[..keep])
            }
        }
    }

    fn append(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
        let was_halted = self.halted;
        match self.arm(FaultOp::Append) {
            _ if was_halted => Err(self.halted_error()),
            None => self.inner.append(path, data),
            Some(FaultMode::Fail) => Err(self.fault_error("append failed")),
            Some(FaultMode::Torn) => {
                let keep = self.torn_len(self.appends, data.len());
                self.inner.append(path, &data[..keep])?;
                Err(self.fault_error("append torn"))
            }
            Some(FaultMode::SilentTorn) => {
                let keep = self.torn_len(self.appends, data.len());
                self.inner.append(path, &data[..keep])
            }
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let was_halted = self.halted;
        match self.arm(FaultOp::Rename) {
            _ if was_halted => Err(self.halted_error()),
            None => self.inner.rename(from, to),
            Some(FaultMode::Fail) | Some(FaultMode::Torn) => {
                Err(self.fault_error("rename failed"))
            }
            // Reported done, never happened: the metadata update was lost.
            Some(FaultMode::SilentTorn) => Ok(()),
        }
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        let was_halted = self.halted;
        match self.arm(FaultOp::Sync) {
            _ if was_halted => Err(self.halted_error()),
            None => self.inner.sync(path),
            Some(FaultMode::Fail) | Some(FaultMode::Torn) => Err(self.fault_error("sync failed")),
            Some(FaultMode::SilentTorn) => Ok(()),
        }
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        let was_halted = self.halted;
        match self.arm(FaultOp::SyncDir) {
            _ if was_halted => Err(self.halted_error()),
            None => self.inner.sync_dir(dir),
            Some(FaultMode::Fail) | Some(FaultMode::Torn) => {
                Err(self.fault_error("sync_dir failed"))
            }
            Some(FaultMode::SilentTorn) => Ok(()),
        }
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        if self.halted {
            return Err(self.halted_error());
        }
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_basics() {
        let mut vfs = MemVfs::new();
        let path = Path::new("a.xml");
        assert!(!vfs.exists(path));
        assert!(vfs.read(path).is_err());
        vfs.write(path, b"hello").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"hello");
        vfs.rename(path, Path::new("b.xml")).unwrap();
        assert!(!vfs.exists(path));
        assert_eq!(vfs.read(Path::new("b.xml")).unwrap(), b"hello");
        vfs.remove(Path::new("b.xml")).unwrap();
        vfs.remove(Path::new("b.xml")).unwrap(); // idempotent
        assert_eq!(vfs.file_count(), 0);
    }

    #[test]
    fn fault_fail_hits_the_scheduled_write_only() {
        let config = FaultConfig::new(FaultOp::Write, FaultMode::Fail, 1, 7);
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("one"), b"1").unwrap();
        assert!(vfs.write(Path::new("two"), b"2").is_err());
        assert!(vfs.fault_fired());
        vfs.write(Path::new("three"), b"3").unwrap();
        let inner = vfs.into_inner();
        assert!(inner.exists(Path::new("one")));
        assert!(!inner.exists(Path::new("two")));
        assert!(inner.exists(Path::new("three")));
    }

    #[test]
    fn torn_write_leaves_a_strict_prefix_and_errors() {
        let data = b"0123456789abcdef";
        for seed in 0..32 {
            let config = FaultConfig::new(FaultOp::Write, FaultMode::Torn, 0, seed);
            let mut vfs = FaultVfs::new(MemVfs::new(), config);
            assert!(vfs.write(Path::new("f"), data).is_err());
            let inner = vfs.into_inner();
            let on_disk = inner.bytes("f").unwrap();
            assert!(on_disk.len() <= data.len());
            assert_eq!(on_disk, &data[..on_disk.len()]);
        }
    }

    #[test]
    fn torn_prefix_is_deterministic_per_seed() {
        let data = vec![0xAB; 1000];
        let lens: Vec<usize> = (0..2)
            .map(|_| {
                let config = FaultConfig::new(FaultOp::Write, FaultMode::Torn, 0, 42);
                let mut vfs = FaultVfs::new(MemVfs::new(), config);
                let _ = vfs.write(Path::new("f"), &data);
                vfs.into_inner().bytes("f").unwrap().len()
            })
            .collect();
        assert_eq!(lens[0], lens[1]);
    }

    #[test]
    fn silent_torn_write_reports_success() {
        let config = FaultConfig::new(FaultOp::Write, FaultMode::SilentTorn, 0, 99);
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("f"), &[1u8; 64]).unwrap(); // lies
        assert!(vfs.fault_fired());
    }

    #[test]
    fn silent_rename_loses_the_rename() {
        let config = FaultConfig::new(FaultOp::Rename, FaultMode::SilentTorn, 0, 3);
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("tmp"), b"x").unwrap();
        vfs.rename(Path::new("tmp"), Path::new("final")).unwrap(); // lies
        let inner = vfs.into_inner();
        assert!(inner.exists(Path::new("tmp")));
        assert!(!inner.exists(Path::new("final")));
    }

    #[test]
    fn mem_vfs_append_creates_and_extends() {
        let mut vfs = MemVfs::new();
        let path = Path::new("log");
        vfs.append(path, b"ab").unwrap();
        vfs.append(path, b"cd").unwrap();
        assert_eq!(vfs.read(path).unwrap(), b"abcd");
    }

    #[test]
    fn torn_append_leaves_old_content_plus_a_prefix() {
        for seed in 0..16 {
            let config = FaultConfig::new(FaultOp::Append, FaultMode::Torn, 1, seed);
            let mut vfs = FaultVfs::new(MemVfs::new(), config);
            vfs.append(Path::new("log"), b"first").unwrap();
            assert!(vfs.append(Path::new("log"), b"second").is_err());
            let on_disk = vfs.into_inner().read(Path::new("log")).unwrap();
            assert!(on_disk.starts_with(b"first"));
            assert!(on_disk.len() <= b"firstsecond".len());
            assert_eq!(&on_disk[5..], &b"second"[..on_disk.len() - 5]);
        }
    }

    #[test]
    fn failed_append_lands_nothing() {
        let config = FaultConfig::new(FaultOp::Append, FaultMode::Fail, 0, 0);
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        assert!(vfs.append(Path::new("log"), b"x").is_err());
        assert!(!vfs.into_inner().exists(Path::new("log")));
    }

    #[test]
    fn sync_dir_fault_fires_on_schedule() {
        let config = FaultConfig::new(FaultOp::SyncDir, FaultMode::Fail, 1, 0);
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.sync_dir(Path::new(".")).unwrap();
        assert!(vfs.sync_dir(Path::new(".")).is_err());
        assert!(vfs.fault_fired());
        vfs.sync_dir(Path::new(".")).unwrap();
    }

    #[test]
    fn halting_fault_kills_all_later_mutation() {
        let config = FaultConfig::new(FaultOp::Sync, FaultMode::Fail, 0, 0).halting();
        let mut vfs = FaultVfs::new(MemVfs::new(), config);
        vfs.write(Path::new("f"), b"x").unwrap();
        assert!(vfs.sync(Path::new("f")).is_err());
        assert!(vfs.write(Path::new("g"), b"y").is_err());
        assert!(vfs.append(Path::new("f"), b"y").is_err());
        assert!(vfs.rename(Path::new("f"), Path::new("h")).is_err());
        assert!(vfs.sync_dir(Path::new(".")).is_err());
        assert!(vfs.remove(Path::new("f")).is_err());
        // Reads still work: the "disk" survives the process.
        assert_eq!(vfs.read(Path::new("f")).unwrap(), b"x");
    }
}
