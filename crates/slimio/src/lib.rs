//! Crash-safe persistence for the SLIM workspace.
//!
//! Every saved artifact in this system is a small XML document — a triple
//! store, a mark store, or a pad file that embeds both. Before this crate
//! existed each persistence site called `std::fs::write` directly, which
//! has two failure modes the paper's bundle model cannot tolerate:
//!
//! 1. **Torn writes.** A crash mid-write leaves a truncated file that
//!    replaced the previous good one. The superimposed layer loses marks
//!    whose base documents are perfectly intact.
//! 2. **Silent corruption.** A lying disk reports success for bytes that
//!    never hit the platter; the damage surfaces only at the next load.
//!
//! `slimio` addresses both with three cooperating pieces:
//!
//! - [`Vfs`] — a small file-system trait so every persistence site is
//!   testable against an in-memory backend ([`MemVfs`]) and a
//!   deterministic fault injector ([`FaultVfs`]) as well as the real
//!   disk ([`StdVfs`]).
//! - [`save_atomic`] — write-temp → fsync → rename, so a crash at any
//!   point leaves either the old file or the new file, never a hybrid.
//! - [`seal`]/[`check_seal`] — a CRC32 footer appended as a trailing XML
//!   comment, so corruption is detected at load time and salvage
//!   recovery (in the consuming crates) can be attempted deliberately
//!   instead of discovered as a parse panic.
//!
//! The [`Recovered`] report type is shared by every salvage-capable
//! loader in the workspace so callers see one shape: what survived, what
//! was lost, and why.

mod atomic;
mod crc;
mod report;
mod seal;
mod vfs;
mod wal;

pub use atomic::{install_atomic, load_sealed, save_atomic, sweep_stale_temp, IoError};
pub use crc::crc32;
pub use report::Recovered;
pub use seal::{check_seal, seal, strip_seal, Integrity, SEAL_VERSION};
pub use vfs::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs, StdVfs, Vfs};
pub use wal::{scan_wal, Wal, WalFrame, WalReport, WalScan};
