//! Checksummed seal footer for saved XML artifacts.
//!
//! A sealed artifact is the original payload followed by one trailing
//! XML comment:
//!
//! ```text
//! <trim version="1">...</trim>
//! <!--slimio v1 crc32=9ae0daaf len=1024-->
//! ```
//!
//! The footer is a comment so sealed files remain well-formed XML and
//! loadable by tools that know nothing about slimio. `len` is the byte
//! length of the payload (everything before the footer's leading
//! newline); `crc32` is the IEEE CRC32 of exactly those bytes, in
//! lowercase hex. Files written before sealing existed carry no footer
//! and load as [`Integrity::Unsealed`] — trusted but unverifiable.

use crate::crc::crc32;

/// Version tag written into the footer, bumped if the format changes.
pub const SEAL_VERSION: u32 = 1;

const FOOTER_PREFIX: &str = "\n<!--slimio v1 crc32=";
const FOOTER_SUFFIX: &str = "-->";

/// What checking a seal told us about an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// Footer present and the checksum matches the payload.
    Verified,
    /// No footer: a legacy artifact saved before sealing existed.
    Unsealed,
    /// Footer present but damaged, or checksum/length mismatch.
    Corrupt,
}

/// Append the seal footer to `payload`.
pub fn seal(payload: &str) -> String {
    let bytes = payload.as_bytes();
    format!(
        "{payload}{FOOTER_PREFIX}{:08x} len={}{FOOTER_SUFFIX}",
        crc32(bytes),
        bytes.len()
    )
}

/// Check a possibly-sealed artifact, returning the verdict and the
/// payload with the footer stripped (the input unchanged if unsealed).
///
/// On [`Integrity::Corrupt`] the returned payload is the best guess —
/// the bytes before the footer if one was found, otherwise the whole
/// input — so salvage parsing can still be attempted.
pub fn check_seal(text: &str) -> (Integrity, &str) {
    let Some(idx) = text.rfind(FOOTER_PREFIX) else {
        return (Integrity::Unsealed, text);
    };
    let payload = &text[..idx];
    let footer = &text[idx + FOOTER_PREFIX.len()..];
    let Some(body) = footer.strip_suffix(FOOTER_SUFFIX) else {
        // Footer started but never finished: the write tore inside it.
        return (Integrity::Corrupt, payload);
    };
    let Some((crc_hex, len_field)) = body.split_once(" len=") else {
        return (Integrity::Corrupt, payload);
    };
    let (Ok(expected_crc), Ok(expected_len)) =
        (u32::from_str_radix(crc_hex, 16), len_field.parse::<usize>())
    else {
        return (Integrity::Corrupt, payload);
    };
    if payload.len() == expected_len && crc32(payload.as_bytes()) == expected_crc {
        (Integrity::Verified, payload)
    } else {
        (Integrity::Corrupt, payload)
    }
}

/// Strip a seal footer without verifying it (for display/diff tooling).
pub fn strip_seal(text: &str) -> &str {
    check_seal(text).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_verifies() {
        let payload = "<trim version=\"1\">\n  <t s=\"a\" p=\"b\"><lit>c</lit></t>\n</trim>";
        let sealed = seal(payload);
        let (verdict, stripped) = check_seal(&sealed);
        assert_eq!(verdict, Integrity::Verified);
        assert_eq!(stripped, payload);
    }

    #[test]
    fn unsealed_passes_through() {
        let legacy = "<trim version=\"1\"></trim>";
        let (verdict, stripped) = check_seal(legacy);
        assert_eq!(verdict, Integrity::Unsealed);
        assert_eq!(stripped, legacy);
    }

    #[test]
    fn flipped_byte_is_corrupt() {
        let sealed = seal("<marks version=\"1\" next=\"2\"></marks>");
        let mut bytes = sealed.into_bytes();
        bytes[10] ^= 0x20;
        let tampered = String::from_utf8(bytes).unwrap();
        let (verdict, _) = check_seal(&tampered);
        assert_eq!(verdict, Integrity::Corrupt);
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let sealed = seal("<slimpad-file version=\"1\"><store>s</store><marks>m</marks></slimpad-file>");
        for cut in 1..sealed.len() {
            if !sealed.is_char_boundary(cut) {
                continue;
            }
            let (verdict, _) = check_seal(&sealed[..cut]);
            assert_ne!(
                verdict,
                Integrity::Verified,
                "truncation at byte {cut} passed verification"
            );
        }
    }

    #[test]
    fn sealed_file_is_still_wellformed_xml_shape() {
        let sealed = seal("<trim version=\"1\"></trim>");
        assert!(sealed.ends_with("-->"));
        assert!(sealed.contains("<!--slimio v1 crc32="));
    }

    #[test]
    fn garbage_footer_fields_are_corrupt() {
        let bad = format!("<x/>{}zzzzzzzz len=4{}", FOOTER_PREFIX, FOOTER_SUFFIX);
        assert_eq!(check_seal(&bad).0, Integrity::Corrupt);
        let bad_len = format!("<x/>{}00000000 len=nope{}", FOOTER_PREFIX, FOOTER_SUFFIX);
        assert_eq!(check_seal(&bad_len).0, Integrity::Corrupt);
    }
}
