//! DMI query capabilities (paper §6: "We are also considering augmenting
//! such interfaces with query capabilities, in addition to the current
//! navigational access").
//!
//! Queries are deliberately simple — the paper's store offers selection
//! and reachability, so the DMI layer composes those into
//! instance-space queries: *find instances of a construct whose
//! connector values satisfy predicates*, plus path-following. No query
//! plan, no joins beyond conjunction; everything stays interpretable
//! against the model.

use crate::generic::{GenericDmi, Instance};
use crate::slimpad_dmi::{BundleHandle, ScrapHandle, SlimPadDmi};
use metamodel::vocab;
use trim::{ConjQuery, Value};

/// A predicate over one connector's values.
#[derive(Debug, Clone)]
pub enum ValuePred {
    /// Some value equals the text exactly.
    Equals(String),
    /// Some value contains the text (case-insensitive).
    Contains(String),
    /// Some value starts with the text.
    StartsWith(String),
    /// At least `n` values are present.
    CountAtLeast(usize),
    /// No value present.
    Absent,
}

impl ValuePred {
    /// Test against a connector's text values.
    pub fn matches(&self, values: &[String]) -> bool {
        match self {
            ValuePred::Equals(t) => values.iter().any(|v| v == t),
            ValuePred::Contains(t) => {
                let needle = t.to_lowercase();
                values.iter().any(|v| v.to_lowercase().contains(&needle))
            }
            ValuePred::StartsWith(t) => values.iter().any(|v| v.starts_with(t.as_str())),
            ValuePred::CountAtLeast(n) => values.len() >= *n,
            ValuePred::Absent => values.is_empty(),
        }
    }
}

/// A conjunctive instance query: construct + per-connector predicates.
#[derive(Debug, Clone, Default)]
pub struct InstanceQuery {
    /// The construct whose instances are scanned.
    pub construct: String,
    /// All predicates must hold (conjunction).
    pub predicates: Vec<(String, ValuePred)>,
}

impl InstanceQuery {
    /// Query all instances of `construct`.
    pub fn of(construct: impl Into<String>) -> Self {
        InstanceQuery { construct: construct.into(), predicates: Vec::new() }
    }

    /// Add a predicate on a connector.
    pub fn whose(mut self, connector: impl Into<String>, pred: ValuePred) -> Self {
        self.predicates.push((connector.into(), pred));
        self
    }
}

impl GenericDmi {
    /// Run an instance query. Results are in instance-handle order
    /// (deterministic per store).
    pub fn query(&self, q: &InstanceQuery) -> Vec<Instance> {
        self.instances(&q.construct)
            .into_iter()
            .filter(|i| {
                q.predicates.iter().all(|(connector, pred)| {
                    // Links count as values too: compare by target text?
                    // Text predicates look at literal values; count/absent
                    // predicates consider links as well.
                    let texts = self.texts(*i, connector);
                    match pred {
                        ValuePred::CountAtLeast(_) | ValuePred::Absent => {
                            let total = texts.len() + self.links(*i, connector).len();
                            pred.matches(&vec![String::new(); total])
                        }
                        _ => pred.matches(&texts),
                    }
                })
            })
            .collect()
    }

    /// Follow a connector path from an instance (navigational query):
    /// `follow(topic, &["relatedTo", "relatedTo"])` → topics two hops out.
    pub fn follow(&self, from: Instance, path: &[&str]) -> Vec<Instance> {
        let mut frontier = vec![from];
        for connector in path {
            let mut next = Vec::new();
            for i in &frontier {
                next.extend(self.links(*i, connector));
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        frontier
    }

    /// Convenience: the text of `connector` for every query hit.
    pub fn query_texts(&self, q: &InstanceQuery, connector: &str) -> Vec<String> {
        self.query(q).into_iter().filter_map(|i| self.text(i, connector)).collect()
    }
}

impl SlimPadDmi {
    /// Find scraps whose label contains `needle` (case-insensitive) —
    /// the pad-level "find scrap" the paper's navigational access lacks.
    /// Served by the store's literal index: only matching literals are
    /// examined, not every scrap.
    pub fn find_scraps(&self, needle: &str) -> Vec<ScrapHandle> {
        self.scraps_by_literal("scrapName", needle)
    }

    /// Find bundles whose name contains `needle` (case-insensitive).
    pub fn find_bundles(&self, needle: &str) -> Vec<BundleHandle> {
        self.bundles_by_literal("bundleName", needle)
    }

    /// Scraps annotated with text containing `needle`, found through the
    /// literal index on annotation values.
    pub fn find_annotated(&self, needle: &str) -> Vec<ScrapHandle> {
        self.scraps_by_literal("scrapAnnotation", needle)
    }

    /// The bundle that directly contains a scrap, if any. A two-pattern
    /// conjunctive join — `(?b conformsTo Bundle) ⋈ (?b bundleContent
    /// scrap)` — so the answer comes off the OSP run for the scrap, not
    /// a scan over every bundle's contents.
    pub fn containing_bundle(&self, scrap: ScrapHandle) -> Option<BundleHandle> {
        let store = self.store();
        let conf = store.find_atom(vocab::CONFORMS_TO)?;
        let bundle_c = store.find_atom(&vocab::construct_res("bundle-scrap", "Bundle"))?;
        let content = store.find_atom("bundleContent")?;
        let mut q = ConjQuery::new();
        let b = q.var("b");
        q.pattern(b, conf, bundle_c).pattern(b, content, Value::Resource(scrap.resource()));
        let rows = q.solve(store).ok()?;
        rows.first().and_then(|row| match row[0] {
            Value::Resource(a) => Some(BundleHandle::from_resource(a)),
            _ => None,
        })
    }

    /// Scraps directly contained in `bundle`, with their labels, via
    /// the membership join `(bundle bundleContent ?s) ⋈ (?s scrapName
    /// ?n)` — rows come back sorted by scrap handle.
    fn scrap_rows_in_bundle(&self, bundle: BundleHandle) -> Vec<(ScrapHandle, String)> {
        let store = self.store();
        let (Some(content), Some(name_p)) =
            (store.find_atom("bundleContent"), store.find_atom("scrapName"))
        else {
            return Vec::new();
        };
        let mut q = ConjQuery::new();
        let (s, n) = (q.var("s"), q.var("n"));
        q.pattern(bundle.resource(), content, s).pattern(s, name_p, n);
        let Ok(rows) = q.solve(store) else {
            return Vec::new();
        };
        rows.into_iter()
            .filter_map(|row| match row[0] {
                Value::Resource(a) => store
                    .value_str(row[1])
                    .map(|t| (ScrapHandle::from_resource(a), t.to_string())),
                _ => None,
            })
            .collect()
    }

    /// Scraps directly contained in `bundle`, in handle order.
    pub fn scraps_in_bundle(&self, bundle: BundleHandle) -> Vec<ScrapHandle> {
        self.scrap_rows_in_bundle(bundle).into_iter().map(|(s, _)| s).collect()
    }

    /// [`SlimPadDmi::find_scraps`] restricted to one bundle: scraps in
    /// `bundle` whose label contains `needle` (case-insensitive). The
    /// membership join narrows to the bundle's scraps first; only those
    /// labels are examined.
    pub fn find_scraps_in_bundle(&self, bundle: BundleHandle, needle: &str) -> Vec<ScrapHandle> {
        let needle = needle.to_lowercase();
        self.scrap_rows_in_bundle(bundle)
            .into_iter()
            .filter(|(_, name)| name.to_lowercase().contains(&needle))
            .map(|(s, _)| s)
            .collect()
    }

    /// The chain of bundles from the outermost ancestor down to the one
    /// directly containing `scrap` — breadcrumbs for displays.
    pub fn bundle_path(&self, scrap: ScrapHandle) -> Vec<BundleHandle> {
        let Some(mut current) = self.containing_bundle(scrap) else {
            return Vec::new();
        };
        let mut path = vec![current];
        while let Some(parent) = self
            .bundles()
            .into_iter()
            .find(|b| self.bundle(*b).map(|d| d.nested.contains(&current)).unwrap_or(false))
        {
            path.push(parent);
            current = parent;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generic::DmiValue;
    use metamodel::builtin;

    fn topic_dmi() -> GenericDmi {
        let mut dmi = GenericDmi::new(builtin::topic_map_like());
        for (name, occurrences) in
            [("Furosemide", 3usize), ("Potassium", 1), ("Captopril", 0)]
        {
            let t = dmi.create("Topic").unwrap();
            dmi.set(t, "topicName", DmiValue::Text(name.into())).unwrap();
            for i in 0..occurrences {
                dmi.set(t, "occurrence", DmiValue::Text(format!("mark:{name}-{i}"))).unwrap();
            }
        }
        dmi
    }

    #[test]
    fn equals_and_contains_predicates() {
        let dmi = topic_dmi();
        let q = InstanceQuery::of("Topic").whose("topicName", ValuePred::Equals("Potassium".into()));
        assert_eq!(dmi.query(&q).len(), 1);
        let q = InstanceQuery::of("Topic").whose("topicName", ValuePred::Contains("os".into()));
        // Furosemide and... "Potassium"? contains "os"? P-o-t-a-s-s… no.
        // Furosemide (fur-os-emide) only.
        assert_eq!(dmi.query_texts(&q, "topicName"), vec!["Furosemide"]);
        let q = InstanceQuery::of("Topic").whose("topicName", ValuePred::StartsWith("Ca".into()));
        assert_eq!(dmi.query_texts(&q, "topicName"), vec!["Captopril"]);
    }

    #[test]
    fn count_and_absent_predicates() {
        let dmi = topic_dmi();
        let q = InstanceQuery::of("Topic").whose("occurrence", ValuePred::CountAtLeast(2));
        assert_eq!(dmi.query_texts(&q, "topicName"), vec!["Furosemide"]);
        let q = InstanceQuery::of("Topic").whose("occurrence", ValuePred::Absent);
        assert_eq!(dmi.query_texts(&q, "topicName"), vec!["Captopril"]);
    }

    #[test]
    fn conjunction_narrows() {
        let dmi = topic_dmi();
        let q = InstanceQuery::of("Topic")
            .whose("topicName", ValuePred::Contains("i".into()))
            .whose("occurrence", ValuePred::CountAtLeast(1));
        let names = dmi.query_texts(&q, "topicName");
        assert_eq!(names, vec!["Furosemide", "Potassium"]);
    }

    #[test]
    fn follow_walks_link_paths() {
        let mut dmi = topic_dmi();
        let topics = dmi.instances("Topic");
        dmi.set(topics[0], "relatedTo", DmiValue::Link(topics[1])).unwrap();
        dmi.set(topics[1], "relatedTo", DmiValue::Link(topics[2])).unwrap();
        let one_hop = dmi.follow(topics[0], &["relatedTo"]);
        assert_eq!(one_hop, vec![topics[1]]);
        let two_hops = dmi.follow(topics[0], &["relatedTo", "relatedTo"]);
        assert_eq!(two_hops, vec![topics[2]]);
        assert!(dmi.follow(topics[2], &["relatedTo"]).is_empty());
    }

    #[test]
    fn unknown_construct_queries_are_empty() {
        let dmi = topic_dmi();
        assert!(dmi.query(&InstanceQuery::of("Ghost")).is_empty());
    }

    fn pad_with_scraps() -> SlimPadDmi {
        let mut dmi = SlimPadDmi::new();
        let outer = dmi.create_bundle("Ward 5", (0, 0), 1000, 800);
        let inner = dmi.create_bundle("Bed 4: John Smith", (10, 10), 400, 300);
        dmi.add_nested_bundle(outer, inner).unwrap();
        let s1 = dmi.create_scrap("Lasix 40", (20, 40), "mark:0").unwrap();
        dmi.add_scrap(inner, s1).unwrap();
        let s2 = dmi.create_scrap("K 4.1", (20, 70), "mark:1").unwrap();
        dmi.add_scrap(inner, s2).unwrap();
        dmi.add_annotation(s2, "repleting per protocol").unwrap();
        dmi
    }

    #[test]
    fn find_scraps_and_bundles_case_insensitive() {
        let dmi = pad_with_scraps();
        assert_eq!(dmi.find_scraps("lasix").len(), 1);
        assert_eq!(dmi.find_scraps("ZZZ").len(), 0);
        assert_eq!(dmi.find_bundles("bed 4").len(), 1);
        assert_eq!(dmi.find_bundles("ward").len(), 1);
    }

    #[test]
    fn find_annotated_searches_notes() {
        let dmi = pad_with_scraps();
        let hits = dmi.find_annotated("protocol");
        assert_eq!(hits.len(), 1);
        assert_eq!(dmi.scrap(hits[0]).unwrap().name, "K 4.1");
    }

    #[test]
    fn containing_bundle_and_breadcrumbs() {
        let dmi = pad_with_scraps();
        let scrap = dmi.find_scraps("Lasix").remove(0);
        let inner = dmi.containing_bundle(scrap).unwrap();
        assert_eq!(dmi.bundle(inner).unwrap().name, "Bed 4: John Smith");
        let path = dmi.bundle_path(scrap);
        let names: Vec<String> =
            path.iter().map(|b| dmi.bundle(*b).unwrap().name).collect();
        assert_eq!(names, vec!["Ward 5", "Bed 4: John Smith"]);
    }

    #[test]
    fn scraps_in_bundle_joins_membership_and_names() {
        let dmi = pad_with_scraps();
        let inner = dmi.find_bundles("Bed 4").remove(0);
        let scraps = dmi.scraps_in_bundle(inner);
        assert_eq!(scraps.len(), 2);
        assert_eq!(scraps, dmi.bundle(inner).unwrap().scraps);
        let outer = dmi.find_bundles("Ward").remove(0);
        assert!(dmi.scraps_in_bundle(outer).is_empty());
    }

    #[test]
    fn find_scraps_in_bundle_scopes_the_search() {
        let mut dmi = pad_with_scraps();
        // A same-label scrap *outside* the bundle must not appear.
        let free = dmi.create_scrap("Lasix 20", (0, 0), "mark:9").unwrap();
        let inner = dmi.find_bundles("Bed 4").remove(0);
        let hits = dmi.find_scraps_in_bundle(inner, "lasix");
        assert_eq!(hits.len(), 1);
        assert!(!hits.contains(&free));
        assert_eq!(dmi.scrap(hits[0]).unwrap().name, "Lasix 40");
        assert!(dmi.find_scraps_in_bundle(inner, "zzz").is_empty());
    }

    #[test]
    fn free_scrap_has_no_container() {
        let mut dmi = pad_with_scraps();
        let free = dmi.create_scrap("floating", (0, 0), "mark:9").unwrap();
        assert!(dmi.containing_bundle(free).is_none());
        assert!(dmi.bundle_path(free).is_empty());
    }
}
