//! The generated DMI: a model-driven manipulation interface.
//!
//! The paper closes §4.4 with: "We are working towards automatically
//! generating specialized DMIs from data models (specified in either UML
//! or as triples)." This module implements that direction. Instead of
//! emitting source code, [`GenericDmi`] *derives* the interface at
//! runtime from a [`ModelDef`]: every operation is validated against the
//! model's constructs, connectors, and cardinalities before it touches
//! the store, so any model the metamodel can express gets a safe DMI for
//! free — including models loaded from a store at runtime
//! (`decode_model`), which is "schema-later" all the way down.
//!
//! The hand-written [`crate::SlimPadDmi`] and this generic one coexist so
//! the E2 experiment can measure what the interpretive layer costs.

use crate::error::DmiError;
use metamodel::encode::encode_model;
use metamodel::vocab;
use metamodel::{Cardinality, ConformanceReport, ConstructKind, ModelDef};
use trim::{Atom, ConjQuery, TriplePattern, TripleStore, Value};

/// An instance handle minted by a [`GenericDmi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Instance(Atom);

/// A value to assign through a connector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmiValue {
    /// For literal and mark constructs.
    Text(String),
    /// For structural constructs.
    Link(Instance),
}

/// A runtime-generated DMI for an arbitrary model.
#[derive(Debug)]
pub struct GenericDmi {
    store: TripleStore,
    model: ModelDef,
}

impl GenericDmi {
    /// Derive a DMI for `model` over a fresh store.
    pub fn new(model: ModelDef) -> Self {
        let mut store = TripleStore::new();
        encode_model(&mut store, &model);
        GenericDmi { store, model }
    }

    /// Derive a DMI over an existing store (e.g. loaded from XML). The
    /// model must already be encoded in the store under `model_name`.
    pub fn over_store(store: TripleStore, model_name: &str) -> Result<Self, DmiError> {
        let model = metamodel::encode::decode_model(&store, model_name).map_err(|e| {
            DmiError::Structure { message: format!("cannot derive DMI: {e}") }
        })?;
        Ok(GenericDmi { store, model })
    }

    /// The model this DMI enforces.
    pub fn model(&self) -> &ModelDef {
        &self.model
    }

    // ---- operations ---------------------------------------------------------

    /// `Create_<Construct>()`: mint an instance of a structural construct.
    pub fn create(&mut self, construct: &str) -> Result<Instance, DmiError> {
        let def = self.model.find_construct(construct).ok_or_else(|| DmiError::NotFound {
            what: "construct",
            id: construct.to_string(),
        })?;
        if def.kind != ConstructKind::Construct {
            return Err(DmiError::Structure {
                message: format!("{construct:?} is a leaf construct; it has no instances"),
            });
        }
        let id = self.store.fresh_resource(construct);
        let c = self.store.atom(&vocab::construct_res(&self.model.name, construct));
        let type_p = self.store.atom(vocab::TYPE);
        self.store.insert(id, type_p, Value::Resource(c));
        let conf_p = self.store.atom(vocab::CONFORMS_TO);
        self.store.insert(id, conf_p, Value::Resource(c));
        Ok(Instance(id))
    }

    /// Resolve the connector an instance may use, honouring inheritance.
    fn connector_for(
        &self,
        instance: Instance,
        connector: &str,
    ) -> Result<(&metamodel::ConnectorDef, ConstructKind), DmiError> {
        let construct = self.construct_of(instance)?;
        let def = self
            .model
            .connectors_from(&construct)
            .into_iter()
            .find(|c| c.name == connector)
            .ok_or_else(|| DmiError::NoSuchConnector {
                construct: construct.clone(),
                connector: connector.to_string(),
            })?;
        let target_kind = self
            .model
            .find_construct(&def.to)
            .map(|c| c.kind)
            .unwrap_or(ConstructKind::Construct);
        Ok((def, target_kind))
    }

    /// `Update_<connector>` / `set<Connector>`: assign a value, enforcing
    /// value kind and cardinality. Single-valued connectors replace;
    /// multi-valued connectors append.
    pub fn set(
        &mut self,
        instance: Instance,
        connector: &str,
        value: DmiValue,
    ) -> Result<(), DmiError> {
        let (def, target_kind) = self.connector_for(instance, connector)?;
        let cardinality = def.cardinality;
        let target_construct = def.to.clone();
        let connector_name = def.name.clone();
        // Value-kind validation.
        let object = match (&value, target_kind) {
            (DmiValue::Text(t), ConstructKind::Literal | ConstructKind::Mark) => {
                self.store.literal_value(t)
            }
            (DmiValue::Link(target), ConstructKind::Construct) => {
                // Target typing (with generalization).
                let tc = self.construct_of(*target)?;
                if !self.assignable(&target_construct, &tc) {
                    return Err(DmiError::Structure {
                        message: format!(
                            "connector {connector_name:?} expects {target_construct:?}, got {tc:?}"
                        ),
                    });
                }
                Value::Resource(target.0)
            }
            (DmiValue::Text(_), ConstructKind::Construct) => {
                return Err(DmiError::WrongValueKind {
                    connector: connector_name,
                    expected: "link",
                })
            }
            (DmiValue::Link(_), _) => {
                return Err(DmiError::WrongValueKind {
                    connector: connector_name,
                    expected: "text",
                })
            }
        };
        let p = self.store.atom(&connector_name);
        match cardinality {
            Cardinality::One | Cardinality::OptionalOne => {
                self.store.set_unique(instance.0, p, object);
            }
            Cardinality::Many | Cardinality::OneOrMore => {
                self.store.insert(instance.0, p, object);
            }
        }
        Ok(())
    }

    /// Remove one value of a connector. Refuses to drop below a `1..`
    /// cardinality floor.
    pub fn unset(
        &mut self,
        instance: Instance,
        connector: &str,
        value: &DmiValue,
    ) -> Result<(), DmiError> {
        let (def, _) = self.connector_for(instance, connector)?;
        let cardinality = def.cardinality;
        let connector_name = def.name.clone();
        let p = self.store.atom(&connector_name);
        let current =
            self.store.count(&TriplePattern::default().with_subject(instance.0).with_property(p));
        if !cardinality.admits(current.saturating_sub(1)) {
            return Err(DmiError::Cardinality {
                message: format!(
                    "removing a value would leave {} values for {connector_name:?} ({} required)",
                    current.saturating_sub(1),
                    cardinality
                ),
            });
        }
        let object = match value {
            DmiValue::Text(t) => self.store.literal_value(t),
            DmiValue::Link(i) => Value::Resource(i.0),
        };
        let removed =
            self.store.remove(trim::Triple { subject: instance.0, property: p, object });
        if !removed {
            return Err(DmiError::Structure { message: "value not present".into() });
        }
        Ok(())
    }

    /// Delete an instance: its triples and incoming instance links.
    pub fn delete(&mut self, instance: Instance) -> Result<(), DmiError> {
        self.construct_of(instance)?; // must be live
        self.store.remove_matching(&TriplePattern::default().with_subject(instance.0));
        let incoming: Vec<trim::Triple> = self
            .store
            .select(&TriplePattern::default().with_object(Value::Resource(instance.0)))
            .into_iter()
            .filter(|t| {
                let s = self.store.resolve(t.subject);
                !s.starts_with("construct:")
                    && !s.starts_with("connector:")
                    && !s.starts_with("model:")
            })
            .collect();
        for t in incoming {
            self.store.remove(t);
        }
        Ok(())
    }

    // ---- reads ---------------------------------------------------------------

    /// The construct an instance conforms to.
    pub fn construct_of(&self, instance: Instance) -> Result<String, DmiError> {
        let conf_p = self.store.find_atom(vocab::CONFORMS_TO).ok_or(DmiError::NotFound {
            what: "instance",
            id: String::new(),
        })?;
        let prefix = format!("{}:{}.", vocab::prefix::CONSTRUCT, self.model.name);
        match self.store.object_of(instance.0, conf_p) {
            Some(Value::Resource(c)) => self
                .store
                .resolve(c)
                .strip_prefix(&prefix)
                .map(str::to_string)
                .ok_or_else(|| DmiError::NotFound {
                    what: "instance",
                    id: self.store.resolve(instance.0).to_string(),
                }),
            _ => Err(DmiError::NotFound {
                what: "instance",
                id: self.store.resolve(instance.0).to_string(),
            }),
        }
    }

    fn assignable(&self, target: &str, candidate: &str) -> bool {
        if target == candidate {
            return true;
        }
        let mut frontier = vec![candidate.to_string()];
        while let Some(cur) = frontier.pop() {
            for conn in self.model.connectors() {
                if conn.kind == metamodel::ConnectorKind::Generalization && conn.from == cur {
                    if conn.to == target {
                        return true;
                    }
                    frontier.push(conn.to.clone());
                }
            }
        }
        false
    }

    /// Text values of a connector, sorted.
    pub fn texts(&self, instance: Instance, connector: &str) -> Vec<String> {
        let Some(p) = self.store.find_atom(connector) else {
            return Vec::new();
        };
        let mut out: Vec<String> = self
            .store
            .select(&TriplePattern::default().with_subject(instance.0).with_property(p))
            .into_iter()
            .filter_map(|t| self.store.value_str(t.object).map(str::to_string))
            .collect();
        out.sort();
        out
    }

    /// The single text value of a connector, if present.
    pub fn text(&self, instance: Instance, connector: &str) -> Option<String> {
        self.texts(instance, connector).into_iter().next()
    }

    /// Link values of a connector, sorted by handle.
    pub fn links(&self, instance: Instance, connector: &str) -> Vec<Instance> {
        let Some(p) = self.store.find_atom(connector) else {
            return Vec::new();
        };
        let mut out: Vec<Instance> = self
            .store
            .select(&TriplePattern::default().with_subject(instance.0).with_property(p))
            .into_iter()
            .filter_map(|t| match t.object {
                Value::Resource(a) => Some(Instance(a)),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// All instances of a construct.
    pub fn instances(&self, construct: &str) -> Vec<Instance> {
        let Some(conf_p) = self.store.find_atom(vocab::CONFORMS_TO) else {
            return Vec::new();
        };
        let Some(c) =
            self.store.find_atom(&vocab::construct_res(&self.model.name, construct))
        else {
            return Vec::new();
        };
        let mut out: Vec<Instance> = self
            .store
            .select(&TriplePattern::default().with_property(conf_p).with_object(Value::Resource(c)))
            .into_iter()
            .map(|t| Instance(t.subject))
            .collect();
        out.sort_unstable();
        out
    }

    /// Instances of `construct` carrying exactly `text` on `connector`
    /// — the term-lookup every concordance-style index needs. Answered
    /// by a two-pattern conjunctive join on the triple engine,
    /// `(?i conformsTo C) ⋈ (?i connector "text")`, instead of scanning
    /// every instance of the construct.
    pub fn instances_with_text(
        &self,
        construct: &str,
        connector: &str,
        text: &str,
    ) -> Vec<Instance> {
        let (Some(conf_p), Some(c), Some(p), Some(lit)) = (
            self.store.find_atom(vocab::CONFORMS_TO),
            self.store.find_atom(&vocab::construct_res(&self.model.name, construct)),
            self.store.find_atom(connector),
            self.store.find_atom(text),
        ) else {
            return Vec::new();
        };
        let mut q = ConjQuery::new();
        let i = q.var("i");
        q.pattern(i, conf_p, c).pattern(i, p, Value::Literal(lit));
        let Ok(rows) = q.solve(&self.store) else {
            return Vec::new();
        };
        rows.into_iter()
            .filter_map(|row| match row[0] {
                Value::Resource(a) => Some(Instance(a)),
                _ => None,
            })
            .collect()
    }

    // ---- persistence and checking ---------------------------------------------

    /// The underlying store (read-only).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Serialize store (model + instances) to XML.
    pub fn save_xml(&self) -> String {
        self.store.to_xml()
    }

    /// Load a store and derive the DMI from its encoded model.
    pub fn load_xml(text: &str, model_name: &str) -> Result<Self, DmiError> {
        let store = TripleStore::from_xml(text)?;
        Self::over_store(store, model_name)
    }

    /// Conformance-check the instance data against the model.
    pub fn check(&self) -> ConformanceReport {
        metamodel::check_conformance(&self.store, &self.model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamodel::builtin;

    fn topic_dmi() -> GenericDmi {
        GenericDmi::new(builtin::topic_map_like())
    }

    #[test]
    fn create_set_read_roundtrip() {
        let mut dmi = topic_dmi();
        let t = dmi.create("Topic").unwrap();
        dmi.set(t, "topicName", DmiValue::Text("Furosemide".into())).unwrap();
        dmi.set(t, "occurrence", DmiValue::Text("mark:3".into())).unwrap();
        assert_eq!(dmi.text(t, "topicName").as_deref(), Some("Furosemide"));
        assert_eq!(dmi.texts(t, "occurrence"), vec!["mark:3"]);
        assert_eq!(dmi.instances("Topic"), vec![t]);
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn leaf_constructs_cannot_be_instantiated() {
        let mut dmi = topic_dmi();
        assert!(matches!(dmi.create("String"), Err(DmiError::Structure { .. })));
        assert!(matches!(dmi.create("Occurrence"), Err(DmiError::Structure { .. })));
        assert!(matches!(dmi.create("Ghost"), Err(DmiError::NotFound { .. })));
    }

    #[test]
    fn unknown_connectors_rejected() {
        let mut dmi = topic_dmi();
        let t = dmi.create("Topic").unwrap();
        assert!(matches!(
            dmi.set(t, "flavor", DmiValue::Text("x".into())),
            Err(DmiError::NoSuchConnector { .. })
        ));
    }

    #[test]
    fn value_kind_enforced() {
        let mut dmi = topic_dmi();
        let t1 = dmi.create("Topic").unwrap();
        let t2 = dmi.create("Topic").unwrap();
        // topicName expects text, not a link.
        assert!(matches!(
            dmi.set(t1, "topicName", DmiValue::Link(t2)),
            Err(DmiError::WrongValueKind { .. })
        ));
        // relatedTo expects a link, not text.
        assert!(matches!(
            dmi.set(t1, "relatedTo", DmiValue::Text("x".into())),
            Err(DmiError::WrongValueKind { .. })
        ));
        dmi.set(t1, "relatedTo", DmiValue::Link(t2)).unwrap();
        assert_eq!(dmi.links(t1, "relatedTo"), vec![t2]);
    }

    #[test]
    fn link_target_typing_enforced() {
        let mut dmi = topic_dmi();
        let assoc = dmi.create("Association").unwrap();
        let topic = dmi.create("Topic").unwrap();
        dmi.set(assoc, "member", DmiValue::Link(topic)).unwrap();
        // member expects a Topic, not an Association.
        let assoc2 = dmi.create("Association").unwrap();
        assert!(matches!(
            dmi.set(assoc, "member", DmiValue::Link(assoc2)),
            Err(DmiError::Structure { .. })
        ));
    }

    #[test]
    fn single_valued_connectors_replace() {
        let mut dmi = GenericDmi::new(builtin::relational_like());
        let table = dmi.create("Table").unwrap();
        dmi.set(table, "tableName", DmiValue::Text("meds".into())).unwrap();
        dmi.set(table, "tableName", DmiValue::Text("medications".into())).unwrap();
        assert_eq!(dmi.texts(table, "tableName"), vec!["medications"]);
    }

    #[test]
    fn multi_valued_connectors_append() {
        let mut dmi = topic_dmi();
        let t = dmi.create("Topic").unwrap();
        dmi.set(t, "topicName", DmiValue::Text("Lasix".into())).unwrap();
        dmi.set(t, "topicName", DmiValue::Text("Furosemide".into())).unwrap();
        assert_eq!(dmi.texts(t, "topicName"), vec!["Furosemide", "Lasix"]);
    }

    #[test]
    fn unset_respects_cardinality_floor() {
        let mut dmi = topic_dmi();
        let t = dmi.create("Topic").unwrap();
        dmi.set(t, "topicName", DmiValue::Text("only".into())).unwrap();
        // topicName is 1..*: removing the only name is refused.
        assert!(matches!(
            dmi.unset(t, "topicName", &DmiValue::Text("only".into())),
            Err(DmiError::Cardinality { .. })
        ));
        dmi.set(t, "topicName", DmiValue::Text("second".into())).unwrap();
        dmi.unset(t, "topicName", &DmiValue::Text("only".into())).unwrap();
        assert_eq!(dmi.texts(t, "topicName"), vec!["second"]);
        // Removing a value that is not there errors.
        assert!(matches!(
            dmi.unset(t, "occurrence", &DmiValue::Text("mark:9".into())),
            Err(DmiError::Structure { .. })
        ));
    }

    #[test]
    fn generalization_accepted_in_links() {
        let mut dmi = GenericDmi::new(builtin::xlink_like());
        let ext = dmi.create("ExtendedLink").unwrap();
        // ExtendedLink inherits Link's connectors.
        dmi.set(ext, "linkTitle", DmiValue::Text("see also".into())).unwrap();
        dmi.set(ext, "locator", DmiValue::Text("mark:0".into())).unwrap();
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn delete_cleans_incoming_links() {
        let mut dmi = topic_dmi();
        let a = dmi.create("Topic").unwrap();
        let b = dmi.create("Topic").unwrap();
        dmi.set(a, "topicName", DmiValue::Text("a".into())).unwrap();
        dmi.set(b, "topicName", DmiValue::Text("b".into())).unwrap();
        dmi.set(a, "relatedTo", DmiValue::Link(b)).unwrap();
        dmi.delete(b).unwrap();
        assert!(dmi.links(a, "relatedTo").is_empty());
        assert!(dmi.construct_of(b).is_err());
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn xml_roundtrip_rederives_the_dmi() {
        let mut dmi = topic_dmi();
        let t = dmi.create("Topic").unwrap();
        dmi.set(t, "topicName", DmiValue::Text("Potassium".into())).unwrap();
        let xml = dmi.save_xml();
        let dmi2 = GenericDmi::load_xml(&xml, "topic-map").unwrap();
        let topics = dmi2.instances("Topic");
        assert_eq!(topics.len(), 1);
        assert_eq!(dmi2.text(topics[0], "topicName").as_deref(), Some("Potassium"));
        assert_eq!(dmi2.model().name, "topic-map");
        // Loading under a wrong model name fails cleanly.
        assert!(GenericDmi::load_xml(&xml, "bundle-scrap").is_err());
    }

    #[test]
    fn generic_dmi_can_drive_the_bundle_scrap_model_too() {
        // The same model the hand-written DMI serves: proof the generated
        // DMI subsumes it functionally.
        let mut dmi = GenericDmi::new(builtin::bundle_scrap());
        let pad = dmi.create("SlimPad").unwrap();
        dmi.set(pad, "padName", DmiValue::Text("Rounds".into())).unwrap();
        let bundle = dmi.create("Bundle").unwrap();
        dmi.set(bundle, "bundleName", DmiValue::Text("John Smith".into())).unwrap();
        dmi.set(bundle, "bundlePos", DmiValue::Text("10,10".into())).unwrap();
        dmi.set(bundle, "bundleWidth", DmiValue::Text("400".into())).unwrap();
        dmi.set(bundle, "bundleHeight", DmiValue::Text("300".into())).unwrap();
        dmi.set(pad, "rootBundle", DmiValue::Link(bundle)).unwrap();
        let scrap = dmi.create("Scrap").unwrap();
        dmi.set(scrap, "scrapName", DmiValue::Text("Lasix 40".into())).unwrap();
        dmi.set(scrap, "scrapPos", DmiValue::Text("20,40".into())).unwrap();
        let handle = dmi.create("MarkHandle").unwrap();
        dmi.set(handle, "markId", DmiValue::Text("mark:0".into())).unwrap();
        dmi.set(scrap, "scrapMark", DmiValue::Link(handle)).unwrap();
        dmi.set(bundle, "bundleContent", DmiValue::Link(scrap)).unwrap();
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }
}
