//! The hand-written SLIMPad DMI of paper Figure 10.
//!
//! "When SLIMPad needs to create a Bundle, it calls the Create_Bundle
//! operation in the DMI, which creates a Bundle object for SLIMPad plus
//! the triples to represent a new Bundle. By restricting manipulation of
//! data through the DMI, we store the triples without intervention from
//! the superimposed application." (paper §4.4)
//!
//! Handles ([`PadHandle`], [`BundleHandle`], …) are the paper's
//! "read-only objects that represent the Bundle-Scrap model": the
//! application can hold and pass them but can only mutate through DMI
//! operations, which is what lets the DMI "guarantee consistency between
//! the triple representation and the application data".
//!
//! Structural rules enforced here (from Figure 3's cardinalities):
//! * every scrap carries at least one mark handle (`scrapMark 1..*`);
//! * a scrap belongs to at most one bundle, a bundle nests in at most one
//!   parent (the `0..1` ends of `bundleContent`/`nestedBundle`);
//! * bundle nesting is acyclic.
//!
//! Multi-triple operations are atomic: on any failure the store is rolled
//! back to the operation's starting revision via TRIM's change journal.

use crate::error::DmiError;
use metamodel::builtin;
use metamodel::encode::encode_model;
use metamodel::vocab;
use metamodel::ConformanceReport;
use slimio::{Recovered, Vfs};
use std::path::Path;
use trim::{Atom, ConjQuery, LogReport, StoreLog, TriplePattern, TripleStore, Value};

/// Handle to a SlimPad object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PadHandle(Atom);

/// Handle to a Bundle object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BundleHandle(Atom);

/// Handle to a Scrap object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScrapHandle(Atom);

/// Handle to a MarkHandle object (the indirection of Figure 3: a scrap's
/// mark handle carries a mark id resolved by the Mark Manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MarkHandleHandle(Atom);

macro_rules! impl_resource_accessor {
    ($ty:ty) => {
        impl $ty {
            /// The underlying store resource — for callers that drop to
            /// the triple level (views, ad-hoc queries).
            pub fn resource(self) -> Atom {
                self.0
            }
        }
    };
}

impl_resource_accessor!(PadHandle);
impl_resource_accessor!(BundleHandle);
impl_resource_accessor!(ScrapHandle);
impl_resource_accessor!(MarkHandleHandle);

macro_rules! impl_resource_constructor {
    ($ty:ty) => {
        impl $ty {
            /// Rewrap a store resource returned by a triple-level query
            /// (e.g. a conjunctive-join binding) as a typed handle.
            pub(crate) fn from_resource(atom: Atom) -> Self {
                Self(atom)
            }
        }
    };
}

impl_resource_constructor!(BundleHandle);
impl_resource_constructor!(ScrapHandle);

/// Read-only snapshot of a pad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PadData {
    pub name: String,
    pub root_bundle: Option<BundleHandle>,
}

/// Read-only snapshot of a bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleData {
    pub name: String,
    pub pos: (i64, i64),
    pub width: i64,
    pub height: i64,
    /// Contained scraps, in handle order (stable per store).
    pub scraps: Vec<ScrapHandle>,
    /// Nested bundles, in handle order.
    pub nested: Vec<BundleHandle>,
}

/// Read-only snapshot of a scrap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapData {
    pub name: String,
    pub pos: (i64, i64),
    pub marks: Vec<MarkHandleHandle>,
}

/// Read-only snapshot of a mark handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarkHandleData {
    pub mark_id: String,
}

/// The SLIMPad Data Manipulation Interface (paper Figure 10's
/// `SlimPadDMI`, `store : TrimManager`).
#[derive(Debug)]
pub struct SlimPadDmi {
    store: TripleStore,
}

impl Default for SlimPadDmi {
    fn default() -> Self {
        Self::new()
    }
}

/// Encode `(x, y)` as the Coordinate literal `"x,y"`.
fn coord_text(pos: (i64, i64)) -> String {
    format!("{},{}", pos.0, pos.1)
}

/// Decode a Coordinate literal.
fn parse_coord(text: &str) -> Option<(i64, i64)> {
    let (x, y) = text.split_once(',')?;
    Some((x.trim().parse().ok()?, y.trim().parse().ok()?))
}

impl SlimPadDmi {
    /// A fresh DMI over an empty store (with the Bundle-Scrap model
    /// encoded into it, so the store is self-describing).
    pub fn new() -> Self {
        let mut store = TripleStore::new();
        encode_model(&mut store, &builtin::bundle_scrap());
        SlimPadDmi { store }
    }

    // ---- small internal helpers -------------------------------------------

    fn construct_atom(&mut self, construct: &str) -> Atom {
        self.store.atom(&vocab::construct_res("bundle-scrap", construct))
    }

    fn create_instance(&mut self, construct: &str) -> Atom {
        let id = self.store.fresh_resource(construct);
        let c = self.construct_atom(construct);
        let type_p = self.store.atom(vocab::TYPE);
        let conf_p = self.store.atom(vocab::CONFORMS_TO);
        self.store.insert_all([
            trim::Triple { subject: id, property: type_p, object: Value::Resource(c) },
            trim::Triple { subject: id, property: conf_p, object: Value::Resource(c) },
        ]);
        id
    }

    fn is_instance_of(&self, id: Atom, construct: &str) -> bool {
        let Some(conf_p) = self.store.find_atom(vocab::CONFORMS_TO) else {
            return false;
        };
        let Some(c) = self.store.find_atom(&vocab::construct_res("bundle-scrap", construct))
        else {
            return false;
        };
        self.store.object_of(id, conf_p) == Some(Value::Resource(c))
    }

    fn require(&self, id: Atom, construct: &str, what: &'static str) -> Result<(), DmiError> {
        if self.is_instance_of(id, construct) {
            Ok(())
        } else {
            Err(DmiError::NotFound { what, id: self.store.resolve(id).to_string() })
        }
    }

    fn set_literal(&mut self, subject: Atom, property: &str, value: &str) {
        let p = self.store.atom(property);
        let v = self.store.literal_value(value);
        self.store.set_unique(subject, p, v);
    }

    fn literal_of(&self, subject: Atom, property: &str) -> Option<String> {
        let p = self.store.find_atom(property)?;
        self.store.object_of(subject, p).and_then(|v| self.store.value_str(v).map(str::to_string))
    }

    fn links_of(&self, subject: Atom, property: &str) -> Vec<Atom> {
        let Some(p) = self.store.find_atom(property) else {
            return Vec::new();
        };
        let mut out: Vec<Atom> = self
            .store
            .select(&TriplePattern::default().with_subject(subject).with_property(p))
            .into_iter()
            .filter_map(|t| match t.object {
                Value::Resource(a) => Some(a),
                Value::Literal(_) => None,
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn incoming_links(&self, target: Atom, property: &str) -> Vec<Atom> {
        let Some(p) = self.store.find_atom(property) else {
            return Vec::new();
        };
        let mut out: Vec<Atom> = self
            .store
            .select(
                &TriplePattern::default().with_property(p).with_object(Value::Resource(target)),
            )
            .into_iter()
            .map(|t| t.subject)
            .collect();
        out.sort_unstable();
        out
    }

    // ---- Create_* (Figure 10) ---------------------------------------------

    /// `Create_SlimPad(padName, rootBundle)` — the root bundle may be
    /// attached now or later (`rootBundle` is `0..1`).
    pub fn create_slim_pad(
        &mut self,
        pad_name: &str,
        root_bundle: Option<BundleHandle>,
    ) -> Result<PadHandle, DmiError> {
        if let Some(b) = root_bundle {
            self.require(b.0, "Bundle", "Bundle")?;
        }
        let id = self.create_instance("SlimPad");
        self.set_literal(id, "padName", pad_name);
        if let Some(b) = root_bundle {
            let p = self.store.atom("rootBundle");
            self.store.insert(id, p, Value::Resource(b.0));
        }
        Ok(PadHandle(id))
    }

    /// `Create_Bundle(bundleName, bundlePos, bundleWidth, bundleHeight)`.
    pub fn create_bundle(
        &mut self,
        name: &str,
        pos: (i64, i64),
        width: i64,
        height: i64,
    ) -> BundleHandle {
        let id = self.create_instance("Bundle");
        self.set_literal(id, "bundleName", name);
        self.set_literal(id, "bundlePos", &coord_text(pos));
        self.set_literal(id, "bundleWidth", &width.to_string());
        self.set_literal(id, "bundleHeight", &height.to_string());
        BundleHandle(id)
    }

    /// `Create_Scrap(scrapName, scrapPos, markId)` — Figure 3 requires at
    /// least one mark handle per scrap, so creation takes the first mark
    /// id and builds the `MarkHandle` object behind it.
    pub fn create_scrap(
        &mut self,
        name: &str,
        pos: (i64, i64),
        mark_id: &str,
    ) -> Result<ScrapHandle, DmiError> {
        let id = self.create_instance("Scrap");
        self.set_literal(id, "scrapName", name);
        self.set_literal(id, "scrapPos", &coord_text(pos));
        let handle = self.create_mark_handle(mark_id);
        let p = self.store.atom("scrapMark");
        self.store.insert(id, p, Value::Resource(handle.0));
        Ok(ScrapHandle(id))
    }

    /// `Create_MarkHandle(markId)`.
    pub fn create_mark_handle(&mut self, mark_id: &str) -> MarkHandleHandle {
        let id = self.create_instance("MarkHandle");
        self.set_literal(id, "markId", mark_id);
        MarkHandleHandle(id)
    }

    // ---- Update_* (Figure 10) ---------------------------------------------

    /// `Update_padName(SlimPad, newPadName)`.
    pub fn update_pad_name(&mut self, pad: PadHandle, new_name: &str) -> Result<(), DmiError> {
        self.require(pad.0, "SlimPad", "SlimPad")?;
        self.set_literal(pad.0, "padName", new_name);
        Ok(())
    }

    /// `Update_rootBundle(SlimPad, newRootBundle)`.
    pub fn update_root_bundle(
        &mut self,
        pad: PadHandle,
        new_root: Option<BundleHandle>,
    ) -> Result<(), DmiError> {
        self.require(pad.0, "SlimPad", "SlimPad")?;
        if let Some(b) = new_root {
            self.require(b.0, "Bundle", "Bundle")?;
        }
        let p = self.store.atom("rootBundle");
        self.store.remove_matching(&TriplePattern::default().with_subject(pad.0).with_property(p));
        if let Some(b) = new_root {
            self.store.insert(pad.0, p, Value::Resource(b.0));
        }
        Ok(())
    }

    /// `Update_bundleName(Bundle, newName)`.
    pub fn update_bundle_name(&mut self, b: BundleHandle, name: &str) -> Result<(), DmiError> {
        self.require(b.0, "Bundle", "Bundle")?;
        self.set_literal(b.0, "bundleName", name);
        Ok(())
    }

    /// `Update_bundlePos(Bundle, newPos)` — moving a bundle is the
    /// paper's core 2-D manipulation.
    pub fn update_bundle_pos(&mut self, b: BundleHandle, pos: (i64, i64)) -> Result<(), DmiError> {
        self.require(b.0, "Bundle", "Bundle")?;
        self.set_literal(b.0, "bundlePos", &coord_text(pos));
        Ok(())
    }

    /// `Update_bundleWidth/Height(Bundle, …)` — resize.
    pub fn update_bundle_size(
        &mut self,
        b: BundleHandle,
        width: i64,
        height: i64,
    ) -> Result<(), DmiError> {
        self.require(b.0, "Bundle", "Bundle")?;
        self.set_literal(b.0, "bundleWidth", &width.to_string());
        self.set_literal(b.0, "bundleHeight", &height.to_string());
        Ok(())
    }

    /// `Update_scrapName(Scrap, newName)` — "a scrap that can be named
    /// and moved around".
    pub fn update_scrap_name(&mut self, s: ScrapHandle, name: &str) -> Result<(), DmiError> {
        self.require(s.0, "Scrap", "Scrap")?;
        self.set_literal(s.0, "scrapName", name);
        Ok(())
    }

    /// `Update_scrapPos(Scrap, newPos)`.
    pub fn update_scrap_pos(&mut self, s: ScrapHandle, pos: (i64, i64)) -> Result<(), DmiError> {
        self.require(s.0, "Scrap", "Scrap")?;
        self.set_literal(s.0, "scrapPos", &coord_text(pos));
        Ok(())
    }

    // ---- containment -------------------------------------------------------

    /// `addNestedBundle(parent, child)` (Figure 10's setter list).
    /// Enforces single-parent and acyclicity.
    pub fn add_nested_bundle(
        &mut self,
        parent: BundleHandle,
        child: BundleHandle,
    ) -> Result<(), DmiError> {
        self.require(parent.0, "Bundle", "Bundle")?;
        self.require(child.0, "Bundle", "Bundle")?;
        if parent == child {
            return Err(DmiError::Structure { message: "a bundle cannot nest inside itself".into() });
        }
        if !self.incoming_links(child.0, "nestedBundle").is_empty() {
            return Err(DmiError::Structure {
                message: "bundle already nests in another bundle".into(),
            });
        }
        // Acyclicity: parent must not be reachable from child.
        let reachable = self.store.view(child.0);
        if reachable.resources.contains(&parent.0) {
            return Err(DmiError::Structure {
                message: "nesting would create a bundle cycle".into(),
            });
        }
        let p = self.store.atom("nestedBundle");
        self.store.insert(parent.0, p, Value::Resource(child.0));
        Ok(())
    }

    /// Detach a nested bundle from its parent (it becomes free-floating).
    pub fn remove_nested_bundle(
        &mut self,
        parent: BundleHandle,
        child: BundleHandle,
    ) -> Result<(), DmiError> {
        self.require(parent.0, "Bundle", "Bundle")?;
        let p = self.store.atom("nestedBundle");
        let removed = self.store.remove(trim::Triple {
            subject: parent.0,
            property: p,
            object: Value::Resource(child.0),
        });
        if !removed {
            return Err(DmiError::Structure { message: "bundle is not nested there".into() });
        }
        Ok(())
    }

    /// Place a scrap into a bundle. A scrap lives in at most one bundle.
    pub fn add_scrap(&mut self, bundle: BundleHandle, scrap: ScrapHandle) -> Result<(), DmiError> {
        self.require(bundle.0, "Bundle", "Bundle")?;
        self.require(scrap.0, "Scrap", "Scrap")?;
        if !self.incoming_links(scrap.0, "bundleContent").is_empty() {
            return Err(DmiError::Structure {
                message: "scrap already belongs to a bundle".into(),
            });
        }
        let p = self.store.atom("bundleContent");
        self.store.insert(bundle.0, p, Value::Resource(scrap.0));
        Ok(())
    }

    /// Take a scrap out of a bundle (it becomes free-floating).
    pub fn remove_scrap(
        &mut self,
        bundle: BundleHandle,
        scrap: ScrapHandle,
    ) -> Result<(), DmiError> {
        self.require(bundle.0, "Bundle", "Bundle")?;
        let p = self.store.atom("bundleContent");
        let removed = self.store.remove(trim::Triple {
            subject: bundle.0,
            property: p,
            object: Value::Resource(scrap.0),
        });
        if !removed {
            return Err(DmiError::Structure { message: "scrap is not in that bundle".into() });
        }
        Ok(())
    }

    /// `setScrapMark` extension: attach an additional mark handle to a
    /// scrap (the §6 "multiple marks per scrap" extension; Figure 3
    /// already allows `1..*`).
    pub fn add_scrap_mark(
        &mut self,
        scrap: ScrapHandle,
        handle: MarkHandleHandle,
    ) -> Result<(), DmiError> {
        self.require(scrap.0, "Scrap", "Scrap")?;
        self.require(handle.0, "MarkHandle", "MarkHandle")?;
        let p = self.store.atom("scrapMark");
        self.store.insert(scrap.0, p, Value::Resource(handle.0));
        Ok(())
    }

    /// Detach a mark handle; refuses to remove a scrap's last mark
    /// (`scrapMark` is `1..*`). The handle object itself is deleted.
    pub fn remove_scrap_mark(
        &mut self,
        scrap: ScrapHandle,
        handle: MarkHandleHandle,
    ) -> Result<(), DmiError> {
        self.require(scrap.0, "Scrap", "Scrap")?;
        let marks = self.links_of(scrap.0, "scrapMark");
        if !marks.contains(&handle.0) {
            return Err(DmiError::Structure { message: "mark handle not on that scrap".into() });
        }
        if marks.len() == 1 {
            return Err(DmiError::Cardinality {
                message: "a scrap must keep at least one mark (scrapMark 1..*)".into(),
            });
        }
        let p = self.store.atom("scrapMark");
        self.store.remove(trim::Triple {
            subject: scrap.0,
            property: p,
            object: Value::Resource(handle.0),
        });
        self.delete_subject(handle.0);
        Ok(())
    }

    // ---- §6 extensions: annotations and scrap links --------------------------

    /// Attach an annotation to a scrap ("initial feedback from clinicians
    /// indicates annotations on scraps would be useful", paper §5).
    pub fn add_annotation(&mut self, scrap: ScrapHandle, text: &str) -> Result<(), DmiError> {
        self.require(scrap.0, "Scrap", "Scrap")?;
        let p = self.store.atom("scrapAnnotation");
        let v = self.store.literal_value(text);
        self.store.insert(scrap.0, p, v);
        Ok(())
    }

    /// A scrap's annotations, sorted.
    pub fn annotations(&self, scrap: ScrapHandle) -> Result<Vec<String>, DmiError> {
        self.require(scrap.0, "Scrap", "Scrap")?;
        let Some(p) = self.store.find_atom("scrapAnnotation") else {
            return Ok(Vec::new());
        };
        let mut out: Vec<String> = self
            .store
            .select(&TriplePattern::default().with_subject(scrap.0).with_property(p))
            .into_iter()
            .filter_map(|t| self.store.value_str(t.object).map(str::to_string))
            .collect();
        out.sort();
        Ok(out)
    }

    /// Remove one annotation; errors if it is not present.
    pub fn remove_annotation(&mut self, scrap: ScrapHandle, text: &str) -> Result<(), DmiError> {
        self.require(scrap.0, "Scrap", "Scrap")?;
        let p = self.store.atom("scrapAnnotation");
        let v = self.store.literal_value(text);
        if !self.store.remove(trim::Triple { subject: scrap.0, property: p, object: v }) {
            return Err(DmiError::Structure { message: "annotation not present".into() });
        }
        Ok(())
    }

    /// Link two scraps ("explicit links between scraps", paper §3/§6).
    /// Links are directed; self-links are rejected.
    pub fn link_scraps(&mut self, from: ScrapHandle, to: ScrapHandle) -> Result<(), DmiError> {
        self.require(from.0, "Scrap", "Scrap")?;
        self.require(to.0, "Scrap", "Scrap")?;
        if from == to {
            return Err(DmiError::Structure { message: "a scrap cannot link to itself".into() });
        }
        let p = self.store.atom("scrapLink");
        self.store.insert(from.0, p, Value::Resource(to.0));
        Ok(())
    }

    /// Outgoing scrap links, sorted.
    pub fn scrap_links(&self, from: ScrapHandle) -> Result<Vec<ScrapHandle>, DmiError> {
        self.require(from.0, "Scrap", "Scrap")?;
        Ok(self.links_of(from.0, "scrapLink").into_iter().map(ScrapHandle).collect())
    }

    /// Remove a link; errors if it is not present.
    pub fn unlink_scraps(&mut self, from: ScrapHandle, to: ScrapHandle) -> Result<(), DmiError> {
        self.require(from.0, "Scrap", "Scrap")?;
        let p = self.store.atom("scrapLink");
        if !self.store.remove(trim::Triple {
            subject: from.0,
            property: p,
            object: Value::Resource(to.0),
        }) {
            return Err(DmiError::Structure { message: "scraps are not linked".into() });
        }
        Ok(())
    }

    // ---- Delete_* (Figure 10) ----------------------------------------------

    fn delete_subject(&mut self, id: Atom) {
        self.store.remove_matching(&TriplePattern::default().with_subject(id));
    }

    fn delete_incoming(&mut self, id: Atom) {
        let incoming: Vec<trim::Triple> = self
            .store
            .select(&TriplePattern::default().with_object(Value::Resource(id)))
            .into_iter()
            // Keep the model encoding intact: only instance-level triples
            // reference instance resources, but be safe and never touch
            // triples whose subject is a model element.
            .filter(|t| {
                let s = self.store.resolve(t.subject);
                !s.starts_with("construct:") && !s.starts_with("connector:") && !s.starts_with("model:")
            })
            .collect();
        self.store.remove_all(incoming);
    }

    /// `Delete_SlimPad(SlimPad)` — deletes the pad object only; its
    /// bundle tree survives (pads are views over bundles).
    pub fn delete_slim_pad(&mut self, pad: PadHandle) -> Result<(), DmiError> {
        self.require(pad.0, "SlimPad", "SlimPad")?;
        self.delete_incoming(pad.0);
        self.delete_subject(pad.0);
        Ok(())
    }

    /// `Delete_Bundle(Bundle)` — recursive: contained scraps and nested
    /// bundles go with it, and references from parents/pads are cleaned.
    pub fn delete_bundle(&mut self, bundle: BundleHandle) -> Result<(), DmiError> {
        self.require(bundle.0, "Bundle", "Bundle")?;
        for scrap in self.links_of(bundle.0, "bundleContent") {
            self.delete_scrap(ScrapHandle(scrap))?;
        }
        for nested in self.links_of(bundle.0, "nestedBundle") {
            self.delete_bundle(BundleHandle(nested))?;
        }
        self.delete_incoming(bundle.0);
        self.delete_subject(bundle.0);
        Ok(())
    }

    /// `Delete_Scrap(Scrap)` — removes the scrap, its mark handles, and
    /// its containment edge.
    pub fn delete_scrap(&mut self, scrap: ScrapHandle) -> Result<(), DmiError> {
        self.require(scrap.0, "Scrap", "Scrap")?;
        for handle in self.links_of(scrap.0, "scrapMark") {
            self.delete_subject(handle);
        }
        self.delete_incoming(scrap.0);
        self.delete_subject(scrap.0);
        Ok(())
    }

    // ---- reads (the application-data interfaces) ----------------------------

    /// Snapshot a pad.
    pub fn pad(&self, pad: PadHandle) -> Result<PadData, DmiError> {
        self.require(pad.0, "SlimPad", "SlimPad")?;
        Ok(PadData {
            name: self.literal_of(pad.0, "padName").unwrap_or_default(),
            root_bundle: self.links_of(pad.0, "rootBundle").first().copied().map(BundleHandle),
        })
    }

    /// Snapshot a bundle.
    pub fn bundle(&self, b: BundleHandle) -> Result<BundleData, DmiError> {
        self.require(b.0, "Bundle", "Bundle")?;
        Ok(BundleData {
            name: self.literal_of(b.0, "bundleName").unwrap_or_default(),
            pos: self
                .literal_of(b.0, "bundlePos")
                .and_then(|t| parse_coord(&t))
                .unwrap_or((0, 0)),
            width: self
                .literal_of(b.0, "bundleWidth")
                .and_then(|t| t.parse().ok())
                .unwrap_or(0),
            height: self
                .literal_of(b.0, "bundleHeight")
                .and_then(|t| t.parse().ok())
                .unwrap_or(0),
            scraps: self.links_of(b.0, "bundleContent").into_iter().map(ScrapHandle).collect(),
            nested: self.links_of(b.0, "nestedBundle").into_iter().map(BundleHandle).collect(),
        })
    }

    /// Snapshot a scrap.
    pub fn scrap(&self, s: ScrapHandle) -> Result<ScrapData, DmiError> {
        self.require(s.0, "Scrap", "Scrap")?;
        Ok(ScrapData {
            name: self.literal_of(s.0, "scrapName").unwrap_or_default(),
            pos: self
                .literal_of(s.0, "scrapPos")
                .and_then(|t| parse_coord(&t))
                .unwrap_or((0, 0)),
            marks: self.links_of(s.0, "scrapMark").into_iter().map(MarkHandleHandle).collect(),
        })
    }

    /// Snapshot a mark handle.
    pub fn mark_handle(&self, h: MarkHandleHandle) -> Result<MarkHandleData, DmiError> {
        self.require(h.0, "MarkHandle", "MarkHandle")?;
        Ok(MarkHandleData { mark_id: self.literal_of(h.0, "markId").unwrap_or_default() })
    }

    /// All pads in the store.
    pub fn pads(&self) -> Vec<PadHandle> {
        self.instances_of("SlimPad").into_iter().map(PadHandle).collect()
    }

    /// All bundles in the store.
    pub fn bundles(&self) -> Vec<BundleHandle> {
        self.instances_of("Bundle").into_iter().map(BundleHandle).collect()
    }

    /// All scraps in the store, contained or free-floating.
    pub fn all_scraps(&self) -> Vec<ScrapHandle> {
        self.instances_of("Scrap").into_iter().map(ScrapHandle).collect()
    }

    fn instances_of(&self, construct: &str) -> Vec<Atom> {
        let Some(conf_p) = self.store.find_atom(vocab::CONFORMS_TO) else {
            return Vec::new();
        };
        let Some(c) = self.store.find_atom(&vocab::construct_res("bundle-scrap", construct))
        else {
            return Vec::new();
        };
        let mut out: Vec<Atom> = self
            .store
            .select(&TriplePattern::default().with_property(conf_p).with_object(Value::Resource(c)))
            .into_iter()
            .map(|t| t.subject)
            .collect();
        out.sort_unstable();
        out
    }

    /// Population counts `(bundles, scraps)` answered by the
    /// conjunctive engine. A bundle is exactly an instance that
    /// conforms to `Bundle` and carries a `bundleName` (creation sets
    /// one, updates replace it), and likewise for scraps, so the
    /// 2-pattern joins count the same sets as [`Self::bundles`] and
    /// [`Self::all_scraps`] — but through the planner/merge-join path,
    /// keeping service-level inspection an end-to-end probe of that
    /// engine.
    pub fn population_by_join(&self) -> (usize, usize) {
        (self.count_named("Bundle", "bundleName"), self.count_named("Scrap", "scrapName"))
    }

    fn count_named(&self, construct: &str, name_prop: &str) -> usize {
        let (Some(conf_p), Some(c), Some(p)) = (
            self.store.find_atom(vocab::CONFORMS_TO),
            self.store.find_atom(&vocab::construct_res("bundle-scrap", construct)),
            self.store.find_atom(name_prop),
        ) else {
            return 0;
        };
        let mut q = ConjQuery::new();
        let x = q.var("x");
        let n = q.var("n");
        q.pattern(x, conf_p, c).pattern(x, p, n);
        q.solve(&self.store).map(|rows| rows.len()).unwrap_or(0)
    }

    /// Subjects whose `property` literal contains `needle`
    /// (case-insensitive), answered by the store's literal index instead
    /// of a scan over every instance. Sorted by atom and deduplicated —
    /// the same order `instances_of` produces.
    fn subjects_with_literal(&self, property: &str, needle: &str) -> Vec<Atom> {
        let Some(p) = self.store.find_atom(property) else {
            return Vec::new();
        };
        let mut out: Vec<Atom> = self
            .store
            .find_literals(needle)
            .into_iter()
            .filter(|t| t.property == p)
            .map(|t| t.subject)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Scrap handles matched through the literal index (handle
    /// construction lives here, where the handle internals are visible).
    pub(crate) fn scraps_by_literal(&self, property: &str, needle: &str) -> Vec<ScrapHandle> {
        self.subjects_with_literal(property, needle).into_iter().map(ScrapHandle).collect()
    }

    /// Bundle handles matched through the literal index.
    pub(crate) fn bundles_by_literal(&self, property: &str, needle: &str) -> Vec<BundleHandle> {
        self.subjects_with_literal(property, needle).into_iter().map(BundleHandle).collect()
    }

    // ---- persistence and inspection (Figure 10: save/load) ------------------

    /// `save(fileName)` — persist the whole store (model + instances)
    /// through TRIM's XML format. Durable: the file is checksummed and
    /// installed atomically, so a crash mid-save leaves the previous
    /// version intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DmiError> {
        self.store.save(path)?;
        Ok(())
    }

    /// [`save`](SlimPadDmi::save) through an explicit [`Vfs`] backend.
    pub fn save_to(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), DmiError> {
        self.store.save_to(vfs, path)?;
        Ok(())
    }

    /// The XML text `save` would write.
    pub fn save_xml(&self) -> String {
        self.store.to_xml()
    }

    /// `load(fileName) : SlimPad` — load a store and return the DMI plus
    /// the pads found inside. Strict: refuses files that fail their
    /// integrity check (see [`SlimPadDmi::load_salvage`]).
    pub fn load(path: impl AsRef<Path>) -> Result<(Self, Vec<PadHandle>), DmiError> {
        let store = TripleStore::load(path)?;
        let dmi = SlimPadDmi { store };
        let pads = dmi.pads();
        Ok((dmi, pads))
    }

    /// [`load`](SlimPadDmi::load) through an explicit [`Vfs`] backend.
    pub fn load_from(vfs: &dyn Vfs, path: &Path) -> Result<(Self, Vec<PadHandle>), DmiError> {
        let store = TripleStore::load_from(vfs, path)?;
        let dmi = SlimPadDmi { store };
        let pads = dmi.pads();
        Ok((dmi, pads))
    }

    /// `load` from XML text.
    pub fn load_xml(text: &str) -> Result<(Self, Vec<PadHandle>), DmiError> {
        let store = TripleStore::from_xml(text)?;
        let dmi = SlimPadDmi { store };
        let pads = dmi.pads();
        Ok((dmi, pads))
    }

    // ---- logged persistence (write-ahead log commit path) -------------------

    /// Open a DMI with the write-ahead log as its commit path: snapshot
    /// plus log replay, recovering to the last committed batch (see
    /// [`trim::TripleStore::open_logged`]). Returns the DMI, the pads
    /// found inside, the attached log, and the recovery report.
    pub fn open_logged(
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<(Self, Vec<PadHandle>, StoreLog, LogReport), DmiError> {
        let (store, log, report) = TripleStore::open_logged(vfs, path)?;
        let dmi = SlimPadDmi { store };
        let pads = dmi.pads();
        Ok((dmi, pads, log, report))
    }

    /// Attach a [`StoreLog`] to this DMI's store, replaying any committed
    /// frames the log holds. For callers (like the pad session) that load
    /// the snapshot through their own combined format and need the log
    /// wired to the embedded store afterwards.
    pub fn attach_log(
        &mut self,
        vfs: &dyn Vfs,
        snapshot_path: &Path,
    ) -> Result<(StoreLog, LogReport), DmiError> {
        Ok(StoreLog::attach(vfs, snapshot_path, &mut self.store)?)
    }

    /// [`attach_log`](SlimPadDmi::attach_log) with tail-frame CRC checks
    /// disabled — only for the slimcheck mutation harness.
    #[doc(hidden)]
    pub fn testonly_attach_log_skip_tail_crc(
        &mut self,
        vfs: &dyn Vfs,
        snapshot_path: &Path,
    ) -> Result<(StoreLog, LogReport), DmiError> {
        Ok(StoreLog::testonly_attach_skip_tail_crc(vfs, snapshot_path, &mut self.store)?)
    }

    /// Group-commit every change since the last commit to the log: one
    /// frame, one sync. See [`trim::CommitOutcome`] — in particular,
    /// `NeedsFullSnapshot` means nothing was persisted and the caller
    /// must [`compact_log_with`](SlimPadDmi::compact_log_with).
    pub fn commit_log(
        &mut self,
        vfs: &dyn Vfs,
        log: &mut StoreLog,
    ) -> Result<trim::CommitOutcome, DmiError> {
        Ok(log.commit(vfs, &mut self.store)?)
    }

    /// [`commit_log`](SlimPadDmi::commit_log) with sidecar aux records
    /// (e.g. the pad's mark-store XML) riding in the same frame.
    pub fn commit_log_with_aux(
        &mut self,
        vfs: &dyn Vfs,
        log: &mut StoreLog,
        aux: &[(&str, &[u8])],
    ) -> Result<trim::CommitOutcome, DmiError> {
        Ok(log.commit_with_aux(vfs, &mut self.store, aux)?)
    }

    /// Truncate any unacknowledged log suffix a failed commit may have
    /// left on disk (see [`StoreLog::repair`]) so a refused batch can
    /// never be adopted by a later cold reopen.
    pub fn repair_log(&self, vfs: &dyn Vfs, log: &mut StoreLog) -> Result<(), DmiError> {
        Ok(log.repair(vfs)?)
    }

    /// Fold the log into a fresh snapshot of the store's own XML and
    /// reset it. Use [`compact_log_with`](SlimPadDmi::compact_log_with)
    /// when the snapshot file embeds the store in a larger document.
    pub fn compact_log(
        &mut self,
        vfs: &dyn Vfs,
        log: &mut StoreLog,
    ) -> Result<(), DmiError> {
        Ok(log.compact(vfs, &mut self.store)?)
    }

    /// Fold the log into a caller-provided snapshot payload and reset it.
    pub fn compact_log_with(
        &mut self,
        vfs: &dyn Vfs,
        log: &mut StoreLog,
        payload: &str,
    ) -> Result<(), DmiError> {
        Ok(log.compact_with(vfs, &mut self.store, payload)?)
    }

    /// Salvage a store from a damaged file: every triple in the longest
    /// valid prefix is kept. Pads whose triples survive are returned;
    /// scraps that lost their containment or mark triples simply don't
    /// appear in the respective queries — degraded, not fatal.
    pub fn load_salvage(
        path: impl AsRef<Path>,
    ) -> Result<Recovered<(Self, Vec<PadHandle>)>, DmiError> {
        Self::load_salvage_from(&slimio::StdVfs, path.as_ref())
    }

    /// [`load_salvage`](SlimPadDmi::load_salvage) through an explicit
    /// [`Vfs`] backend.
    pub fn load_salvage_from(
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<Recovered<(Self, Vec<PadHandle>)>, DmiError> {
        let recovered = TripleStore::load_salvage_from(vfs, path)?;
        Ok(recovered.map(|store| {
            let dmi = SlimPadDmi { store };
            let pads = dmi.pads();
            (dmi, pads)
        }))
    }

    /// Salvage from XML text (see [`SlimPadDmi::load_salvage`]).
    pub fn load_xml_salvage(text: &str) -> Result<Recovered<(Self, Vec<PadHandle>)>, DmiError> {
        let recovered = TripleStore::from_xml_salvage(text)?;
        Ok(recovered.map(|store| {
            let dmi = SlimPadDmi { store };
            let pads = dmi.pads();
            (dmi, pads)
        }))
    }

    /// Read access to the underlying triples (the paper's point is that
    /// applications *can* see the generic representation, they just
    /// shouldn't have to).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Take a checkpoint of the data state (the TRIM journal revision).
    pub fn checkpoint(&self) -> trim::Revision {
        self.store.revision()
    }

    /// Roll the data back to a checkpoint taken with
    /// [`SlimPadDmi::checkpoint`]: the undo mechanism DMI compound
    /// operations and the application's Edit→Undo both ride on.
    ///
    /// Handles minted after the checkpoint dangle afterwards (they report
    /// [`DmiError::NotFound`] like any deleted object's handles).
    pub fn rollback(&mut self, to: trim::Revision) -> Result<(), DmiError> {
        self.store.undo_to(to)?;
        Ok(())
    }

    /// Run the metamodel conformance checker over the store — the DMI's
    /// consistency guarantee, made checkable.
    pub fn check(&self) -> ConformanceReport {
        metamodel::check_conformance(&self.store, &builtin::bundle_scrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the Figure 4 pad: 'Rounds' with a 'John Smith' bundle
    /// holding two medication scraps and a nested 'Electrolyte' bundle.
    fn rounds_pad() -> (SlimPadDmi, PadHandle, BundleHandle, BundleHandle) {
        let mut dmi = SlimPadDmi::new();
        let john = dmi.create_bundle("John Smith", (10, 10), 400, 300);
        let pad = dmi.create_slim_pad("Rounds", Some(john)).unwrap();
        let lasix = dmi.create_scrap("Lasix 40 IV bid", (20, 40), "mark:0").unwrap();
        let captopril = dmi.create_scrap("Captopril 12.5", (20, 70), "mark:1").unwrap();
        dmi.add_scrap(john, lasix).unwrap();
        dmi.add_scrap(john, captopril).unwrap();
        let electro = dmi.create_bundle("Electrolyte", (200, 60), 180, 160);
        dmi.add_nested_bundle(john, electro).unwrap();
        for (i, (name, pos)) in
            [("Na 140", (210, 80)), ("K 4.1", (210, 110)), ("Cl 102", (290, 80))]
                .iter()
                .enumerate()
        {
            let s = dmi.create_scrap(name, *pos, &format!("mark:{}", i + 2)).unwrap();
            dmi.add_scrap(electro, s).unwrap();
        }
        (dmi, pad, john, electro)
    }

    #[test]
    fn figure4_pad_is_conformant() {
        let (dmi, pad, john, electro) = rounds_pad();
        let report = dmi.check();
        assert!(report.is_conformant(), "{:?}", report.violations);
        assert_eq!(dmi.pad(pad).unwrap().name, "Rounds");
        assert_eq!(dmi.pad(pad).unwrap().root_bundle, Some(john));
        let jb = dmi.bundle(john).unwrap();
        assert_eq!(jb.scraps.len(), 2);
        assert_eq!(jb.nested, vec![electro]);
        assert_eq!(dmi.bundle(electro).unwrap().scraps.len(), 3);
    }

    #[test]
    fn scrap_snapshot_includes_mark_ids() {
        let (dmi, _, john, _) = rounds_pad();
        let scraps = dmi.bundle(john).unwrap().scraps;
        let data = dmi.scrap(scraps[0]).unwrap();
        assert_eq!(data.marks.len(), 1);
        let mh = dmi.mark_handle(data.marks[0]).unwrap();
        assert!(mh.mark_id.starts_with("mark:"), "{}", mh.mark_id);
    }

    #[test]
    fn updates_change_snapshots() {
        let (mut dmi, pad, john, _) = rounds_pad();
        dmi.update_pad_name(pad, "Weekend Rounds").unwrap();
        assert_eq!(dmi.pad(pad).unwrap().name, "Weekend Rounds");
        dmi.update_bundle_pos(john, (50, 60)).unwrap();
        dmi.update_bundle_size(john, 500, 400).unwrap();
        let b = dmi.bundle(john).unwrap();
        assert_eq!((b.pos, b.width, b.height), ((50, 60), 500, 400));
        let scrap = b.scraps[0];
        dmi.update_scrap_name(scrap, "Lasix 80 IV bid").unwrap();
        dmi.update_scrap_pos(scrap, (25, 45)).unwrap();
        let s = dmi.scrap(scrap).unwrap();
        assert_eq!((s.name.as_str(), s.pos), ("Lasix 80 IV bid", (25, 45)));
    }

    #[test]
    fn single_parent_rules_enforced() {
        let (mut dmi, _, john, electro) = rounds_pad();
        let other = dmi.create_bundle("Other", (0, 0), 10, 10);
        // electro already nests in john.
        assert!(matches!(
            dmi.add_nested_bundle(other, electro),
            Err(DmiError::Structure { .. })
        ));
        let scrap = dmi.bundle(john).unwrap().scraps[0];
        assert!(matches!(dmi.add_scrap(other, scrap), Err(DmiError::Structure { .. })));
    }

    #[test]
    fn nesting_cycles_rejected() {
        let (mut dmi, _, john, electro) = rounds_pad();
        assert!(matches!(dmi.add_nested_bundle(john, john), Err(DmiError::Structure { .. })));
        assert!(matches!(
            dmi.add_nested_bundle(electro, john),
            Err(DmiError::Structure { .. })
        ));
    }

    #[test]
    fn remove_then_renest_elsewhere() {
        let (mut dmi, _, john, electro) = rounds_pad();
        dmi.remove_nested_bundle(john, electro).unwrap();
        let other = dmi.create_bundle("Other", (0, 0), 10, 10);
        dmi.add_nested_bundle(other, electro).unwrap();
        assert_eq!(dmi.bundle(other).unwrap().nested, vec![electro]);
        assert!(dmi.bundle(john).unwrap().nested.is_empty());
    }

    #[test]
    fn last_mark_cannot_be_removed() {
        let (mut dmi, _, john, _) = rounds_pad();
        let scrap = dmi.bundle(john).unwrap().scraps[0];
        let marks = dmi.scrap(scrap).unwrap().marks;
        assert!(matches!(
            dmi.remove_scrap_mark(scrap, marks[0]),
            Err(DmiError::Cardinality { .. })
        ));
        // With a second mark attached, removal works.
        let extra = dmi.create_mark_handle("mark:99");
        dmi.add_scrap_mark(scrap, extra).unwrap();
        dmi.remove_scrap_mark(scrap, marks[0]).unwrap();
        let after = dmi.scrap(scrap).unwrap().marks;
        assert_eq!(after, vec![extra]);
        assert!(dmi.check().is_conformant());
    }

    #[test]
    fn delete_scrap_cleans_marks_and_containment() {
        let (mut dmi, _, john, _) = rounds_pad();
        let before = dmi.store().len();
        let scrap = dmi.bundle(john).unwrap().scraps[0];
        let mark = dmi.scrap(scrap).unwrap().marks[0];
        dmi.delete_scrap(scrap).unwrap();
        assert!(dmi.scrap(scrap).is_err());
        assert!(dmi.mark_handle(mark).is_err());
        assert_eq!(dmi.bundle(john).unwrap().scraps.len(), 1);
        assert!(dmi.store().len() < before);
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn delete_bundle_is_recursive() {
        let (mut dmi, pad, john, electro) = rounds_pad();
        dmi.delete_bundle(john).unwrap();
        assert!(dmi.bundle(john).is_err());
        assert!(dmi.bundle(electro).is_err(), "nested bundle deleted too");
        assert_eq!(dmi.pad(pad).unwrap().root_bundle, None, "pad reference cleaned");
        // Only the pad instance remains.
        assert_eq!(dmi.bundles().len(), 0);
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn delete_pad_leaves_bundles() {
        let (mut dmi, pad, john, _) = rounds_pad();
        dmi.delete_slim_pad(pad).unwrap();
        assert!(dmi.pad(pad).is_err());
        assert!(dmi.bundle(john).is_ok(), "bundles outlive pads");
    }

    #[test]
    fn save_load_roundtrip_preserves_object_graph() {
        let (dmi, pad, _, _) = rounds_pad();
        let xml = dmi.save_xml();
        let (dmi2, pads) = SlimPadDmi::load_xml(&xml).unwrap();
        assert_eq!(pads.len(), 1);
        let orig = dmi.pad(pad).unwrap();
        let loaded = dmi2.pad(pads[0]).unwrap();
        assert_eq!(orig.name, loaded.name);
        let root1 = dmi.bundle(orig.root_bundle.unwrap()).unwrap();
        let root2 = dmi2.bundle(loaded.root_bundle.unwrap()).unwrap();
        assert_eq!(root1.name, root2.name);
        assert_eq!(root1.scraps.len(), root2.scraps.len());
        assert_eq!(root1.nested.len(), root2.nested.len());
        // Deep compare scrap names.
        let names = |d: &SlimPadDmi, b: &BundleData| -> Vec<String> {
            let mut v: Vec<String> =
                b.scraps.iter().map(|s| d.scrap(*s).unwrap().name).collect();
            v.sort();
            v
        };
        assert_eq!(names(&dmi, &root1), names(&dmi2, &root2));
        assert!(dmi2.check().is_conformant());
    }

    #[test]
    fn save_load_via_files() {
        let dir = std::env::temp_dir().join("slimpad-dmi-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pad.xml");
        let (dmi, _, _, _) = rounds_pad();
        dmi.save(&path).unwrap();
        let (dmi2, pads) = SlimPadDmi::load(&path).unwrap();
        assert_eq!(pads.len(), 1);
        assert_eq!(dmi2.pad(pads[0]).unwrap().name, "Rounds");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_handles_error_cleanly() {
        let (mut dmi, _, john, _) = rounds_pad();
        dmi.delete_bundle(john).unwrap();
        assert!(matches!(
            dmi.update_bundle_name(john, "ghost"),
            Err(DmiError::NotFound { .. })
        ));
        assert!(matches!(dmi.bundle(john), Err(DmiError::NotFound { .. })));
    }

    #[test]
    fn handles_of_wrong_type_rejected() {
        let (mut dmi, pad, john, _) = rounds_pad();
        // Forge a bundle handle from a pad atom via the public API only:
        // delete the bundle and reuse its handle — already covered; here
        // check a pad handle is not a bundle.
        assert!(dmi.pad(pad).is_ok());
        let fake = BundleHandle(pad.0);
        assert!(matches!(dmi.bundle(fake), Err(DmiError::NotFound { .. })));
        let fake_scrap = ScrapHandle(john.0);
        assert!(matches!(dmi.update_scrap_name(fake_scrap, "x"), Err(DmiError::NotFound { .. })));
    }

    #[test]
    fn annotations_roundtrip_and_stay_conformant() {
        let (mut dmi, _, john, _) = rounds_pad();
        let scrap = dmi.bundle(john).unwrap().scraps[0];
        dmi.add_annotation(scrap, "check K before dosing").unwrap();
        dmi.add_annotation(scrap, "renal dosing reviewed").unwrap();
        assert_eq!(
            dmi.annotations(scrap).unwrap(),
            vec!["check K before dosing", "renal dosing reviewed"]
        );
        dmi.remove_annotation(scrap, "renal dosing reviewed").unwrap();
        assert_eq!(dmi.annotations(scrap).unwrap().len(), 1);
        assert!(matches!(
            dmi.remove_annotation(scrap, "never added"),
            Err(DmiError::Structure { .. })
        ));
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn scrap_links_roundtrip_and_stay_conformant() {
        let (mut dmi, _, john, electro) = rounds_pad();
        let med = dmi.bundle(john).unwrap().scraps[0];
        let k = dmi.bundle(electro).unwrap().scraps[0];
        dmi.link_scraps(med, k).unwrap();
        assert_eq!(dmi.scrap_links(med).unwrap(), vec![k]);
        assert!(dmi.scrap_links(k).unwrap().is_empty(), "links are directed");
        assert!(matches!(dmi.link_scraps(med, med), Err(DmiError::Structure { .. })));
        dmi.unlink_scraps(med, k).unwrap();
        assert!(matches!(dmi.unlink_scraps(med, k), Err(DmiError::Structure { .. })));
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn deleting_link_target_cleans_links() {
        let (mut dmi, _, john, electro) = rounds_pad();
        let med = dmi.bundle(john).unwrap().scraps[0];
        let k = dmi.bundle(electro).unwrap().scraps[0];
        dmi.link_scraps(med, k).unwrap();
        dmi.delete_scrap(k).unwrap();
        assert!(dmi.scrap_links(med).unwrap().is_empty());
        assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
    }

    #[test]
    fn coord_roundtrip() {
        for pos in [(0, 0), (-5, 17), (1000, -2000)] {
            assert_eq!(parse_coord(&coord_text(pos)), Some(pos));
        }
        assert_eq!(parse_coord("nope"), None);
        assert_eq!(parse_coord("1,b"), None);
    }

    #[test]
    fn checkpoint_rollback_is_user_undo() {
        let (mut dmi, _, john, _) = rounds_pad();
        let before_xml = dmi.save_xml();
        let cp = dmi.checkpoint();
        // A burst of edits...
        let extra = dmi.create_scrap("mistake", (0, 0), "mark:66").unwrap();
        dmi.add_scrap(john, extra).unwrap();
        dmi.update_bundle_name(john, "Wrong Patient").unwrap();
        assert_ne!(dmi.save_xml(), before_xml);
        // ...undone in one step.
        dmi.rollback(cp).unwrap();
        assert_eq!(dmi.save_xml(), before_xml);
        assert!(dmi.scrap(extra).is_err(), "post-checkpoint handles dangle");
        assert_eq!(dmi.bundle(john).unwrap().name, "John Smith");
        assert!(dmi.check().is_conformant());
    }

    #[test]
    fn triples_per_object_is_small_and_stable() {
        // E1 sanity: a scrap costs a bounded number of triples —
        // 4 for the scrap (type, conformsTo, name, pos) + 3 for its mark
        // handle (type, conformsTo, markId) + 1 scrapMark edge + 1
        // containment edge = 9.
        let (mut dmi, _, john, _) = rounds_pad();
        let before = dmi.store().len();
        let s = dmi.create_scrap("HCO3 26", (300, 120), "mark:77").unwrap();
        dmi.add_scrap(john, s).unwrap();
        assert_eq!(dmi.store().len() - before, 9);
    }
}
