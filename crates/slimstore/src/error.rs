//! Error type for DMI operations.

use std::fmt;

/// Errors surfaced by Data Manipulation Interfaces.
#[derive(Debug)]
pub enum DmiError {
    /// A handle does not name a live object of the expected construct.
    NotFound { what: &'static str, id: String },
    /// A connector/attribute name the construct does not declare.
    NoSuchConnector { construct: String, connector: String },
    /// A value of the wrong kind for a connector (literal vs link).
    WrongValueKind { connector: String, expected: &'static str },
    /// An operation would violate the model's cardinality (e.g. deleting
    /// the last mark handle of a scrap).
    Cardinality { message: String },
    /// A structural rule violation (e.g. nesting a bundle inside itself).
    Structure { message: String },
    /// An underlying TRIM failure (persistence, undo).
    Store(trim::TrimError),
}

impl fmt::Display for DmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmiError::NotFound { what, id } => write!(f, "no live {what} with id {id:?}"),
            DmiError::NoSuchConnector { construct, connector } => {
                write!(f, "construct {construct:?} has no connector {connector:?}")
            }
            DmiError::WrongValueKind { connector, expected } => {
                write!(f, "connector {connector:?} takes {expected} values")
            }
            DmiError::Cardinality { message } => write!(f, "cardinality violation: {message}"),
            DmiError::Structure { message } => write!(f, "structural violation: {message}"),
            DmiError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for DmiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmiError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<trim::TrimError> for DmiError {
    fn from(e: trim::TrimError) -> Self {
        DmiError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(DmiError::NotFound { what: "Bundle", id: "b:9".into() }
            .to_string()
            .contains("b:9"));
        assert!(DmiError::NoSuchConnector {
            construct: "Scrap".into(),
            connector: "wings".into()
        }
        .to_string()
        .contains("wings"));
        assert!(DmiError::Cardinality { message: "last mark".into() }
            .to_string()
            .contains("last mark"));
    }
}
