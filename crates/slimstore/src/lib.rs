//! `slimstore` — the SLIM Store: superimposed-information management.
//!
//! This crate is the middle box of paper Figure 9:
//!
//! ```text
//! Superimposed Application
//!         │  application data (read-only objects) + DMI operations
//! ┌───────▼────────────────────────────────────────────┐
//! │  Application-Specific Data Manipulation Interface  │
//! │        │ creates and manages                       │
//! │  ┌─────▼──────┐      ┌──────────────────────────┐  │
//! │  │ TripleMgr  │─────▶│ Generic Repr. (Triples)  │  │
//! │  └────────────┘      └──────────────────────────┘  │
//! └────────────────────────────────────────────────────┘
//! ```
//!
//! "Although superimposed applications can use the generic representation
//! directly … that would significantly complicate the development of a
//! superimposed application. We describe an approach that lets an
//! application manipulate data in its desired format, while storing the
//! data using our generic representation." (paper §4.4)
//!
//! Two DMIs are provided:
//!
//! * [`SlimPadDmi`] — the hand-written DMI of paper Figure 10, with the
//!   paper's exact operation surface (`Create_SlimPad`, `Create_Bundle`,
//!   `Update_padName`, `Delete_Bundle`, `save`, `load`, …, in Rust
//!   casing) over the Bundle-Scrap model. "For SLIMPad, we generated the
//!   application data structures and DMI manually, based on the
//!   application model."
//! * [`GenericDmi`] — the paper's stated direction, implemented: "We are
//!   working towards automatically generating specialized DMIs from data
//!   models." Given any [`metamodel::ModelDef`], it derives a DMI at
//!   runtime — create/set/get/delete operations validated against the
//!   model's constructs, connectors, and cardinalities — so *every* model
//!   the metamodel can describe gets a safe manipulation interface for
//!   free.
//!
//! Both DMIs guarantee the paper's consistency property: "Only the
//! interfaces are presented to SLIMPad, which allows the DMI to guarantee
//! consistency between the triple representation and the application
//! data." Failed multi-triple operations roll back through TRIM's change
//! journal.

pub mod error;
pub mod generic;
pub mod query;
pub mod slimpad_dmi;

pub use error::DmiError;
pub use generic::GenericDmi;
pub use query::{InstanceQuery, ValuePred};
pub use slimpad_dmi::{
    BundleData, BundleHandle, MarkHandleData, MarkHandleHandle, PadData, PadHandle, ScrapData,
    ScrapHandle, SlimPadDmi,
};
