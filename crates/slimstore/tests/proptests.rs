//! Property tests for the DMI layer: arbitrary operation sequences must
//! keep the store conformant to the Bundle-Scrap model, persistence must
//! round-trip the object graph, and the generated DMI must enforce the
//! model under arbitrary inputs.

use proptest::prelude::*;
use slimstore::{BundleHandle, ScrapHandle, SlimPadDmi};

/// The operations a fuzzer-user can perform on a pad.
#[derive(Debug, Clone)]
enum Op {
    CreateBundle { name_idx: usize, pos: (i64, i64) },
    CreateScrap { name_idx: usize, pos: (i64, i64) },
    AddScrapToBundle { scrap: usize, bundle: usize },
    NestBundle { parent: usize, child: usize },
    MoveScrap { scrap: usize, pos: (i64, i64) },
    RenameBundle { bundle: usize, name_idx: usize },
    Annotate { scrap: usize, name_idx: usize },
    LinkScraps { from: usize, to: usize },
    DeleteScrap { scrap: usize },
    DeleteBundle { bundle: usize },
}

const NAMES: &[&str] = &["John Smith", "Electrolyte", "K 4.1", "to-do", "Na⁺ 140", ""];

fn op_strategy() -> impl Strategy<Value = Op> {
    fn coord() -> (std::ops::Range<i64>, std::ops::Range<i64>) { (-100i64..500, -100i64..500) }
    prop_oneof![
        (0..NAMES.len(), coord()).prop_map(|(name_idx, pos)| Op::CreateBundle { name_idx, pos }),
        (0..NAMES.len(), coord()).prop_map(|(name_idx, pos)| Op::CreateScrap { name_idx, pos }),
        (0usize..8, 0usize..8).prop_map(|(scrap, bundle)| Op::AddScrapToBundle { scrap, bundle }),
        (0usize..8, 0usize..8).prop_map(|(parent, child)| Op::NestBundle { parent, child }),
        (0usize..8, coord()).prop_map(|(scrap, pos)| Op::MoveScrap { scrap, pos }),
        (0usize..8, 0..NAMES.len()).prop_map(|(bundle, name_idx)| Op::RenameBundle { bundle, name_idx }),
        (0usize..8, 0..NAMES.len()).prop_map(|(scrap, name_idx)| Op::Annotate { scrap, name_idx }),
        (0usize..8, 0usize..8).prop_map(|(from, to)| Op::LinkScraps { from, to }),
        (0usize..8).prop_map(|scrap| Op::DeleteScrap { scrap }),
        (0usize..8).prop_map(|bundle| Op::DeleteBundle { bundle }),
    ]
}

/// Apply ops, ignoring rejections (the DMI is allowed to say no — the
/// property is that whatever it *accepts* leaves the store conformant).
fn apply_ops(ops: &[Op]) -> SlimPadDmi {
    let mut dmi = SlimPadDmi::new();
    let mut bundles: Vec<BundleHandle> = Vec::new();
    let mut scraps: Vec<ScrapHandle> = Vec::new();
    let mut mark_counter = 0usize;
    for op in ops {
        match op {
            Op::CreateBundle { name_idx, pos } => {
                bundles.push(dmi.create_bundle(NAMES[*name_idx], *pos, 100, 80));
            }
            Op::CreateScrap { name_idx, pos } => {
                let mark = format!("mark:{mark_counter}");
                mark_counter += 1;
                if let Ok(s) = dmi.create_scrap(NAMES[*name_idx], *pos, &mark) {
                    scraps.push(s);
                }
            }
            Op::AddScrapToBundle { scrap, bundle } => {
                if let (Some(s), Some(b)) = (scraps.get(*scrap), bundles.get(*bundle)) {
                    let _ = dmi.add_scrap(*b, *s);
                }
            }
            Op::NestBundle { parent, child } => {
                if let (Some(p), Some(c)) = (bundles.get(*parent), bundles.get(*child)) {
                    let _ = dmi.add_nested_bundle(*p, *c);
                }
            }
            Op::MoveScrap { scrap, pos } => {
                if let Some(s) = scraps.get(*scrap) {
                    let _ = dmi.update_scrap_pos(*s, *pos);
                }
            }
            Op::RenameBundle { bundle, name_idx } => {
                if let Some(b) = bundles.get(*bundle) {
                    let _ = dmi.update_bundle_name(*b, NAMES[*name_idx]);
                }
            }
            Op::Annotate { scrap, name_idx } => {
                if let Some(s) = scraps.get(*scrap) {
                    let _ = dmi.add_annotation(*s, NAMES[*name_idx]);
                }
            }
            Op::LinkScraps { from, to } => {
                if let (Some(f), Some(t)) = (scraps.get(*from), scraps.get(*to)) {
                    let _ = dmi.link_scraps(*f, *t);
                }
            }
            Op::DeleteScrap { scrap } => {
                if *scrap < scraps.len() {
                    let s = scraps.remove(*scrap);
                    let _ = dmi.delete_scrap(s);
                }
            }
            Op::DeleteBundle { bundle } => {
                if *bundle < bundles.len() {
                    let b = bundles.remove(*bundle);
                    // Deleting a bundle deletes contained scraps; drop any
                    // handles that died with it.
                    let _ = dmi.delete_bundle(b);
                    scraps.retain(|s| dmi.scrap(*s).is_ok());
                    bundles.retain(|b| dmi.bundle(*b).is_ok());
                }
            }
        }
    }
    dmi
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the DMI accepts, the store conforms to the model.
    #[test]
    fn random_sessions_stay_conformant(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let dmi = apply_ops(&ops);
        let report = dmi.check();
        prop_assert!(report.is_conformant(), "{:?}", report.violations);
        dmi.store().check_invariants();
    }

    /// Save → load → save is byte-stable, and the reloaded store is
    /// conformant with the same object counts.
    #[test]
    fn random_sessions_roundtrip(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let dmi = apply_ops(&ops);
        let xml = dmi.save_xml();
        let (dmi2, _) = SlimPadDmi::load_xml(&xml).unwrap();
        prop_assert_eq!(dmi2.save_xml(), xml);
        prop_assert!(dmi2.check().is_conformant());
        prop_assert_eq!(dmi2.bundles().len(), dmi.bundles().len());
        prop_assert_eq!(dmi2.all_scraps().len(), dmi.all_scraps().len());
    }

    /// Bundle nesting never forms a cycle, whatever sequence is tried.
    #[test]
    fn nesting_is_always_acyclic(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let dmi = apply_ops(&ops);
        for b in dmi.bundles() {
            // Walk down from b; we must never revisit b.
            let mut stack = dmi.bundle(b).unwrap().nested;
            let mut steps = 0;
            while let Some(next) = stack.pop() {
                prop_assert_ne!(next, b, "cycle through {:?}", b);
                stack.extend(dmi.bundle(next).unwrap().nested);
                steps += 1;
                prop_assert!(steps < 10_000, "runaway nesting walk");
            }
        }
    }

    /// Every live scrap keeps >= 1 mark handle (Figure 3: scrapMark 1..*).
    #[test]
    fn scraps_always_keep_a_mark(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let dmi = apply_ops(&ops);
        for s in dmi.all_scraps() {
            prop_assert!(!dmi.scrap(s).unwrap().marks.is_empty());
        }
    }
}
