//! Property tests for xmlkit: serialization round-trips and path
//! canonicality over randomly generated documents.

use proptest::prelude::*;
use xmlkit::{parse, Document, Element, XPath};

/// Strategy for XML names: short, legal, biased toward collisions so the
/// ordinal logic in XPath gets exercised.
fn name_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("a".to_string()),
        Just("b".to_string()),
        Just("scrap".to_string()),
        Just("ns:x".to_string()),
        "[a-z][a-z0-9_.-]{0,6}".prop_map(|s| s),
    ]
}

/// Arbitrary text content, including XML-special characters.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~αβ]{0,12}").unwrap()
}

fn attr_value_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,10}").unwrap()
}

/// Recursively generated element trees.
fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), text_strategy()).prop_map(|(name, text)| {
        let mut e = Element::new(name);
        if !text.is_empty() {
            e.push_text(text);
        }
        e
    });
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (an, av) in attrs {
                    e.set_attr(an, av); // set_attr dedupes names
                }
                for c in children {
                    e.push_element(c);
                }
                e
            })
    })
}

proptest! {
    /// Compact serialization followed by parsing is the identity on trees
    /// built from elements, attributes, and text.
    #[test]
    fn write_parse_roundtrip(root in element_strategy()) {
        let text = root.to_xml();
        let doc = parse(&text).unwrap();
        prop_assert_eq!(doc.root, root);
    }

    /// Escaping never loses information in attribute values.
    #[test]
    fn attr_value_roundtrip(value in "[ -~]{0,40}") {
        let e = Element::new("e").with_attr("v", value.clone());
        let doc = parse(&e.to_xml()).unwrap();
        prop_assert_eq!(doc.root.attr("v"), Some(value.as_str()));
    }

    /// Every element of a random document is reachable by its canonical
    /// XPath, and that path resolves to exactly that element.
    #[test]
    fn canonical_paths_resolve(root in element_strategy()) {
        let doc = Document::with_root(root);
        // enumerate all index paths by walking
        fn collect(e: &Element, prefix: Vec<usize>, out: &mut Vec<Vec<usize>>) {
            out.push(prefix.clone());
            for (i, c) in e.elements().enumerate() {
                let mut p = prefix.clone();
                p.push(i);
                collect(c, p, out);
            }
        }
        let mut paths = Vec::new();
        collect(&doc.root, Vec::new(), &mut paths);
        for idx in paths {
            let xp = XPath::of(&doc, &idx).unwrap();
            let resolved = xp.resolve(&doc).unwrap();
            let mut cur = &doc.root;
            for &i in &idx {
                cur = cur.elements().nth(i).unwrap();
            }
            prop_assert_eq!(resolved, cur);
        }
    }

    /// XPath display/parse round-trip.
    #[test]
    fn xpath_display_parse_roundtrip(root in element_strategy(), idx in proptest::collection::vec(0usize..4, 0..4)) {
        let doc = Document::with_root(root);
        // Trim idx to a valid prefix.
        let mut valid = Vec::new();
        let mut cur = &doc.root;
        for &i in &idx {
            let children: Vec<_> = cur.elements().collect();
            if i >= children.len() { break; }
            valid.push(i);
            cur = children[i];
        }
        let xp = XPath::of(&doc, &valid).unwrap();
        let reparsed = XPath::parse(&xp.to_string()).unwrap();
        prop_assert_eq!(reparsed, xp);
    }
}
