//! Salvage parsing: recover the longest well-formed prefix of a damaged
//! document.
//!
//! The strict parser ([`crate::parse`]) answers "is this document
//! well-formed?". This module answers a different question, asked after
//! a crash or disk corruption: "how much of it can still be trusted?".
//!
//! [`parse_salvage`] scans with an explicit element stack instead of
//! recursion. When it hits the first well-formedness violation — usually
//! a truncation mid-tag — it stops, implicitly closes every element
//! still open, and returns whatever tree was built so far alongside the
//! error and the number of elements that had to be force-closed. Callers
//! use `unclosed` to decide how much of the tail to distrust: a store
//! whose root alone was open (`unclosed == 1`) has only complete
//! records; a record element still open at the failure point
//! (`unclosed >= 2`) is itself suspect and is typically dropped.
//!
//! Salvage is also lenient where strictness buys nothing after damage:
//! unknown entities become literal text, duplicate attributes keep the
//! first value, and trailing garbage after the root closes is ignored.

use crate::dom::{Attribute, Element, Node};
use crate::error::{ParseError, ParseErrorKind, Position};
use crate::escape::predefined_entity;

/// The outcome of a salvage parse.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvagedXml {
    /// The recovered tree, with all open elements implicitly closed.
    /// `None` only when damage precedes the root start tag.
    pub root: Option<Element>,
    /// The violation that stopped the scan, if any. `None` means the
    /// document was well-formed (modulo the leniencies noted above).
    pub error: Option<ParseError>,
    /// Number of elements still open when the scan stopped (0 for a
    /// clean parse). The deepest `unclosed - 1` of them were truncated
    /// mid-content and should be treated as suspect.
    pub unclosed: usize,
}

impl SalvagedXml {
    /// True when the input parsed completely with nothing force-closed.
    pub fn is_complete(&self) -> bool {
        self.error.is_none() && self.unclosed == 0
    }
}

/// Parse as much of `input` as possible; never fails, never panics.
pub fn parse_salvage(input: &str) -> SalvagedXml {
    Salvager::new(input).run()
}

struct Salvager<'a> {
    input: &'a str,
    offset: usize,
    line: u32,
    column: u32,
}

impl<'a> Salvager<'a> {
    fn new(input: &'a str) -> Self {
        Salvager { input, offset: 0, line: 1, column: 1 }
    }

    fn position(&self) -> Position {
        Position { line: self.line, column: self.column, offset: self.offset }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.position())
    }

    fn rest(&self) -> &'a str {
        &self.input[self.offset..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn run(mut self) -> SalvagedXml {
        // Tolerant prolog: skip declaration, comments, PIs, DOCTYPE.
        self.skip_prolog();
        if self.peek().is_none() {
            return SalvagedXml {
                root: None,
                error: Some(self.err(ParseErrorKind::NoRootElement)),
                unclosed: 0,
            };
        }

        // Frames: each open element, children accumulated in place.
        let mut stack: Vec<Element> = Vec::new();
        let mut text = String::new();

        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    if let Some(top) = stack.last_mut() {
                        top.children.push(Node::Text(std::mem::take(&mut text)));
                    } else {
                        text.clear();
                    }
                }
            };
        }

        // Stop the scan: force-close everything open.
        macro_rules! unwind {
            ($error:expr) => {{
                flush_text!();
                let unclosed = stack.len();
                let mut root = None;
                while let Some(done) = stack.pop() {
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(Node::Element(done)),
                        None => root = Some(done),
                    }
                }
                return SalvagedXml { root, error: $error, unclosed };
            }};
        }

        loop {
            if stack.is_empty() {
                // Before the root (first iteration only, given the
                // unwind on root completion below).
                match self.start_tag() {
                    Ok((element, true)) => {
                        stack.push(element);
                        continue;
                    }
                    Ok((element, false)) => {
                        // Self-closing root: complete document.
                        return SalvagedXml { root: Some(element), error: None, unclosed: 0 };
                    }
                    Err(e) => unwind!(Some(e)),
                }
            }
            if self.rest().starts_with("</") {
                flush_text!();
                self.bump();
                self.bump();
                match self.close_tag_name() {
                    Ok(close) => {
                        if !stack.iter().any(|f| f.name == close) {
                            // A close tag for nothing that is open:
                            // damage, not structure. Stop here.
                            unwind!(Some(self.err(ParseErrorKind::MismatchedCloseTag {
                                open: stack.last().map(|f| f.name.clone()).unwrap_or_default(),
                                close,
                            })));
                        }
                        // Implicitly close intervening frames down to the
                        // matching ancestor (handles a lost close tag).
                        while let Some(done) = stack.pop() {
                            let matched = done.name == close;
                            match stack.last_mut() {
                                Some(parent) => parent.children.push(Node::Element(done)),
                                None => {
                                    // Root closed: ignore any trailing
                                    // content — it's beyond the artifact.
                                    return SalvagedXml {
                                        root: Some(done),
                                        error: None,
                                        unclosed: 0,
                                    };
                                }
                            }
                            if matched {
                                break;
                            }
                        }
                    }
                    Err(e) => unwind!(Some(e)),
                }
            } else if self.rest().starts_with("<!--") {
                flush_text!();
                match self.comment() {
                    Ok(body) => {
                        if let Some(top) = stack.last_mut() {
                            top.children.push(Node::Comment(body));
                        }
                    }
                    Err(e) => unwind!(Some(e)),
                }
            } else if self.rest().starts_with("<![CDATA[") {
                flush_text!();
                match self.cdata() {
                    Ok(body) => {
                        if let Some(top) = stack.last_mut() {
                            top.children.push(Node::CData(body));
                        }
                    }
                    Err(e) => unwind!(Some(e)),
                }
            } else if self.rest().starts_with("<?") {
                flush_text!();
                match self.processing_instruction() {
                    Ok(node) => {
                        if let Some(top) = stack.last_mut() {
                            top.children.push(node);
                        }
                    }
                    Err(e) => unwind!(Some(e)),
                }
            } else {
                match self.peek() {
                    Some('<') => {
                        flush_text!();
                        match self.start_tag() {
                            Ok((element, true)) => stack.push(element),
                            Ok((element, false)) => {
                                if let Some(top) = stack.last_mut() {
                                    top.children.push(Node::Element(element));
                                }
                            }
                            Err(e) => unwind!(Some(e)),
                        }
                    }
                    Some('&') => text.push_str(&self.lenient_reference()),
                    Some(_) => {
                        if let Some(c) = self.bump() {
                            text.push(c);
                        }
                    }
                    None => unwind!(Some(self.err(ParseErrorKind::UnexpectedEof {
                        expected: "close tag",
                    }))),
                }
            }
        }
    }

    fn skip_prolog(&mut self) {
        loop {
            self.skip_whitespace();
            if self.rest().starts_with("<!--") {
                if self.comment().is_err() {
                    return;
                }
            } else if self.rest().starts_with("<!DOCTYPE") {
                self.eat_str("<!DOCTYPE");
                let mut depth = 0usize;
                loop {
                    match self.bump() {
                        Some('[') => depth += 1,
                        Some(']') => depth = depth.saturating_sub(1),
                        Some('>') if depth == 0 => break,
                        Some(_) => {}
                        None => return,
                    }
                }
            } else if self.rest().starts_with("<?") {
                if self.processing_instruction().is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    /// Parse `<name attrs…>` or `<name attrs…/>`; returns the element
    /// and whether it was left open (`true` = has content to come).
    fn start_tag(&mut self, ) -> Result<(Element, bool), ParseError> {
        if self.bump() != Some('<') {
            return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'<' starting element" }));
        }
        let name = self.name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('/') => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        return Ok((Element { name, attributes, children: Vec::new() }, false));
                    }
                    return Err(self.err(ParseErrorKind::UnexpectedChar {
                        found: self.peek().unwrap_or('\0'),
                        expected: "'>' after '/'",
                    }));
                }
                Some('>') => {
                    self.bump();
                    return Ok((Element { name, attributes, children: Vec::new() }, true));
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    self.skip_whitespace();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                        }
                        _ => {
                            return Err(self.err(ParseErrorKind::UnexpectedEof {
                                expected: "'=' after attribute name",
                            }))
                        }
                    }
                    self.skip_whitespace();
                    let value = self.quoted_value()?;
                    // Leniency: keep the first of duplicate attributes.
                    if !attributes.iter().any(|a| a.name == attr_name) {
                        attributes.push(Attribute { name: attr_name, value });
                    }
                }
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        expected: "'>' closing start tag",
                    }))
                }
            }
        }
    }

    fn close_tag_name(&mut self) -> Result<String, ParseError> {
        let name = self.name()?;
        self.skip_whitespace();
        match self.peek() {
            Some('>') => {
                self.bump();
                Ok(name)
            }
            Some(c) => Err(self.err(ParseErrorKind::UnexpectedChar {
                found: c,
                expected: "'>' closing end tag",
            })),
            None => Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'>' closing end tag" })),
        }
    }

    fn comment(&mut self) -> Result<String, ParseError> {
        self.eat_str("<!--");
        let start = self.offset;
        loop {
            if self.rest().starts_with("-->") {
                let body = self.input[start..self.offset].to_string();
                self.eat_str("-->");
                return Ok(body);
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'-->'" }));
            }
        }
    }

    fn cdata(&mut self) -> Result<String, ParseError> {
        self.eat_str("<![CDATA[");
        let start = self.offset;
        loop {
            if self.rest().starts_with("]]>") {
                let body = self.input[start..self.offset].to_string();
                self.eat_str("]]>");
                return Ok(body);
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "']]>'" }));
            }
        }
    }

    fn processing_instruction(&mut self) -> Result<Node, ParseError> {
        self.eat_str("<?");
        let target = self.name()?;
        self.skip_whitespace();
        let start = self.offset;
        loop {
            if self.rest().starts_with("?>") {
                let data = self.input[start..self.offset].to_string();
                self.eat_str("?>");
                return Ok(Node::ProcessingInstruction { target, data });
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'?>'" }));
            }
        }
    }

    /// `&…;` resolved if possible; otherwise the raw text as written.
    /// Damage inside character data should cost one garbled character,
    /// not the rest of the document.
    fn lenient_reference(&mut self) -> String {
        let start = self.offset;
        self.bump(); // '&'
        let body_start = self.offset;
        while let Some(c) = self.peek() {
            if c == ';' {
                let body = &self.input[body_start..self.offset];
                self.bump();
                if let Some(resolved) = resolve_reference(body) {
                    return resolved.to_string();
                }
                return self.input[start..self.offset].to_string();
            }
            if !c.is_ascii_alphanumeric() && c != '#' {
                break;
            }
            self.bump();
        }
        self.input[start..self.offset].to_string()
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.offset;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => {
                let found: String = self.rest().chars().take(8).collect();
                return Err(self.err(ParseErrorKind::InvalidName { found }));
            }
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.offset].to_string())
    }

    fn quoted_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            Some(c) => {
                return Err(self.err(ParseErrorKind::UnexpectedChar {
                    found: c,
                    expected: "quoted attribute value",
                }))
            }
            None => {
                return Err(self.err(ParseErrorKind::UnexpectedEof {
                    expected: "quoted attribute value",
                }))
            }
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some('&') => value.push_str(&self.lenient_reference()),
                Some(_) => {
                    if let Some(c) = self.bump() {
                        value.push(c);
                    }
                }
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        expected: "closing quote",
                    }))
                }
            }
        }
    }
}

fn resolve_reference(body: &str) -> Option<char> {
    if let Some(num) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
        char::from_u32(u32::from_str_radix(num, 16).ok()?)
    } else if let Some(num) = body.strip_prefix('#') {
        char::from_u32(num.parse().ok()?)
    } else {
        predefined_entity(body)
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wellformed_matches_strict_parse() {
        let src = r#"<pad name="Rounds"><bundle n="A &amp; B"><scrap pos="3">Na 140</scrap></bundle><!-- c --></pad>"#;
        let salvaged = parse_salvage(src);
        assert!(salvaged.is_complete());
        let strict = crate::parse(src).unwrap();
        assert_eq!(salvaged.root.unwrap(), strict.root);
    }

    #[test]
    fn truncation_mid_child_keeps_complete_siblings() {
        let src = r#"<trim version="1"><t s="a" p="b"><lit>one</lit></t><t s="c" p="d"><li"#;
        let salvaged = parse_salvage(src);
        assert!(salvaged.error.is_some());
        // Open at failure: <trim> and the second <t>.
        assert_eq!(salvaged.unclosed, 2);
        let root = salvaged.root.unwrap();
        assert_eq!(root.name, "trim");
        let triples: Vec<&Element> = root
            .children
            .iter()
            .filter_map(|n| match n {
                Node::Element(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(triples.len(), 2);
        assert_eq!(triples[0].child("lit").unwrap().text(), "one");
        // The second triple is present but visibly incomplete.
        assert!(triples[1].child("lit").is_none());
    }

    #[test]
    fn truncation_between_children_leaves_only_root_open() {
        let src = r#"<trim version="1"><t s="a" p="b"><lit>one</lit></t><t "#;
        let salvaged = parse_salvage(src);
        assert!(salvaged.error.is_some());
        // The partial `<t ` start tag never materialized as an element.
        assert_eq!(salvaged.unclosed, 1);
        let root = salvaged.root.unwrap();
        assert_eq!(root.children.len(), 1);
    }

    #[test]
    fn truncation_inside_root_start_tag_yields_no_root() {
        let salvaged = parse_salvage(r#"<trim versi"#);
        assert!(salvaged.root.is_none());
        assert!(salvaged.error.is_some());
        assert_eq!(salvaged.unclosed, 0);
    }

    #[test]
    fn empty_input_yields_no_root() {
        let salvaged = parse_salvage("   ");
        assert!(salvaged.root.is_none());
        assert!(salvaged.error.is_some());
    }

    #[test]
    fn lost_close_tag_is_implicitly_closed() {
        // </b> is missing; </a> should close both.
        let salvaged = parse_salvage("<a><b>hi</a>");
        assert!(salvaged.error.is_none());
        assert_eq!(salvaged.unclosed, 0);
        let root = salvaged.root.unwrap();
        assert_eq!(root.child("b").unwrap().text(), "hi");
    }

    #[test]
    fn stray_close_tag_stops_the_scan() {
        let salvaged = parse_salvage("<a><b>hi</c></a>");
        assert!(salvaged.error.is_some());
        let root = salvaged.root.unwrap();
        assert_eq!(root.name, "a");
    }

    #[test]
    fn unknown_entities_become_literal_text() {
        let salvaged = parse_salvage("<a>x &nbsp; y</a>");
        assert!(salvaged.error.is_none());
        assert_eq!(salvaged.root.unwrap().text(), "x &nbsp; y");
    }

    #[test]
    fn broken_reference_at_eof_salvages_preceding_text() {
        let salvaged = parse_salvage("<a>hello &am");
        let root = salvaged.root.unwrap();
        assert!(root.text().starts_with("hello "));
        assert_eq!(salvaged.unclosed, 1);
    }

    #[test]
    fn duplicate_attributes_keep_first() {
        let salvaged = parse_salvage(r#"<a x="1" x="2"/>"#);
        assert!(salvaged.error.is_none());
        assert_eq!(salvaged.root.unwrap().attr("x"), Some("1"));
    }

    #[test]
    fn trailing_garbage_after_root_is_ignored() {
        let salvaged = parse_salvage("<a>ok</a>@#$%<<<");
        assert!(salvaged.error.is_none());
        assert_eq!(salvaged.root.unwrap().text(), "ok");
    }

    #[test]
    fn every_prefix_of_a_real_document_salvages_without_panic() {
        let src = r#"<?xml version="1.0"?><trim version="1">
  <t s="doc/rounds" p="title"><lit>Morning Rounds</lit></t>
  <t s="doc/rounds" p="author"><res>staff/jones</res></t>
  <t s="doc/rounds" p="body"><lit>Na 140 &amp; K 4.1 &lt;stable&gt;</lit></t>
</trim>"#;
        for cut in 0..=src.len() {
            if !src.is_char_boundary(cut) {
                continue;
            }
            let salvaged = parse_salvage(&src[..cut]);
            if let Some(root) = &salvaged.root {
                assert_eq!(root.name, "trim");
            }
        }
        // And the full document is complete.
        assert!(parse_salvage(src).is_complete());
    }
}
