//! Escaping and unescaping of XML character data and attribute values.
//!
//! Escaping allocates only when the input actually contains characters
//! that need replacing; the common all-clean case is borrowed.

use std::borrow::Cow;

/// Escape `<`, `>`, and `&` for use in character data (element text).
///
/// `>` is not strictly required outside the `]]>` sequence but escaping it
/// unconditionally keeps output unambiguous and matches common practice.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    escape_with(s, false)
}

/// Escape `<`, `>`, `&`, `"`, and `'` for use inside an attribute value.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    escape_with(s, true)
}

fn escape_with(s: &str, quotes: bool) -> Cow<'_, str> {
    let needs = |c: char| matches!(c, '<' | '>' | '&') || (quotes && matches!(c, '"' | '\''));
    let Some(first) = s.find(needs) else {
        return Cow::Borrowed(s);
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if quotes => out.push_str("&quot;"),
            '\'' if quotes => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    Cow::Owned(out)
}

/// Resolve a predefined entity name (without `&`/`;`) to its character.
///
/// Returns `None` for anything that is not one of the five XML predefined
/// entities; numeric character references are handled by the parser.
pub fn predefined_entity(name: &str) -> Option<char> {
    Some(match name {
        "lt" => '<',
        "gt" => '>',
        "amp" => '&',
        "quot" => '"',
        "apos" => '\'',
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_text_is_borrowed() {
        let s = "no special characters";
        assert!(matches!(escape_text(s), Cow::Borrowed(_)));
        assert!(matches!(escape_attr(s), Cow::Borrowed(_)));
    }

    #[test]
    fn text_escapes_angle_brackets_and_ampersand() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
    }

    #[test]
    fn text_does_not_escape_quotes() {
        assert_eq!(escape_text(r#"say "hi""#), r#"say "hi""#);
    }

    #[test]
    fn attr_escapes_both_quote_kinds() {
        assert_eq!(escape_attr(r#"a"b'c"#), "a&quot;b&apos;c");
    }

    #[test]
    fn escape_preserves_prefix_before_first_special() {
        assert_eq!(escape_text("prefix<"), "prefix&lt;");
    }

    #[test]
    fn predefined_entities_resolve() {
        assert_eq!(predefined_entity("lt"), Some('<'));
        assert_eq!(predefined_entity("gt"), Some('>'));
        assert_eq!(predefined_entity("amp"), Some('&'));
        assert_eq!(predefined_entity("quot"), Some('"'));
        assert_eq!(predefined_entity("apos"), Some('\''));
        assert_eq!(predefined_entity("nbsp"), None);
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escape_text("Na⁺ 140 mEq/L"), "Na⁺ 140 mEq/L");
        assert_eq!(escape_attr("κ<λ"), "κ&lt;λ");
    }
}
