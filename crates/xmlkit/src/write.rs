//! Streaming XML writer with pretty-printing.
//!
//! [`XmlWriter`] serves two callers: TRIM persistence, which emits
//! element streams without first building a DOM, and [`Element`] trees
//! being pretty-printed for humans.

use crate::dom::{Element, Node};
use crate::escape::{escape_attr, escape_text};

/// A streaming writer producing either compact or indented XML text.
#[derive(Debug)]
pub struct XmlWriter {
    out: String,
    /// Stack of open element names.
    open: Vec<String>,
    /// Whether the current open element has had its `>` written.
    tag_open: bool,
    /// `Some(indent_unit)` for pretty mode.
    indent: Option<&'static str>,
    /// Pretty mode: whether the last thing written was character data
    /// (suppresses the newline before the close tag).
    inline_content: bool,
}

impl XmlWriter {
    /// A writer producing compact output (no inserted whitespace).
    pub fn compact() -> Self {
        XmlWriter { out: String::new(), open: Vec::new(), tag_open: false, indent: None, inline_content: false }
    }

    /// A writer producing two-space-indented output.
    pub fn pretty() -> Self {
        XmlWriter { out: String::new(), open: Vec::new(), tag_open: false, indent: Some("  "), inline_content: false }
    }

    /// Write the standard `<?xml ...?>` declaration. Call first.
    pub fn declaration(&mut self) {
        self.out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if self.indent.is_some() {
            self.out.push('\n');
        }
    }

    fn close_pending_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }

    fn newline_indent(&mut self, depth: usize) {
        if let Some(unit) = self.indent {
            if !self.out.is_empty() && !self.out.ends_with('\n') {
                self.out.push('\n');
            }
            for _ in 0..depth {
                self.out.push_str(unit);
            }
        }
    }

    /// Open an element: `<name`. Attributes may follow until content or
    /// close.
    pub fn start(&mut self, name: &str) {
        self.close_pending_tag();
        self.newline_indent(self.open.len());
        self.out.push('<');
        self.out.push_str(name);
        self.open.push(name.to_string());
        self.tag_open = true;
        self.inline_content = false;
    }

    /// Add an attribute to the element just started.
    ///
    /// # Panics
    ///
    /// Panics if called when no start tag is open for attributes — that is
    /// a caller sequencing bug, not a data error.
    pub fn attr(&mut self, name: &str, value: &str) {
        assert!(self.tag_open, "attr() must follow start() before any content");
        self.out.push(' ');
        self.out.push_str(name);
        self.out.push_str("=\"");
        self.out.push_str(&escape_attr(value));
        self.out.push('"');
    }

    /// Write escaped character data inside the current element.
    pub fn text(&mut self, text: &str) {
        self.close_pending_tag();
        self.out.push_str(&escape_text(text));
        self.inline_content = true;
    }

    /// Close the most recently opened element.
    ///
    /// # Panics
    ///
    /// Panics if there is no open element.
    pub fn end(&mut self) {
        let name = self.open.pop().expect("end() with no open element");
        if self.tag_open {
            self.out.push_str("/>");
            self.tag_open = false;
        } else {
            if !self.inline_content {
                self.newline_indent(self.open.len());
            }
            self.out.push_str("</");
            self.out.push_str(&name);
            self.out.push('>');
        }
        self.inline_content = false;
    }

    /// Convenience: `<name>text</name>` as one call.
    pub fn leaf(&mut self, name: &str, text: &str) {
        self.start(name);
        self.text(text);
        self.end();
    }

    /// Write a whole [`Element`] tree through this writer.
    pub fn element(&mut self, e: &Element) {
        self.start(&e.name);
        for a in &e.attributes {
            self.attr(&a.name, &a.value);
        }
        for child in &e.children {
            match child {
                Node::Element(c) => self.element(c),
                Node::Text(s) | Node::CData(s) => {
                    // Skip pure-indentation text in pretty mode so reparsed
                    // pretty output is not polluted with formatting runs.
                    if self.indent.is_none() || !s.trim().is_empty() {
                        self.text(s);
                    }
                }
                Node::Comment(s) => {
                    self.close_pending_tag();
                    self.newline_indent(self.open.len());
                    self.out.push_str("<!--");
                    self.out.push_str(s);
                    self.out.push_str("-->");
                }
                Node::ProcessingInstruction { target, data } => {
                    self.close_pending_tag();
                    self.newline_indent(self.open.len());
                    self.out.push_str("<?");
                    self.out.push_str(target);
                    if !data.is_empty() {
                        self.out.push(' ');
                        self.out.push_str(data);
                    }
                    self.out.push_str("?>");
                }
            }
        }
        self.end();
    }

    /// Finish writing and return the document text.
    ///
    /// # Panics
    ///
    /// Panics if any element is still open — callers must balance
    /// `start`/`end`.
    pub fn finish(mut self) -> String {
        assert!(self.open.is_empty(), "finish() with {} unclosed element(s)", self.open.len());
        if self.indent.is_some() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn compact_stream_builds_expected_text() {
        let mut w = XmlWriter::compact();
        w.start("pad");
        w.attr("name", "Rounds");
        w.start("bundle");
        w.attr("n", "John");
        w.leaf("scrap", "Na 140");
        w.end();
        w.end();
        assert_eq!(w.finish(), r#"<pad name="Rounds"><bundle n="John"><scrap>Na 140</scrap></bundle></pad>"#);
    }

    #[test]
    fn empty_element_self_closes() {
        let mut w = XmlWriter::compact();
        w.start("r");
        w.end();
        assert_eq!(w.finish(), "<r/>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let mut w = XmlWriter::pretty();
        w.start("a");
        w.start("b");
        w.leaf("c", "x");
        w.end();
        w.end();
        let text = w.finish();
        assert_eq!(text, "<a>\n  <b>\n    <c>x</c>\n  </b>\n</a>\n");
    }

    #[test]
    fn pretty_output_reparses_to_same_structure() {
        let src = r#"<a x="1"><b><c>text</c><d/></b></a>"#;
        let doc = parse(src).unwrap();
        let mut w = XmlWriter::pretty();
        w.element(&doc.root);
        let pretty = w.finish();
        let reparsed = parse(&pretty).unwrap();
        // Structure check: element names, attributes, and text survive.
        assert_eq!(reparsed.root.name, "a");
        assert_eq!(reparsed.root.attr("x"), Some("1"));
        let b = reparsed.root.child("b").unwrap();
        assert_eq!(b.child("c").unwrap().text(), "text");
        assert!(b.child("d").is_some());
    }

    #[test]
    fn declaration_written_first() {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start("r");
        w.end();
        assert_eq!(w.finish(), "<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>");
    }

    #[test]
    fn text_is_escaped() {
        let mut w = XmlWriter::compact();
        w.start("r");
        w.attr("a", "x<y");
        w.text("1 & 2");
        w.end();
        assert_eq!(w.finish(), "<r a=\"x&lt;y\">1 &amp; 2</r>");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_panics_on_unbalanced() {
        let mut w = XmlWriter::compact();
        w.start("r");
        let _ = w.finish();
    }

    #[test]
    #[should_panic(expected = "attr() must follow start()")]
    fn attr_after_content_panics() {
        let mut w = XmlWriter::compact();
        w.start("r");
        w.text("x");
        w.attr("a", "b");
    }
}
