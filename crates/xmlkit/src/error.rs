//! Parse errors with source positions.

use std::fmt;

/// A 1-based line/column position in the source text, plus the byte offset.
///
/// Positions make parse failures actionable ("mismatched close tag at
/// 14:3") and let callers map errors back into editors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters, not bytes).
    pub column: u32,
    /// Byte offset into the source string.
    pub offset: usize,
}

impl Position {
    /// The position of the first character of a document.
    pub fn start() -> Self {
        Position { line: 1, column: 1, offset: 0 }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// An error produced while parsing XML text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where in the source it went wrong.
    pub position: Position,
}

/// The specific failure class of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended while a construct was still open.
    UnexpectedEof { expected: &'static str },
    /// A character that cannot start or continue the current construct.
    UnexpectedChar { found: char, expected: &'static str },
    /// `</b>` closing an element opened as `<a>`.
    MismatchedCloseTag { open: String, close: String },
    /// A close tag with no matching open tag.
    UnmatchedCloseTag { close: String },
    /// An entity reference that is not predefined or a character reference.
    UnknownEntity { entity: String },
    /// A character reference that does not denote a valid char.
    InvalidCharRef { reference: String },
    /// An attribute name repeated on the same element.
    DuplicateAttribute { name: String },
    /// The document has no root element.
    NoRootElement,
    /// Content found after the root element closed.
    TrailingContent,
    /// Name expected but something else found.
    InvalidName { found: String },
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, position: Position) -> Self {
        ParseError { kind, position }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at {}: ", self.position)?;
        match &self.kind {
            ParseErrorKind::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ParseErrorKind::MismatchedCloseTag { open, close } => {
                write!(f, "close tag </{close}> does not match open tag <{open}>")
            }
            ParseErrorKind::UnmatchedCloseTag { close } => {
                write!(f, "close tag </{close}> has no matching open tag")
            }
            ParseErrorKind::UnknownEntity { entity } => {
                write!(f, "unknown entity &{entity};")
            }
            ParseErrorKind::InvalidCharRef { reference } => {
                write!(f, "invalid character reference &#{reference};")
            }
            ParseErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?}")
            }
            ParseErrorKind::NoRootElement => write!(f, "document has no root element"),
            ParseErrorKind::TrailingContent => {
                write!(f, "content after the document root element")
            }
            ParseErrorKind::InvalidName { found } => {
                write!(f, "invalid XML name starting at {found:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_colon_column() {
        let p = Position { line: 4, column: 17, offset: 99 };
        assert_eq!(p.to_string(), "4:17");
    }

    #[test]
    fn error_display_mentions_position_and_kind() {
        let e = ParseError::new(
            ParseErrorKind::MismatchedCloseTag { open: "a".into(), close: "b".into() },
            Position { line: 2, column: 5, offset: 10 },
        );
        let msg = e.to_string();
        assert!(msg.contains("2:5"), "{msg}");
        assert!(msg.contains("</b>"), "{msg}");
        assert!(msg.contains("<a>"), "{msg}");
    }

    #[test]
    fn start_position_is_one_one() {
        assert_eq!(Position::start(), Position { line: 1, column: 1, offset: 0 });
    }
}
