//! XPath-lite: the element-addressing language used by XML marks.
//!
//! The paper's XML mark stores a `fileName` and an `xmlPath` (Figure 8).
//! This module defines that path language: an absolute, child-axis-only
//! subset of XPath sufficient to address any element in a document
//! unambiguously:
//!
//! ```text
//! /report/panel[2]/na          name steps with optional 1-based ordinals
//! /report/*[3]                 wildcard step (any element name)
//! /report/na[@unit='mEq/L']    attribute-equality predicate
//! ```
//!
//! Ordinals count among *same-named* siblings (standard XPath semantics),
//! so `/a/b[2]` is the second `<b>` child of the root `<a>`. A step with
//! no ordinal means `[1]` for resolution purposes, but [`XPath::of`]
//! always emits explicit ordinals when needed for uniqueness.
//!
//! The canonical-path invariant, tested here and property-tested in the
//! crate: for every element `e` in a document, `XPath::of(doc, e_indices)`
//! resolves back to exactly `e`.

use crate::dom::{Document, Element};
use std::fmt;

/// One step of an [`XPath`]: a name test, an optional 1-based ordinal, and
/// an optional attribute-equality predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XPathStep {
    /// Element name to match, or `None` for the `*` wildcard.
    pub name: Option<String>,
    /// 1-based position among matching siblings; `None` means first.
    pub ordinal: Option<usize>,
    /// `Some((attr, value))` for an `[@attr='value']` predicate.
    pub predicate: Option<(String, String)>,
}

impl XPathStep {
    /// A step matching the first child element named `name`.
    pub fn named(name: impl Into<String>) -> Self {
        XPathStep { name: Some(name.into()), ordinal: None, predicate: None }
    }

    /// A step matching the `n`-th (1-based) child element named `name`.
    pub fn nth(name: impl Into<String>, n: usize) -> Self {
        XPathStep { name: Some(name.into()), ordinal: Some(n), predicate: None }
    }

    fn matches(&self, e: &Element) -> bool {
        if let Some(name) = &self.name {
            if &e.name != name {
                return false;
            }
        }
        if let Some((attr, value)) = &self.predicate {
            if e.attr(attr) != Some(value.as_str()) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for XPathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}")?,
            None => write!(f, "*")?,
        }
        if let Some((attr, value)) = &self.predicate {
            write!(f, "[@{attr}='{value}']")?;
        }
        if let Some(n) = self.ordinal {
            write!(f, "[{n}]")?;
        }
        Ok(())
    }
}

/// An absolute path addressing one element of a document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XPath {
    /// Steps from the root. The first step must match the root element
    /// itself; an empty path is invalid.
    pub steps: Vec<XPathStep>,
}

/// Errors from parsing or resolving an [`XPath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathError {
    /// Path text that does not conform to the grammar.
    Syntax { at: usize, message: String },
    /// The path is empty.
    Empty,
    /// The first step does not match the document root.
    RootMismatch { expected: String, found: String },
    /// A step matched no element.
    NoMatch { step_index: usize, step: String },
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Syntax { at, message } => {
                write!(f, "xpath syntax error at byte {at}: {message}")
            }
            XPathError::Empty => write!(f, "empty xpath"),
            XPathError::RootMismatch { expected, found } => {
                write!(f, "xpath root step {expected:?} does not match document root {found:?}")
            }
            XPathError::NoMatch { step_index, step } => {
                write!(f, "xpath step #{step_index} ({step}) matched no element")
            }
        }
    }
}

impl std::error::Error for XPathError {}

impl XPath {
    /// Parse a path of the form `/step/step/...`.
    pub fn parse(text: &str) -> Result<Self, XPathError> {
        let text = text.trim();
        if text.is_empty() || text == "/" {
            return Err(XPathError::Empty);
        }
        let Some(body) = text.strip_prefix('/') else {
            return Err(XPathError::Syntax { at: 0, message: "path must be absolute (start with '/')".into() });
        };
        let mut steps = Vec::new();
        let mut offset = 1usize;
        for raw in body.split('/') {
            if raw.is_empty() {
                return Err(XPathError::Syntax { at: offset, message: "empty step ('//' not supported)".into() });
            }
            steps.push(parse_step(raw, offset)?);
            offset += raw.len() + 1;
        }
        Ok(XPath { steps })
    }

    /// The canonical path of the element reached from the document root by
    /// the child-element index sequence `indices` (each entry an index
    /// into [`Element::elements`]).
    ///
    /// Returns `None` if the index sequence walks off the tree.
    pub fn of(doc: &Document, indices: &[usize]) -> Option<XPath> {
        let mut steps = vec![canonical_step_for_root(&doc.root)];
        let mut current = &doc.root;
        for &i in indices {
            let children: Vec<&Element> = current.elements().collect();
            let child = children.get(i)?;
            // Ordinal among same-named siblings, 1-based.
            let ordinal = children[..i].iter().filter(|e| e.name == child.name).count() + 1;
            let same_name_total = children.iter().filter(|e| e.name == child.name).count();
            steps.push(XPathStep {
                name: Some(child.name.clone()),
                ordinal: if same_name_total > 1 { Some(ordinal) } else { None },
                predicate: None,
            });
            current = child;
        }
        Some(XPath { steps })
    }

    /// Resolve this path against a document, returning the addressed
    /// element.
    pub fn resolve<'d>(&self, doc: &'d Document) -> Result<&'d Element, XPathError> {
        let Some((root_step, rest)) = self.steps.split_first() else {
            return Err(XPathError::Empty);
        };
        if !root_step.matches(&doc.root) || root_step.ordinal.unwrap_or(1) != 1 {
            return Err(XPathError::RootMismatch {
                expected: root_step.to_string(),
                found: doc.root.name.clone(),
            });
        }
        let mut current = &doc.root;
        for (i, step) in rest.iter().enumerate() {
            let want = step.ordinal.unwrap_or(1);
            let found = current.elements().filter(|e| step.matches(e)).nth(want - 1);
            match found {
                Some(e) => current = e,
                None => {
                    return Err(XPathError::NoMatch { step_index: i + 1, step: step.to_string() })
                }
            }
        }
        Ok(current)
    }
}

fn canonical_step_for_root(root: &Element) -> XPathStep {
    XPathStep::named(root.name.clone())
}

fn parse_step(raw: &str, offset: usize) -> Result<XPathStep, XPathError> {
    // Grammar: name ( '[@' attr '=' quoted ']' )? ( '[' digits ']' )?
    // or '*' in place of name. Also accepts ordinal-before-predicate.
    let bytes = raw.as_bytes();
    let name_end = raw.find('[').unwrap_or(raw.len());
    let name_text = &raw[..name_end];
    if name_text.is_empty() {
        return Err(XPathError::Syntax { at: offset, message: "step has no name".into() });
    }
    let name = if name_text == "*" {
        None
    } else {
        if !name_text.chars().all(|c| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.')) {
            return Err(XPathError::Syntax {
                at: offset,
                message: format!("invalid step name {name_text:?}"),
            });
        }
        Some(name_text.to_string())
    };
    let mut i = name_end;
    let mut ordinal = None;
    let mut predicate = None;
    while i < bytes.len() {
        if bytes[i] != b'[' {
            return Err(XPathError::Syntax {
                at: offset + i,
                message: format!("unexpected character {:?} after step", raw[i..].chars().next().unwrap()),
            });
        }
        let close = raw[i..]
            .find(']')
            .ok_or_else(|| XPathError::Syntax { at: offset + i, message: "unterminated '['".into() })?
            + i;
        let body = &raw[i + 1..close];
        if let Some(pred) = body.strip_prefix('@') {
            let eq = pred.find('=').ok_or_else(|| XPathError::Syntax {
                at: offset + i,
                message: "attribute predicate needs '='".into(),
            })?;
            let attr = pred[..eq].to_string();
            let value = pred[eq + 1..].trim();
            let unquoted = value
                .strip_prefix('\'')
                .and_then(|v| v.strip_suffix('\''))
                .or_else(|| value.strip_prefix('"').and_then(|v| v.strip_suffix('"')))
                .ok_or_else(|| XPathError::Syntax {
                    at: offset + i,
                    message: "predicate value must be quoted".into(),
                })?;
            if predicate.replace((attr, unquoted.to_string())).is_some() {
                return Err(XPathError::Syntax {
                    at: offset + i,
                    message: "at most one attribute predicate per step".into(),
                });
            }
        } else {
            let n: usize = body.parse().map_err(|_| XPathError::Syntax {
                at: offset + i,
                message: format!("ordinal must be a positive integer, got {body:?}"),
            })?;
            if n == 0 {
                return Err(XPathError::Syntax {
                    at: offset + i,
                    message: "ordinals are 1-based; [0] is invalid".into(),
                });
            }
            if ordinal.replace(n).is_some() {
                return Err(XPathError::Syntax {
                    at: offset + i,
                    message: "at most one ordinal per step".into(),
                });
            }
        }
        i = close + 1;
    }
    Ok(XPathStep { name, ordinal, predicate })
}

impl fmt::Display for XPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, "/{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse as parse_xml;

    fn labs() -> Document {
        parse_xml(
            r#"<report>
                 <panel kind="electrolytes">
                   <na unit="mEq/L">140</na>
                   <k>4.1</k>
                   <k>4.3</k>
                 </panel>
                 <panel kind="cbc">
                   <wbc>9.8</wbc>
                 </panel>
               </report>"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in [
            "/report/panel[2]/wbc",
            "/report/panel[@kind='cbc']/wbc",
            "/a/*[3]",
            "/report",
        ] {
            let p = XPath::parse(text).unwrap();
            assert_eq!(p.to_string(), text);
            assert_eq!(XPath::parse(&p.to_string()).unwrap(), p);
        }
    }

    #[test]
    fn resolve_name_steps() {
        let doc = labs();
        let e = XPath::parse("/report/panel/na").unwrap().resolve(&doc).unwrap();
        assert_eq!(e.text(), "140");
    }

    #[test]
    fn resolve_ordinals_count_same_named_siblings() {
        let doc = labs();
        let e = XPath::parse("/report/panel/k[2]").unwrap().resolve(&doc).unwrap();
        assert_eq!(e.text(), "4.3");
        let e = XPath::parse("/report/panel[2]/wbc").unwrap().resolve(&doc).unwrap();
        assert_eq!(e.text(), "9.8");
    }

    #[test]
    fn resolve_attribute_predicate() {
        let doc = labs();
        let e = XPath::parse("/report/panel[@kind='cbc']/wbc").unwrap().resolve(&doc).unwrap();
        assert_eq!(e.text(), "9.8");
    }

    #[test]
    fn wildcard_step() {
        let doc = labs();
        let e = XPath::parse("/report/*[2]").unwrap().resolve(&doc).unwrap();
        assert_eq!(e.attr("kind"), Some("cbc"));
    }

    #[test]
    fn no_match_reports_step() {
        let doc = labs();
        let err = XPath::parse("/report/panel/cl").unwrap().resolve(&doc).unwrap_err();
        assert!(matches!(err, XPathError::NoMatch { step_index: 2, .. }), "{err:?}");
    }

    #[test]
    fn root_mismatch_detected() {
        let doc = labs();
        let err = XPath::parse("/labs/panel").unwrap().resolve(&doc).unwrap_err();
        assert!(matches!(err, XPathError::RootMismatch { .. }));
    }

    #[test]
    fn canonical_path_of_every_element_resolves_back() {
        let doc = labs();
        // Enumerate all index paths of depth <= 2 present in the tree.
        let mut paths: Vec<Vec<usize>> = vec![vec![]];
        for (i, child) in doc.root.elements().enumerate() {
            paths.push(vec![i]);
            for (j, _) in child.elements().enumerate() {
                paths.push(vec![i, j]);
            }
        }
        for idx in paths {
            let xp = XPath::of(&doc, &idx).unwrap();
            let resolved = xp.resolve(&doc).unwrap();
            // Navigate manually to compare identity by structure.
            let mut cur = &doc.root;
            for &i in &idx {
                cur = cur.elements().nth(i).unwrap();
            }
            assert_eq!(resolved, cur, "path {xp} for indices {idx:?}");
        }
    }

    #[test]
    fn canonical_path_omits_ordinal_when_unambiguous() {
        let doc = labs();
        // panel index 0 -> na (only one na)
        let xp = XPath::of(&doc, &[0, 0]).unwrap();
        assert_eq!(xp.to_string(), "/report/panel[1]/na");
        // the two k elements get ordinals
        let xp = XPath::of(&doc, &[0, 2]).unwrap();
        assert_eq!(xp.to_string(), "/report/panel[1]/k[2]");
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(XPath::parse(""), Err(XPathError::Empty)));
        assert!(matches!(XPath::parse("/"), Err(XPathError::Empty)));
        assert!(matches!(XPath::parse("relative/path"), Err(XPathError::Syntax { .. })));
        assert!(matches!(XPath::parse("/a//b"), Err(XPathError::Syntax { .. })));
        assert!(matches!(XPath::parse("/a[0]"), Err(XPathError::Syntax { .. })));
        assert!(matches!(XPath::parse("/a[x]"), Err(XPathError::Syntax { .. })));
        assert!(matches!(XPath::parse("/a[@k=v]"), Err(XPathError::Syntax { .. })));
        assert!(matches!(XPath::parse("/a[1][2]"), Err(XPathError::Syntax { .. })));
    }

    #[test]
    fn of_returns_none_for_bad_indices() {
        let doc = labs();
        assert!(XPath::of(&doc, &[9]).is_none());
        assert!(XPath::of(&doc, &[0, 0, 0]).is_none());
    }
}
