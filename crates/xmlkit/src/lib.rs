//! `xmlkit` — a small, dependency-free XML toolkit.
//!
//! The SLIM architecture persists superimposed information "through XML
//! files" (paper §4.4) and supports marks into XML documents (paper §3,
//! Figure 8). Rather than pull in a heavyweight XML dependency, this crate
//! provides exactly the XML capabilities the rest of the workspace needs:
//!
//! * a **DOM** ([`Document`], [`Element`], [`Node`]) with ordered
//!   attributes and mixed content,
//! * a strict, position-tracking **parser** ([`parse`]),
//! * a **salvage parser** ([`parse_salvage`]) that recovers the longest
//!   well-formed prefix of a damaged document,
//! * a **writer** with compact and pretty output ([`Element::to_xml`],
//!   [`write::XmlWriter`]),
//! * text/attribute **escaping** ([`escape`]),
//! * an **XPath-lite** path language ([`xpath`]) used for fine-grained
//!   element addressing by the XML mark type.
//!
//! The parser covers the subset of XML 1.0 that real documents in this
//! system exercise: elements, attributes, character data, CDATA sections,
//! comments, processing instructions, an optional XML declaration and
//! DOCTYPE (skipped, not validated), and the five predefined entities plus
//! decimal/hex character references.
//!
//! # Example
//!
//! ```
//! use xmlkit::parse;
//!
//! let doc = parse("<labs patient='js'><na unit='mEq/L'>140</na></labs>").unwrap();
//! assert_eq!(doc.root.name, "labs");
//! assert_eq!(doc.root.attr("patient"), Some("js"));
//! let na = doc.root.child("na").unwrap();
//! assert_eq!(na.text(), "140");
//! let round = xmlkit::parse(&doc.root.to_xml()).unwrap();
//! assert_eq!(round.root, doc.root);
//! ```

pub mod dom;
pub mod error;
pub mod escape;
pub mod parser;
pub mod salvage;
pub mod write;
pub mod xpath;

pub use dom::{Attribute, Document, Element, Node};
pub use error::{ParseError, Position};
pub use parser::parse;
pub use salvage::{parse_salvage, SalvagedXml};
pub use write::XmlWriter;
pub use xpath::{XPath, XPathError, XPathStep};
