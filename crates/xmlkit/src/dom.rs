//! The document object model: owned trees of elements and mixed content.
//!
//! The DOM is deliberately a plain owned tree (`Element` owns its child
//! `Node`s) rather than an arena or `Rc` graph: documents in this system
//! are read-mostly, sized in kilobytes-to-megabytes, and addressed by
//! *paths* (see [`crate::xpath`]) rather than by long-lived node handles,
//! so the simplest ownership story wins.

use crate::escape::{escape_attr, escape_text};
use crate::write::XmlWriter;

/// A single `name="value"` attribute. Order of attributes is preserved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

/// A node in mixed content: child element, character data, CDATA, comment,
/// or processing instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    Element(Element),
    /// Character data with entities already resolved.
    Text(String),
    /// A CDATA section; content is verbatim.
    CData(String),
    Comment(String),
    /// Processing instruction: target and (possibly empty) data.
    ProcessingInstruction { target: String, data: String },
}

impl Node {
    /// The contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable access to the contained element, if this node is one.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// The textual content this node contributes to its parent's text.
    pub fn text_content(&self) -> &str {
        match self {
            Node::Text(s) | Node::CData(s) => s,
            _ => "",
        }
    }
}

/// An XML element: a name, ordered attributes, and ordered mixed content.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    pub name: String,
    pub attributes: Vec<Attribute>,
    pub children: Vec<Node>,
}

impl Element {
    /// Create an empty element with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: add or replace an attribute and return `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: append a child element and return `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: append character data and return `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|a| a.name == name).map(|a| a.value.as_str())
    }

    /// Set an attribute, replacing any existing value for `name`.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match self.attributes.iter_mut().find(|a| a.name == name) {
            Some(a) => a.value = value,
            None => self.attributes.push(Attribute { name, value }),
        }
    }

    /// Remove an attribute; returns its previous value if present.
    pub fn remove_attr(&mut self, name: &str) -> Option<String> {
        let idx = self.attributes.iter().position(|a| a.name == name)?;
        Some(self.attributes.remove(idx).value)
    }

    /// Append a child element.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append character data.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Iterate over child *elements* only (skipping text, comments, PIs).
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// Mutable iterator over child elements only.
    pub fn elements_mut(&mut self) -> impl Iterator<Item = &mut Element> {
        self.children.iter_mut().filter_map(Node::as_element_mut)
    }

    /// The first child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.elements().find(|e| e.name == name)
    }

    /// Mutable access to the first child element with the given name.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut Element> {
        self.elements_mut().find(|e| e.name == name)
    }

    /// All child elements with the given name, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.elements().filter(move |e| e.name == name)
    }

    /// Concatenated character data of *direct* children (text and CDATA).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            out.push_str(c.text_content());
        }
        out
    }

    /// Concatenated character data of this element's whole subtree.
    pub fn deep_text(&self) -> String {
        let mut out = String::new();
        self.collect_deep_text(&mut out);
        out
    }

    fn collect_deep_text(&self, out: &mut String) {
        for c in &self.children {
            match c {
                Node::Element(e) => e.collect_deep_text(out),
                Node::Text(s) | Node::CData(s) => out.push_str(s),
                _ => {}
            }
        }
    }

    /// Number of elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self.elements().map(Element::subtree_size).sum::<usize>()
    }

    /// Depth-first pre-order walk over all elements in the subtree,
    /// including `self`, invoking `f` with each element and its depth.
    pub fn walk(&self, f: &mut impl FnMut(&Element, usize)) {
        self.walk_at(0, f);
    }

    fn walk_at(&self, depth: usize, f: &mut impl FnMut(&Element, usize)) {
        f(self, depth);
        for e in self.elements() {
            e.walk_at(depth + 1, f);
        }
    }

    /// Serialize this element compactly (no added whitespace).
    ///
    /// The output round-trips: `parse(&e.to_xml()).unwrap().root == e`
    /// modulo CDATA sections, which are written as escaped text.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialize with two-space indentation, one element per line.
    ///
    /// Pretty output inserts whitespace and therefore does *not* round-trip
    /// for elements with mixed (text + element) content; use [`Self::to_xml`]
    /// when fidelity matters.
    pub fn to_xml_pretty(&self) -> String {
        let mut w = XmlWriter::pretty();
        w.element(self);
        w.finish()
    }

    fn write_compact(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for a in &self.attributes {
            out.push(' ');
            out.push_str(&a.name);
            out.push_str("=\"");
            out.push_str(&escape_attr(&a.value));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                Node::Element(e) => e.write_compact(out),
                Node::Text(s) | Node::CData(s) => out.push_str(&escape_text(s)),
                Node::Comment(s) => {
                    out.push_str("<!--");
                    out.push_str(s);
                    out.push_str("-->");
                }
                Node::ProcessingInstruction { target, data } => {
                    out.push_str("<?");
                    out.push_str(target);
                    if !data.is_empty() {
                        out.push(' ');
                        out.push_str(data);
                    }
                    out.push_str("?>");
                }
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

/// A parsed document: optional prolog details plus the root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The single root element.
    pub root: Element,
    /// `version` from the XML declaration, if one was present.
    pub declared_version: Option<String>,
    /// `encoding` from the XML declaration, if one was present.
    pub declared_encoding: Option<String>,
}

impl Document {
    /// Wrap an element as a complete document with no declaration.
    pub fn with_root(root: Element) -> Self {
        Document { root, declared_version: None, declared_encoding: None }
    }

    /// Serialize the whole document with an XML declaration, compactly.
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        self.root.write_compact(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("report")
            .with_attr("id", "r1")
            .with_child(Element::new("na").with_attr("unit", "mEq/L").with_text("140"))
            .with_child(Element::new("k").with_text("4.1"))
            .with_child(Element::new("k").with_text("4.3"))
    }

    #[test]
    fn attr_lookup_and_replace() {
        let mut e = sample();
        assert_eq!(e.attr("id"), Some("r1"));
        e.set_attr("id", "r2");
        assert_eq!(e.attr("id"), Some("r2"));
        assert_eq!(e.attributes.len(), 1, "set_attr must replace, not append");
    }

    #[test]
    fn remove_attr_returns_old_value() {
        let mut e = sample();
        assert_eq!(e.remove_attr("id").as_deref(), Some("r1"));
        assert_eq!(e.attr("id"), None);
        assert_eq!(e.remove_attr("id"), None);
    }

    #[test]
    fn child_selects_first_match_only() {
        let e = sample();
        assert_eq!(e.child("k").unwrap().text(), "4.1");
        assert_eq!(e.children_named("k").count(), 2);
        assert!(e.child("cl").is_none());
    }

    #[test]
    fn text_concatenates_direct_children_only() {
        let e = Element::new("p")
            .with_text("a")
            .with_child(Element::new("b").with_text("x"))
            .with_text("c");
        assert_eq!(e.text(), "ac");
        assert_eq!(e.deep_text(), "axc");
    }

    #[test]
    fn subtree_size_counts_all_elements() {
        assert_eq!(sample().subtree_size(), 4);
        assert_eq!(Element::new("lone").subtree_size(), 1);
    }

    #[test]
    fn walk_visits_preorder_with_depth() {
        let mut seen = Vec::new();
        sample().walk(&mut |e, d| seen.push((e.name.clone(), d)));
        assert_eq!(
            seen,
            vec![
                ("report".into(), 0),
                ("na".into(), 1),
                ("k".into(), 1),
                ("k".into(), 1)
            ]
        );
    }

    #[test]
    fn empty_element_serializes_self_closing() {
        assert_eq!(Element::new("br").to_xml(), "<br/>");
    }

    #[test]
    fn serialization_escapes_attrs_and_text() {
        let e = Element::new("a").with_attr("q", "x\"y").with_text("1 < 2");
        assert_eq!(e.to_xml(), "<a q=\"x&quot;y\">1 &lt; 2</a>");
    }

    #[test]
    fn document_to_xml_has_declaration() {
        let d = Document::with_root(Element::new("r"));
        assert!(d.to_xml().starts_with("<?xml version=\"1.0\""));
        assert!(d.to_xml().ends_with("<r/>"));
    }

    #[test]
    fn comment_and_pi_serialize() {
        let mut e = Element::new("r");
        e.children.push(Node::Comment(" note ".into()));
        e.children
            .push(Node::ProcessingInstruction { target: "app".into(), data: "v=1".into() });
        assert_eq!(e.to_xml(), "<r><!-- note --><?app v=1?></r>");
    }
}
