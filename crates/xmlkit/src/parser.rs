//! A recursive-descent XML parser with position tracking.
//!
//! The parser is strict about well-formedness (balanced tags, legal names,
//! no duplicate attributes) but lenient about prolog constructs it does not
//! need: the XML declaration is read for `version`/`encoding`, DOCTYPE is
//! skipped without validation, and comments/PIs are preserved in the tree.

use crate::dom::{Attribute, Document, Element, Node};
use crate::error::{ParseError, ParseErrorKind, Position};
use crate::escape::predefined_entity;

/// Parse a complete XML document from a string.
///
/// # Errors
///
/// Returns a [`ParseError`] pinpointing the first well-formedness
/// violation.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    let mut p = Parser::new(input);
    p.document()
}

struct Parser<'a> {
    input: &'a str,
    /// Byte offset of the next unread character.
    offset: usize,
    line: u32,
    column: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, offset: 0, line: 1, column: 1 }
    }

    fn position(&self) -> Position {
        Position { line: self.line, column: self.column, offset: self.offset }
    }

    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError::new(kind, self.position())
    }

    fn rest(&self) -> &'a str {
        &self.input[self.offset..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            for _ in s.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, expected: char, what: &'static str) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == expected => {
                self.bump();
                Ok(())
            }
            Some(c) => Err(self.err(ParseErrorKind::UnexpectedChar { found: c, expected: what })),
            None => Err(self.err(ParseErrorKind::UnexpectedEof { expected: what })),
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    // ---- grammar ---------------------------------------------------------

    fn document(&mut self) -> Result<Document, ParseError> {
        let (version, encoding) = self.prolog()?;
        self.skip_misc()?;
        if self.peek().is_none() {
            return Err(self.err(ParseErrorKind::NoRootElement));
        }
        let root = self.element()?;
        self.skip_misc()?;
        if self.peek().is_some() {
            return Err(self.err(ParseErrorKind::TrailingContent));
        }
        Ok(Document { root, declared_version: version, declared_encoding: encoding })
    }

    /// Optional XML declaration; returns (version, encoding).
    fn prolog(&mut self) -> Result<(Option<String>, Option<String>), ParseError> {
        self.skip_whitespace();
        if !self.eat_str("<?xml") {
            return Ok((None, None));
        }
        let mut version = None;
        let mut encoding = None;
        loop {
            self.skip_whitespace();
            if self.eat_str("?>") {
                break;
            }
            if self.peek().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "?>" }));
            }
            let name = self.name()?;
            self.skip_whitespace();
            self.expect('=', "'=' in XML declaration")?;
            self.skip_whitespace();
            let value = self.quoted_value()?;
            match name.as_str() {
                "version" => version = Some(value),
                "encoding" => encoding = Some(value),
                _ => {} // standalone and unknown pseudo-attrs: ignore
            }
        }
        Ok((version, encoding))
    }

    /// Skip whitespace, comments, PIs, and DOCTYPE between markup at the
    /// document level.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.skip_whitespace();
            if self.rest().starts_with("<!--") {
                self.comment()?;
            } else if self.rest().starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else if self.rest().starts_with("<?") {
                self.processing_instruction()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        // Consume up to the matching '>', tracking nested '[' ... ']' for
        // an internal subset. Not validated — the SLIM system never relies
        // on DTDs.
        let consumed = self.eat_str("<!DOCTYPE");
        debug_assert!(consumed, "skip_doctype called off-position");
        let mut bracket_depth = 0usize;
        loop {
            match self.bump() {
                Some('[') => bracket_depth += 1,
                Some(']') => bracket_depth = bracket_depth.saturating_sub(1),
                Some('>') if bracket_depth == 0 => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'>' closing DOCTYPE" })),
            }
        }
    }

    fn element(&mut self) -> Result<Element, ParseError> {
        self.expect('<', "'<' starting element")?;
        let name = self.name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('/') => {
                    self.bump();
                    self.expect('>', "'>' after '/'")?;
                    return Ok(Element { name, attributes, children: Vec::new() });
                }
                Some('>') => {
                    self.bump();
                    break;
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    if attributes.iter().any(|a| a.name == attr_name) {
                        return Err(self.err(ParseErrorKind::DuplicateAttribute { name: attr_name }));
                    }
                    self.skip_whitespace();
                    self.expect('=', "'=' after attribute name")?;
                    self.skip_whitespace();
                    let value = self.quoted_value()?;
                    attributes.push(Attribute { name: attr_name, value });
                }
                None => return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'>' closing start tag" })),
            }
        }
        let children = self.content(&name)?;
        Ok(Element { name, attributes, children })
    }

    /// Parse mixed content until the matching close tag for `open_name`,
    /// consuming the close tag.
    fn content(&mut self, open_name: &str) -> Result<Vec<Node>, ParseError> {
        let mut children = Vec::new();
        let mut text = String::new();
        macro_rules! flush_text {
            () => {
                if !text.is_empty() {
                    children.push(Node::Text(std::mem::take(&mut text)));
                }
            };
        }
        loop {
            if self.rest().starts_with("</") {
                flush_text!();
                self.bump();
                self.bump();
                let close = self.name()?;
                if close != open_name {
                    return Err(self.err(ParseErrorKind::MismatchedCloseTag {
                        open: open_name.to_string(),
                        close,
                    }));
                }
                self.skip_whitespace();
                self.expect('>', "'>' closing end tag")?;
                return Ok(children);
            } else if self.rest().starts_with("<!--") {
                flush_text!();
                children.push(Node::Comment(self.comment()?));
            } else if self.rest().starts_with("<![CDATA[") {
                // CDATA merges into surrounding text for `text()` purposes
                // but is preserved as its own node.
                flush_text!();
                children.push(Node::CData(self.cdata()?));
            } else if self.rest().starts_with("<?") {
                flush_text!();
                children.push(self.processing_instruction()?);
            } else {
                match self.peek() {
                    Some('<') => {
                        flush_text!();
                        children.push(Node::Element(self.element()?));
                    }
                    Some('&') => text.push(self.reference()?),
                    Some(_) => text.push(self.bump().unwrap()),
                    None => {
                        return Err(self.err(ParseErrorKind::UnexpectedEof {
                            expected: "close tag",
                        }))
                    }
                }
            }
        }
    }

    fn comment(&mut self) -> Result<String, ParseError> {
        let consumed = self.eat_str("<!--");
        debug_assert!(consumed, "comment called off-position");
        let start = self.offset;
        loop {
            if self.rest().starts_with("-->") {
                let body = self.input[start..self.offset].to_string();
                self.eat_str("-->");
                return Ok(body);
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'-->'" }));
            }
        }
    }

    fn cdata(&mut self) -> Result<String, ParseError> {
        let consumed = self.eat_str("<![CDATA[");
        debug_assert!(consumed, "cdata called off-position");
        let start = self.offset;
        loop {
            if self.rest().starts_with("]]>") {
                let body = self.input[start..self.offset].to_string();
                self.eat_str("]]>");
                return Ok(body);
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "']]>'" }));
            }
        }
    }

    fn processing_instruction(&mut self) -> Result<Node, ParseError> {
        let consumed = self.eat_str("<?");
        debug_assert!(consumed, "processing_instruction called off-position");
        let target = self.name()?;
        self.skip_whitespace();
        let start = self.offset;
        loop {
            if self.rest().starts_with("?>") {
                let data = self.input[start..self.offset].to_string();
                self.eat_str("?>");
                return Ok(Node::ProcessingInstruction { target, data });
            }
            if self.bump().is_none() {
                return Err(self.err(ParseErrorKind::UnexpectedEof { expected: "'?>'" }));
            }
        }
    }

    /// `&name;`, `&#NN;`, or `&#xHH;` — returns the denoted character.
    fn reference(&mut self) -> Result<char, ParseError> {
        let consumed = self.eat('&');
        debug_assert!(consumed, "reference called off-position");
        let start = self.offset;
        while let Some(c) = self.peek() {
            if c == ';' {
                let body = &self.input[start..self.offset];
                self.bump();
                return resolve_reference(body)
                    .ok_or_else(|| self.err(classify_bad_reference(body)));
            }
            if !c.is_ascii_alphanumeric() && c != '#' && c != 'x' {
                break;
            }
            self.bump();
        }
        Err(self.err(ParseErrorKind::UnknownEntity {
            entity: self.input[start..self.offset].to_string(),
        }))
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.offset;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => {
                let found: String = self.rest().chars().take(8).collect();
                return Err(self.err(ParseErrorKind::InvalidName { found }));
            }
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.offset].to_string())
    }

    fn quoted_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            Some(c) => {
                return Err(self.err(ParseErrorKind::UnexpectedChar {
                    found: c,
                    expected: "quoted attribute value",
                }))
            }
            None => {
                return Err(self.err(ParseErrorKind::UnexpectedEof {
                    expected: "quoted attribute value",
                }))
            }
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some('&') => value.push(self.reference()?),
                Some(_) => value.push(self.bump().unwrap()),
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        expected: "closing quote",
                    }))
                }
            }
        }
    }
}

fn resolve_reference(body: &str) -> Option<char> {
    if let Some(num) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
        let code = u32::from_str_radix(num, 16).ok()?;
        char::from_u32(code)
    } else if let Some(num) = body.strip_prefix('#') {
        let code: u32 = num.parse().ok()?;
        char::from_u32(code)
    } else {
        predefined_entity(body)
    }
}

fn classify_bad_reference(body: &str) -> ParseErrorKind {
    if let Some(num) = body.strip_prefix('#') {
        ParseErrorKind::InvalidCharRef { reference: num.to_string() }
    } else {
        ParseErrorKind::UnknownEntity { entity: body.to_string() }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;

    #[test]
    fn minimal_document() {
        let d = parse("<r/>").unwrap();
        assert_eq!(d.root, Element::new("r"));
        assert_eq!(d.declared_version, None);
    }

    #[test]
    fn declaration_is_read() {
        let d = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?><r/>").unwrap();
        assert_eq!(d.declared_version.as_deref(), Some("1.0"));
        assert_eq!(d.declared_encoding.as_deref(), Some("UTF-8"));
    }

    #[test]
    fn nested_elements_and_attributes() {
        let d = parse(r#"<a x="1"><b y='2'>hi</b><c/></a>"#).unwrap();
        assert_eq!(d.root.attr("x"), Some("1"));
        assert_eq!(d.root.child("b").unwrap().text(), "hi");
        assert_eq!(d.root.child("b").unwrap().attr("y"), Some("2"));
        assert!(d.root.child("c").unwrap().children.is_empty());
    }

    #[test]
    fn entities_resolve_in_text_and_attrs() {
        let d = parse(r#"<a t="&lt;&amp;&quot;">&gt;&apos;&#65;&#x42;</a>"#).unwrap();
        assert_eq!(d.root.attr("t"), Some("<&\""));
        assert_eq!(d.root.text(), ">'AB");
    }

    #[test]
    fn unknown_entity_is_an_error() {
        let e = parse("<a>&nbsp;</a>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnknownEntity { ref entity } if entity == "nbsp"));
    }

    #[test]
    fn invalid_char_ref_is_an_error() {
        let e = parse("<a>&#x110000;</a>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::InvalidCharRef { .. }));
    }

    #[test]
    fn mismatched_close_tag_reports_both_names() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(
            matches!(e.kind, ParseErrorKind::MismatchedCloseTag { ref open, ref close }
                if open == "b" && close == "a")
        );
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let e = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::DuplicateAttribute { ref name } if name == "x"));
    }

    #[test]
    fn trailing_content_rejected() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn empty_input_rejected() {
        let e = parse("   ").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::NoRootElement));
    }

    #[test]
    fn comments_and_pis_preserved() {
        let d = parse("<a><!-- c --><?app data?>x</a>").unwrap();
        assert_eq!(d.root.children.len(), 3);
        assert!(matches!(d.root.children[0], Node::Comment(ref s) if s == " c "));
        assert!(matches!(
            d.root.children[1],
            Node::ProcessingInstruction { ref target, ref data } if target == "app" && data == "data"
        ));
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let d = parse("<a><![CDATA[1 < 2 & 3]]></a>").unwrap();
        assert!(matches!(d.root.children[0], Node::CData(ref s) if s == "1 < 2 & 3"));
        assert_eq!(d.root.text(), "1 < 2 & 3");
    }

    #[test]
    fn doctype_skipped_including_internal_subset() {
        let d = parse("<!DOCTYPE r [ <!ELEMENT r EMPTY> ]><r/>").unwrap();
        assert_eq!(d.root.name, "r");
    }

    #[test]
    fn error_positions_track_lines() {
        let e = parse("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(e.position.line, 2);
    }

    #[test]
    fn whitespace_between_text_kept() {
        let d = parse("<a>  two  words  </a>").unwrap();
        assert_eq!(d.root.text(), "  two  words  ");
    }

    #[test]
    fn close_tag_allows_trailing_whitespace() {
        let d = parse("<a></a  >").unwrap();
        assert_eq!(d.root.name, "a");
    }

    #[test]
    fn names_with_colon_dash_dot_digits() {
        let d = parse("<ns:a-b.c1/>").unwrap();
        assert_eq!(d.root.name, "ns:a-b.c1");
    }

    #[test]
    fn compact_serialization_roundtrips() {
        let src = r#"<pad name="Rounds"><bundle n="John &amp; Smith"><scrap pos="3,4">Na 140</scrap></bundle></pad>"#;
        let d = parse(src).unwrap();
        let d2 = parse(&d.root.to_xml()).unwrap();
        assert_eq!(d.root, d2.root);
    }
}
