//! E9 — ablation: what interning + indexing buy (DESIGN.md's called-out
//! design choice). The same selection workload against the indexed TRIM
//! store and the naive Vec-of-strings baseline; the gap should grow
//! linearly with store size for the naive store and stay near-flat for
//! the indexed one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_bench::{naive_copy, random_store};
use std::hint::black_box;
use superimposed::trim::TriplePattern;

fn select_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_select_by_subject");
    for n in [1_000usize, 10_000, 100_000] {
        let (store, subjects, _) = random_store(n, 7);
        let naive = naive_copy(&store);
        let subject_name = subjects[2].clone();
        let s = store.find_atom(&subject_name).unwrap();
        group.bench_with_input(BenchmarkId::new("indexed", n), &store, |b, store| {
            b.iter(|| black_box(store.select(&TriplePattern::default().with_subject(s))))
        });
        group.bench_with_input(BenchmarkId::new("naive_scan", n), &naive, |b, naive| {
            b.iter(|| black_box(naive.select(Some(&subject_name), None, None)))
        });
    }
    group.finish();
}

fn insert_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_insert");
    // Naive insert is O(n) per op (duplicate scan): keep sizes modest.
    for n in [500usize, 2_000] {
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| {
                let mut store = superimposed::trim::TripleStore::new();
                for i in 0..n {
                    store.insert_literal(&format!("res:{}", i % 53), "p", &i.to_string());
                }
                black_box(store)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            b.iter(|| {
                let mut store = superimposed::trim::naive::NaiveStore::new();
                for i in 0..n {
                    store.insert(&format!("res:{}", i % 53), "p", &i.to_string(), false);
                }
                black_box(store)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, select_ablation, insert_ablation);
criterion_main!(benches);
