//! Planner-aware TRIM query benches: every one of the eight pattern
//! shapes against the 50k-triple workload, plus the naive-scan baseline
//! for the two shapes the permutation indexes exist for (predicate- and
//! object-bound). `cargo run -p slim-bench --release` turns the same
//! measurements into `BENCH_trim.json`; this bench is the interactive
//! view of them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_bench::{naive_copy, random_store, shape_pattern, BENCH_TRIPLES};
use std::hint::black_box;
use superimposed::trim::PatternShape;

fn all_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("trim_query_shapes");
    let (store, subjects, properties) = random_store(BENCH_TRIPLES, 42);
    for shape in PatternShape::ALL {
        let pattern = shape_pattern(&store, shape, &subjects, &properties);
        group.bench_with_input(BenchmarkId::from_parameter(shape.name()), &store, |b, store| {
            b.iter(|| black_box(store.select(&pattern)))
        });
    }
    group.finish();
}

fn counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("trim_query_counts");
    let (store, subjects, properties) = random_store(BENCH_TRIPLES, 42);
    for shape in [PatternShape::P, PatternShape::O, PatternShape::Po] {
        let pattern = shape_pattern(&store, shape, &subjects, &properties);
        group.bench_with_input(BenchmarkId::from_parameter(shape.name()), &store, |b, store| {
            b.iter(|| black_box(store.count(&pattern)))
        });
    }
    group.finish();
}

fn naive_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("trim_query_naive");
    let (store, subjects, properties) = random_store(BENCH_TRIPLES, 42);
    let naive = naive_copy(&store);
    // The two shapes the tentpole claims ≥5× on: the old path was a
    // linear scan for anything that wasn't subject-led.
    group.bench_function("p", |b| {
        b.iter(|| black_box(naive.select_matching(None, Some(&properties[3]), None)))
    });
    group.bench_function("o", |b| {
        b.iter(|| black_box(naive.select_matching(None, None, Some((&subjects[2], true)))))
    });
    group.finish();
}

criterion_group!(benches, all_shapes, counts, naive_baseline);
criterion_main!(benches);
