//! E1 — the cost of the generic triple representation (paper §6: "The
//! trade-off for this flexibility was space efficiency of the data and
//! the cost of interpreting manipulations on SLIM Store data").
//!
//! This bench measures the *time* dimension of building a pad of N
//! scraps three ways — triple store via the DMI, naive string store,
//! native structs — and reports the space numbers once per size via
//! stderr (space itself is asserted in `examples/report_experiments`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slim_bench::{build_native_pad, build_pad, naive_copy};
use std::hint::black_box;

fn bench_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_build_pad");
    for n in [10usize, 100, 1_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("trim_dmi", n), &n, |b, &n| {
            b.iter(|| black_box(build_pad(n)))
        });
        group.bench_with_input(BenchmarkId::new("native_structs", n), &n, |b, &n| {
            b.iter(|| black_box(build_native_pad(n)))
        });
        group.bench_with_input(BenchmarkId::new("naive_strings", n), &n, |b, &n| {
            let dmi = build_pad(n);
            b.iter(|| black_box(naive_copy(dmi.store())))
        });
        // One-shot space report for EXPERIMENTS.md.
        let dmi = build_pad(n);
        let stats = dmi.store().stats();
        let naive = naive_copy(dmi.store());
        eprintln!(
            "e1[n={n}]: triples={} trim_bytes={} naive_bytes={} atoms={}",
            stats.triples,
            stats.estimated_bytes,
            naive.estimated_bytes(),
            stats.atoms
        );
    }
    group.finish();
}

criterion_group!(benches, bench_representations);
criterion_main!(benches);
