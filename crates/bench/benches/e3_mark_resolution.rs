//! E3 — mark creation and resolution latency across all six base types
//! (paper Figure 7 / §4.2), with the base-document size swept to show
//! resolution stays flat (addressing is by structure, not by scan) except
//! where the addressing scheme is inherently linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_bench::{all_kinds, populated_system};
use std::hint::black_box;

fn creation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_create_mark");
    for kind in all_kinds() {
        group.bench_function(BenchmarkId::new("kind", kind.id()), |b| {
            let mut sys = populated_system(64);
            b.iter(|| black_box(sys.pad.marks_mut().create_mark(kind).unwrap()))
        });
    }
    group.finish();
}

fn resolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_resolve_mark");
    for kind in all_kinds() {
        group.bench_function(BenchmarkId::new("kind", kind.id()), |b| {
            let mut sys = populated_system(64);
            let id = sys.pad.marks_mut().create_mark(kind).unwrap();
            b.iter(|| black_box(sys.pad.marks_mut().resolve(&id).unwrap()))
        });
    }
    group.finish();
}

fn resolution_vs_document_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_resolve_vs_doc_size");
    for scale in [16usize, 128, 1024] {
        group.bench_function(BenchmarkId::new("xml", scale), |b| {
            let mut sys = populated_system(scale);
            let id = sys.pad.marks_mut().create_mark(superimposed::DocKind::Xml).unwrap();
            b.iter(|| black_box(sys.pad.marks().extract_content(&id).unwrap()))
        });
        group.bench_function(BenchmarkId::new("spreadsheet", scale), |b| {
            let mut sys = populated_system(scale);
            let id =
                sys.pad.marks_mut().create_mark(superimposed::DocKind::Spreadsheet).unwrap();
            b.iter(|| black_box(sys.pad.marks().extract_content(&id).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, creation, resolution, resolution_vs_document_size);
criterion_main!(benches);
