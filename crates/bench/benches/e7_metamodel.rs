//! E7 — metamodel generality (paper §4.3): the same store hosts multiple
//! models; conformance-checking cost scales with instance count; models
//! encode/decode through the triple representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use superimposed::metamodel::encode::{decode_model, encode_model, InstanceWriter};
use superimposed::metamodel::{builtin, check_conformance};
use superimposed::trim::TripleStore;

fn topic_store(instances: usize) -> TripleStore {
    let model = builtin::topic_map_like();
    let mut store = TripleStore::new();
    let mut w = InstanceWriter::new(&mut store, &model);
    let mut prev = None;
    for i in 0..instances {
        let t = w.create("Topic");
        w.set_literal(t, "topicName", &format!("term {i}"));
        w.set_literal(t, "occurrence", &format!("mark:{i}"));
        if let Some(p) = prev {
            w.set_link(t, "relatedTo", p);
        }
        prev = Some(t);
    }
    store
}

fn conformance_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_conformance");
    let model = builtin::topic_map_like();
    for n in [10usize, 100, 1_000] {
        let store = topic_store(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &store, |b, store| {
            b.iter(|| {
                let report = check_conformance(store, &model);
                assert!(report.is_conformant());
                black_box(report)
            })
        });
    }
    group.finish();
}

fn model_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_model_codec");
    group.bench_function("encode_all_builtins", |b| {
        b.iter(|| {
            let mut store = TripleStore::new();
            for model in builtin::all_models() {
                encode_model(&mut store, &model);
            }
            black_box(store)
        })
    });
    let mut store = TripleStore::new();
    for model in builtin::all_models() {
        encode_model(&mut store, &model);
    }
    group.bench_function("decode_bundle_scrap", |b| {
        b.iter(|| black_box(decode_model(&store, "bundle-scrap").unwrap()))
    });
    group.finish();
}

criterion_group!(benches, conformance_check, model_encode_decode);
criterion_main!(benches);
