//! E4 — TRIM selection queries and reachability views (paper §4.4):
//! point and selection queries at three store sizes, and view closure
//! cost versus bundle nesting depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slim_bench::{nested_chain, random_store};
use std::hint::black_box;
use superimposed::trim::{TriplePattern, TripleStore};

fn selection_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_select");
    for n in [1_000usize, 10_000, 100_000] {
        let (store, subjects, properties) = random_store(n, 42);
        let s = store.find_atom(&subjects[1]).unwrap();
        let p = store.find_atom(&properties[3]).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("by_subject", n), &store, |b, store| {
            b.iter(|| black_box(store.select(&TriplePattern::default().with_subject(s))))
        });
        group.bench_with_input(BenchmarkId::new("by_property", n), &store, |b, store| {
            b.iter(|| black_box(store.select(&TriplePattern::default().with_property(p))))
        });
        group.bench_with_input(
            BenchmarkId::new("by_subject_and_property", n),
            &store,
            |b, store| {
                b.iter(|| {
                    black_box(store.select(
                        &TriplePattern::default().with_subject(s).with_property(p),
                    ))
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("count_by_property", n), &store, |b, store| {
            b.iter(|| black_box(store.count(&TriplePattern::default().with_property(p))))
        });
    }
    group.finish();
}

fn insert_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_insert");
    for n in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, &n| {
            b.iter(|| {
                let mut store = TripleStore::new();
                for i in 0..n {
                    store.insert_literal(&format!("res:{}", i % 97), "prop", &i.to_string());
                }
                black_box(store)
            })
        });
    }
    group.finish();
}

fn view_closure_vs_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_view_depth");
    for depth in [1usize, 4, 16, 64] {
        let (store, root_name) = nested_chain(depth);
        let root = store.find_atom(&root_name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(depth), &store, |b, store| {
            b.iter(|| black_box(store.view(root)))
        });
    }
    group.finish();
}

criterion_group!(benches, selection_queries, insert_throughput, view_closure_vs_depth);
criterion_main!(benches);
