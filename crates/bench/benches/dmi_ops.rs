//! DMI structural-op benches over the batched write paths: instance
//! creation (`insert_all` of the type/conformance pair plus the model
//! encoding batch), recursive deletion (`remove_all` on incoming edges),
//! and the literal-index searches that back system-wide find.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_bench::build_pad;
use std::hint::black_box;
use superimposed::slimstore::SlimPadDmi;

fn create_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmi_create");
    // Fresh DMI = one encode_model batch; the dominant cost of small pads.
    group.bench_function("fresh_dmi", |b| b.iter(|| black_box(SlimPadDmi::new())));
    for n in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("build_pad", n), &n, |b, &n| {
            b.iter(|| black_box(build_pad(n)))
        });
    }
    group.finish();
}

fn delete_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmi_delete");
    for n in [100usize, 1_000] {
        group.bench_with_input(BenchmarkId::new("delete_bundle", n), &n, |b, &n| {
            b.iter(|| {
                let mut dmi = build_pad(n);
                let bundle = dmi.bundles().remove(0);
                dmi.delete_bundle(bundle).unwrap();
                black_box(dmi)
            })
        });
    }
    group.finish();
}

fn find_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("dmi_find");
    let mut dmi = build_pad(1_000);
    let scrap = dmi.all_scraps()[0];
    dmi.add_annotation(scrap, "recheck in the morning").unwrap();
    group.bench_function("find_scraps", |b| {
        b.iter(|| black_box(dmi.find_scraps("lab value 99")))
    });
    group.bench_function("find_annotated", |b| {
        b.iter(|| black_box(dmi.find_annotated("recheck")))
    });
    group.finish();
}

criterion_group!(benches, create_ops, delete_ops, find_ops);
criterion_main!(benches);
