//! E5 — save/load through XML persistence (paper Figure 10's
//! `save(fileName)` / `load(fileName)`): serialization and parsing cost
//! versus pad size, with the xmlkit write/parse split measured
//! separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slim_bench::build_pad;
use std::hint::black_box;
use superimposed::slimstore::SlimPadDmi;

fn save_and_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_persistence");
    for n in [10usize, 100, 1_000] {
        let dmi = build_pad(n);
        let xml = dmi.save_xml();
        group.throughput(Throughput::Bytes(xml.len() as u64));
        group.bench_with_input(BenchmarkId::new("save_xml", n), &dmi, |b, dmi| {
            b.iter(|| black_box(dmi.save_xml()))
        });
        group.bench_with_input(BenchmarkId::new("load_xml", n), &xml, |b, xml| {
            b.iter(|| black_box(SlimPadDmi::load_xml(xml).unwrap()))
        });
        eprintln!("e5[n={n}]: file_bytes={}", xml.len());
    }
    group.finish();
}

fn raw_xml_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_xmlkit_split");
    let dmi = build_pad(1_000);
    let xml = dmi.save_xml();
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("parse_only", |b| {
        b.iter(|| black_box(superimposed::xmlkit::parse(&xml).unwrap()))
    });
    let doc = superimposed::xmlkit::parse(&xml).unwrap();
    group.bench_function("write_only", |b| b.iter(|| black_box(doc.root.to_xml())));
    group.finish();
}

criterion_group!(benches, save_and_load, raw_xml_split);
criterion_main!(benches);
