//! E8 — the Figure 4 scenario end to end: build the Rounds pad against
//! live base applications, save it, reload it, and resolve every mark.
//! The number the paper never gives: how long the whole user-visible
//! loop takes.

use criterion::{criterion_group, criterion_main, Criterion};
use slim_bench::populated_system;
use std::hint::black_box;
use superimposed::DocKind;

fn end_to_end(c: &mut Criterion) {
    c.bench_function("e8_figure4_cycle", |b| {
        b.iter(|| {
            let mut sys = populated_system(16);
            let bundle = sys.pad.create_bundle("John Smith", (20, 60), 600, 500, None).unwrap();
            let mut scraps = Vec::new();
            for (i, kind) in DocKind::all().into_iter().enumerate() {
                scraps.push(
                    sys.pad
                        .place_selection(kind, None, (40, 100 + 40 * i as i64), Some(bundle))
                        .unwrap(),
                );
            }
            let saved = sys.pad.save_xml();
            sys.reopen_pad(&saved).unwrap();
            let root = sys.pad.root_bundle();
            let bundle = sys.pad.dmi().bundle(root).unwrap().nested[0];
            let scraps = sys.pad.dmi().bundle(bundle).unwrap().scraps;
            for scrap in &scraps {
                black_box(sys.pad.activate(*scrap).unwrap());
            }
            black_box(sys)
        })
    });
}

criterion_group!(benches, end_to_end);
criterion_main!(benches);
