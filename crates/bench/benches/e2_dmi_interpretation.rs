//! E2 — the cost of *interpreting* manipulations through a DMI
//! (paper §6). Three tiers of the same create/update/read workload:
//! native structs (no interpretation), the hand-written SlimPadDMI
//! (fixed interpretation over triples), and the runtime-generated
//! GenericDmi (model-validated interpretation — the §4.4 future work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slim_bench::{build_native_pad, build_pad, NativeScrap};
use std::hint::black_box;
use superimposed::metamodel::builtin;
use superimposed::slimstore::generic::DmiValue;
use superimposed::GenericDmi;

const N: usize = 200;

fn create_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_create");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function(BenchmarkId::new("native", N), |b| {
        b.iter(|| black_box(build_native_pad(N)))
    });
    group.bench_function(BenchmarkId::new("handwritten_dmi", N), |b| {
        b.iter(|| black_box(build_pad(N)))
    });
    group.bench_function(BenchmarkId::new("generated_dmi", N), |b| {
        b.iter(|| {
            let mut dmi = GenericDmi::new(builtin::bundle_scrap());
            let bundle = dmi.create("Bundle").unwrap();
            dmi.set(bundle, "bundleName", DmiValue::Text("Patient".into())).unwrap();
            dmi.set(bundle, "bundlePos", DmiValue::Text("10,10".into())).unwrap();
            dmi.set(bundle, "bundleWidth", DmiValue::Text("800".into())).unwrap();
            dmi.set(bundle, "bundleHeight", DmiValue::Text("600".into())).unwrap();
            for i in 0..N {
                let scrap = dmi.create("Scrap").unwrap();
                dmi.set(scrap, "scrapName", DmiValue::Text(format!("lab value {i}"))).unwrap();
                dmi.set(scrap, "scrapPos", DmiValue::Text(format!("{},{}", i % 40, i / 40)))
                    .unwrap();
                let handle = dmi.create("MarkHandle").unwrap();
                dmi.set(handle, "markId", DmiValue::Text(format!("mark:{i}"))).unwrap();
                dmi.set(scrap, "scrapMark", DmiValue::Link(handle)).unwrap();
                dmi.set(bundle, "bundleContent", DmiValue::Link(scrap)).unwrap();
            }
            black_box(dmi)
        })
    });
    group.finish();
}

fn update_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_update_pos");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("native", |b| {
        let mut pad = build_native_pad(N);
        b.iter(|| {
            for (i, scrap) in pad.bundles[0].scraps.iter_mut().enumerate() {
                scrap.pos = (i as i64, i as i64);
            }
            black_box(&pad);
        })
    });
    group.bench_function("handwritten_dmi", |b| {
        let mut dmi = build_pad(N);
        let bundle = dmi.bundles()[0];
        let scraps = dmi.bundle(bundle).unwrap().scraps;
        b.iter(|| {
            for (i, scrap) in scraps.iter().enumerate() {
                dmi.update_scrap_pos(*scrap, (i as i64, i as i64)).unwrap();
            }
            black_box(&dmi);
        })
    });
    group.finish();
}

fn read_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_read_all");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("native", |b| {
        let pad = build_native_pad(N);
        b.iter(|| {
            let total: i64 = pad.bundles[0]
                .scraps
                .iter()
                .map(|s: &NativeScrap| s.pos.0 + s.name.len() as i64)
                .sum();
            black_box(total)
        })
    });
    group.bench_function("handwritten_dmi", |b| {
        let dmi = build_pad(N);
        let bundle = dmi.bundles()[0];
        let scraps = dmi.bundle(bundle).unwrap().scraps;
        b.iter(|| {
            let total: i64 = scraps
                .iter()
                .map(|s| {
                    let d = dmi.scrap(*s).unwrap();
                    d.pos.0 + d.name.len() as i64
                })
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, create_workload, update_workload, read_workload);
criterion_main!(benches);
