//! `wal-verify`: offline fsck for a logged pad artifact — the sealed
//! snapshot, its sibling `.wal` log, and the `"marks"` sidecar records
//! riding in the log's frames.
//!
//! Recovery (`PadEngine::open_logged`) *repairs* as it reads: it
//! truncates torn tails, discards stale generations, and sweeps temp
//! files. This tool is the read-only twin: it walks the same bytes with
//! the same checks — seal CRC, log header magic/version, per-frame
//! magic + length + CRC32 + sequence contiguity, snapshot/log bind,
//! record-level payload decoding, sidecar UTF-8 + XML parse — and
//! *mutates nothing*, reporting every finding as a typed fsck line.
//!
//! * `cargo run -p slim-bench --bin wal-verify -- PATH/pad.xml` —
//!   verify a real on-disk pair; exit 1 if any damage was found.
//! * `-- --self-test` — build a known-good pair in memory, verify it,
//!   then damage it in four distinct ways and check each is caught.

use std::path::Path;
use superimposed::marks::MarkManager;
use superimposed::slimio::{check_seal, crc32, scan_wal, Integrity, MemVfs, StdVfs, Vfs};
use superimposed::slimpad::PadEngine;
use superimposed::trim::{verify_frame_payload, StoreLog, TripleStore};

/// The sidecar key the pad engine commits its mark store under.
const MARKS_AUX_KEY: &str = "marks";

/// Where one finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Component {
    /// The sealed snapshot file.
    Snapshot,
    /// The log file as a whole (header, tail, binding).
    Log,
    /// One log frame, by sequence number.
    Frame(u64),
    /// The `"marks"` sidecar payload (newest record wins).
    Sidecar,
}

impl std::fmt::Display for Component {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Component::Snapshot => write!(f, "snapshot"),
            Component::Log => write!(f, "log"),
            Component::Frame(seq) => write!(f, "frame {seq}"),
            Component::Sidecar => write!(f, "sidecar"),
        }
    }
}

/// How bad one finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Observation only; the pair is still crash-consistent.
    Note,
    /// Recovery would have to repair or discard something here.
    Damage,
}

/// One line of the fsck report.
#[derive(Debug, Clone)]
pub struct Finding {
    pub severity: Severity,
    pub component: Component,
    pub message: String,
}

/// Everything the walk established about the pair.
#[derive(Debug, Default)]
pub struct FsckReport {
    pub findings: Vec<Finding>,
    /// Triples in the parsed snapshot.
    pub snapshot_triples: usize,
    /// Valid frames in the log.
    pub frames: usize,
    /// Insert/remove records across all valid frames.
    pub ops: usize,
    /// `"marks"` sidecar records seen (the newest is the live one).
    pub sidecar_records: usize,
    /// Marks in the newest sidecar record, if one parsed.
    pub sidecar_marks: Option<usize>,
}

impl FsckReport {
    fn note(&mut self, component: Component, message: impl Into<String>) {
        self.findings.push(Finding {
            severity: Severity::Note,
            component,
            message: message.into(),
        });
    }

    fn damage(&mut self, component: Component, message: impl Into<String>) {
        self.findings.push(Finding {
            severity: Severity::Damage,
            component,
            message: message.into(),
        });
    }

    /// True when recovery would have to repair or discard anything.
    pub fn damaged(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Damage)
    }

    /// Render the report as fsck lines plus a verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "snapshot: {} triple(s); log: {} frame(s), {} store op(s); \
             sidecar: {} record(s){}\n",
            self.snapshot_triples,
            self.frames,
            self.ops,
            self.sidecar_records,
            match self.sidecar_marks {
                Some(n) => format!(", {n} mark(s) live"),
                None => String::new(),
            },
        ));
        for f in &self.findings {
            let tag = match f.severity {
                Severity::Note => "note",
                Severity::Damage => "DAMAGE",
            };
            out.push_str(&format!("{tag}: {}: {}\n", f.component, f.message));
        }
        out.push_str(if self.damaged() { "verdict: DAMAGED\n" } else { "verdict: clean\n" });
        out
    }
}

/// Walk the snapshot + log + sidecar at `snapshot_path` without
/// modifying anything on `vfs`.
pub fn verify_pair(vfs: &dyn Vfs, snapshot_path: &Path) -> FsckReport {
    let mut report = FsckReport::default();

    // ---- snapshot: seal, UTF-8, canonical parse ---------------------
    let snapshot_bytes = if vfs.exists(snapshot_path) {
        match vfs.read(snapshot_path) {
            Ok(bytes) => Some(bytes),
            Err(e) => {
                report.damage(Component::Snapshot, format!("unreadable: {e}"));
                None
            }
        }
    } else {
        report.note(Component::Snapshot, "missing (pad was never compacted or saved)");
        None
    };
    if let Some(bytes) = &snapshot_bytes {
        match std::str::from_utf8(bytes) {
            Ok(text) => {
                let (integrity, payload) = check_seal(text);
                match integrity {
                    Integrity::Verified => {}
                    Integrity::Unsealed => {
                        report.note(Component::Snapshot, "no seal footer (legacy artifact)")
                    }
                    Integrity::Corrupt => report.damage(
                        Component::Snapshot,
                        "seal footer damaged or checksum mismatch",
                    ),
                }
                // A logged pad snapshot is a `<slimpad-file>`; accept a
                // bare `<trim>` store too so the fsck covers both.
                match PadEngine::load_xml(payload, MarkManager::new()) {
                    Ok(engine) => report.snapshot_triples = engine.dmi().store().len(),
                    Err(pad_err) => match TripleStore::from_xml(payload) {
                        Ok(store) => report.snapshot_triples = store.len(),
                        Err(_) => report.damage(
                            Component::Snapshot,
                            format!("payload does not parse: {pad_err}"),
                        ),
                    },
                }
            }
            Err(e) => report.damage(Component::Snapshot, format!("not valid UTF-8: {e}")),
        }
    }

    // ---- log: header, frames, binding -------------------------------
    let wal_path = StoreLog::wal_path(snapshot_path);
    if !vfs.exists(&wal_path) {
        report.note(Component::Log, "missing (snapshot-only state; nothing to replay)");
        return report;
    }
    let log_bytes = match vfs.read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) => {
            report.damage(Component::Log, format!("unreadable: {e}"));
            return report;
        }
    };
    let scan = match scan_wal(&log_bytes) {
        Ok(scan) => scan,
        Err(e) => {
            report.damage(Component::Log, format!("header rejected: {e}"));
            return report;
        }
    };
    report.frames = scan.frames.len();
    if scan.torn_bytes > 0 {
        report.damage(
            Component::Log,
            format!(
                "{} torn byte(s) past the last valid frame (recovery would truncate at {})",
                scan.torn_bytes, scan.valid_len
            ),
        );
    }
    let disk_bind = match &snapshot_bytes {
        Some(bytes) => crc32(bytes),
        None => crc32(b""),
    };
    if scan.bind_crc != disk_bind {
        report.damage(
            Component::Log,
            format!(
                "bind crc {:08x} does not match the snapshot on disk ({:08x}): \
                 stale generation, recovery would discard all {} frame(s)",
                scan.bind_crc,
                disk_bind,
                scan.frames.len()
            ),
        );
    }

    // ---- frames: record-level decode, sidecar collection ------------
    let mut newest_sidecar: Option<(u64, Vec<u8>)> = None;
    for frame in &scan.frames {
        match verify_frame_payload(frame.seq, &frame.payload) {
            Ok(summary) => {
                report.ops += summary.inserts + summary.removes;
                for key in summary.aux_keys {
                    if key == MARKS_AUX_KEY {
                        report.sidecar_records += 1;
                        // Replay is last-write-wins; mirror that here.
                        newest_sidecar = Some((frame.seq, sidecar_value(&frame.payload)));
                    } else {
                        report.note(
                            Component::Frame(frame.seq),
                            format!("unrecognized aux key {key:?} (ignored by replay)"),
                        );
                    }
                }
            }
            Err(e) => report.damage(Component::Frame(frame.seq), format!("payload rejected: {e}")),
        }
    }

    // ---- sidecar: UTF-8 + mark-store parse --------------------------
    if let Some((seq, value)) = newest_sidecar {
        match std::str::from_utf8(&value) {
            Ok(xml) => {
                let mut manager = MarkManager::new();
                match manager.load_xml(xml) {
                    Ok(()) => report.sidecar_marks = Some(manager.len()),
                    Err(e) => report.damage(
                        Component::Sidecar,
                        format!("mark store in frame {seq} does not parse: {e}"),
                    ),
                }
            }
            Err(e) => report.damage(
                Component::Sidecar,
                format!("mark store in frame {seq} is not valid UTF-8: {e}"),
            ),
        }
    }
    report
}

/// Extract the newest `"marks"` aux value from an already-validated
/// frame payload by re-walking its records. The payload passed
/// [`verify_frame_payload`], so the cursor arithmetic cannot fail.
fn sidecar_value(payload: &[u8]) -> Vec<u8> {
    const REC_AUX: u8 = 2;
    let mut at = 0usize;
    let mut newest = Vec::new();
    let read_len = |payload: &[u8], at: &mut usize| -> usize {
        let len = u32::from_le_bytes(payload[*at..*at + 4].try_into().unwrap()) as usize;
        *at += 4;
        len
    };
    while at < payload.len() {
        let tag = payload[at];
        at += 1;
        if tag == REC_AUX {
            let key_len = read_len(payload, &mut at);
            let key = &payload[at..at + key_len];
            at += key_len;
            let val_len = read_len(payload, &mut at);
            if key == MARKS_AUX_KEY.as_bytes() {
                newest = payload[at..at + val_len].to_vec();
            }
            at += val_len;
        } else {
            // Insert/remove record: subject, property, kind byte, object.
            let s_len = read_len(payload, &mut at);
            at += s_len;
            let p_len = read_len(payload, &mut at);
            at += p_len + 1;
            let o_len = read_len(payload, &mut at);
            at += o_len;
        }
    }
    newest
}

// ---------------------------------------------------------------------
// Self-test: build a pair in memory, verify, damage, verify again
// ---------------------------------------------------------------------

/// Build a known-good logged pad (snapshot + 2-frame log + marks
/// sidecar) on `vfs` at `path`.
fn build_fixture(vfs: &dyn Vfs, path: &Path) {
    use superimposed::basedocs::{textdoc::TextTarget, Span, TextAddress};
    use superimposed::marks::MarkAddress;

    let mut engine = PadEngine::new("fsck-fixture").expect("fresh pad");
    engine.enable_logging(vfs, path).expect("enable logging");
    let bundle = engine.create_bundle("Rounds", (10, 10), 160, 120, None).expect("bundle");
    let mark = engine
        .marks_mut()
        .create_mark_at(MarkAddress::Text(TextAddress {
            file_name: "notes.txt".into(),
            target: TextTarget::Span { paragraph: 0, span: Span::new(0, 4) },
        }))
        .expect("mint mark");
    engine.place_mark(&mark, Some("vitals"), (20, 20), Some(bundle)).expect("place");
    engine.commit(vfs).expect("commit 1");
    engine.create_bundle("Labs", (30, 30), 160, 120, None).expect("bundle 2");
    engine.commit(vfs).expect("commit 2");
}

/// Clean fixture plus four damage drills; panics (exit 101) on any
/// missed detection.
fn self_test() {
    let snap = Path::new("fsck/pad.xml");
    let wal = StoreLog::wal_path(snap);

    let vfs = MemVfs::new();
    build_fixture(&vfs, snap);
    let clean = verify_pair(&vfs, snap);
    print!("{}", clean.render());
    assert!(!clean.damaged(), "clean fixture reported damage:\n{}", clean.render());
    assert!(clean.frames >= 2, "fixture should commit at least two frames");
    assert_eq!(clean.sidecar_marks, Some(1), "fixture sidecar should carry one mark");
    let pristine_log = vfs.read(&wal).expect("log exists");
    let pristine_snap = vfs.read(snap).expect("snapshot exists");

    // Drill 1: flip one byte inside the last frame's payload.
    let mut torn = pristine_log.clone();
    let at = torn.len() - 3;
    torn[at] ^= 0x40;
    vfs.write(&wal, &torn).expect("inject");
    assert!(verify_pair(&vfs, snap).damaged(), "flipped frame byte went undetected");

    // Drill 2: truncate the log mid-frame.
    vfs.write(&wal, &pristine_log[..pristine_log.len() - 5]).expect("inject");
    assert!(verify_pair(&vfs, snap).damaged(), "truncated tail went undetected");

    // Drill 3: corrupt the snapshot seal (and thereby the log binding).
    let mut bad_snap = pristine_snap.clone();
    let mid = bad_snap.len() / 2;
    bad_snap[mid] ^= 0x01;
    vfs.write(&wal, &pristine_log).expect("restore");
    vfs.write(snap, &bad_snap).expect("inject");
    assert!(verify_pair(&vfs, snap).damaged(), "snapshot corruption went undetected");

    // Drill 4: stale generation — snapshot rewritten, log left behind.
    let mut grown = pristine_snap.clone();
    grown.extend_from_slice(b"\n");
    vfs.write(snap, &grown).expect("inject");
    assert!(verify_pair(&vfs, snap).damaged(), "stale log binding went undetected");

    println!("self-test: clean pair verifies, all 4 damage drills detected");
}

fn usage() -> ! {
    eprintln!("usage: wal-verify SNAPSHOT_PATH | --self-test");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.as_slice() {
        [flag] if flag == "--self-test" => self_test(),
        [path] => {
            let report = verify_pair(&StdVfs, Path::new(path));
            print!("{}", report.render());
            if report.damaged() {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAP: &str = "fsck/pad.xml";

    #[test]
    fn clean_pair_verifies() {
        let vfs = MemVfs::new();
        build_fixture(&vfs, Path::new(SNAP));
        let report = verify_pair(&vfs, Path::new(SNAP));
        assert!(!report.damaged(), "{}", report.render());
        assert!(report.frames >= 2);
        assert!(report.ops > 0);
        assert_eq!(report.sidecar_marks, Some(1));
    }

    #[test]
    fn missing_pair_is_a_note_not_damage() {
        let vfs = MemVfs::new();
        let report = verify_pair(&vfs, Path::new(SNAP));
        assert!(!report.damaged());
        assert_eq!(report.frames, 0);
    }

    #[test]
    fn snapshot_without_log_is_clean() {
        let vfs = MemVfs::new();
        build_fixture(&vfs, Path::new(SNAP));
        vfs.remove(Path::new(&StoreLog::wal_path(Path::new(SNAP)))).expect("drop log");
        let report = verify_pair(&vfs, Path::new(SNAP));
        assert!(!report.damaged(), "{}", report.render());
    }

    #[test]
    fn frame_bitflip_is_damage() {
        let vfs = MemVfs::new();
        build_fixture(&vfs, Path::new(SNAP));
        let wal = StoreLog::wal_path(Path::new(SNAP));
        let mut bytes = vfs.read(&wal).expect("log");
        let at = bytes.len() - 2;
        bytes[at] ^= 0x10;
        vfs.write(&wal, &bytes).expect("inject");
        let report = verify_pair(&vfs, Path::new(SNAP));
        assert!(report.damaged(), "{}", report.render());
    }

    #[test]
    fn stale_generation_is_damage() {
        let vfs = MemVfs::new();
        build_fixture(&vfs, Path::new(SNAP));
        let mut snap_bytes = vfs.read(Path::new(SNAP)).expect("snapshot");
        snap_bytes.push(b' ');
        vfs.write(Path::new(SNAP), &snap_bytes).expect("inject");
        let report = verify_pair(&vfs, Path::new(SNAP));
        assert!(report.damaged(), "{}", report.render());
    }

    #[test]
    fn self_test_runs_clean() {
        self_test();
    }
}
