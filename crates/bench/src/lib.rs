//! Shared workload builders for the experiment benches (see DESIGN.md §5
//! for the experiment index E1–E9).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use superimposed::basedocs::pdfdoc::PdfDocument;
use superimposed::basedocs::slides::{ShapeKind, Slide, SlideDeck};
use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::basedocs::textdoc::TextDocument;
use superimposed::slimstore::SlimPadDmi;
use superimposed::trim::naive::NaiveStore;
use superimposed::trim::{PatternShape, TriplePattern, TripleStore, Value};
use superimposed::{DocKind, SuperimposedSystem};

/// Store size for the planner baseline (`BENCH_trim.json` and the
/// `trim_query` bench): the 50k-triple point the tentpole's ≥5× claim is
/// made at.
pub const BENCH_TRIPLES: usize = 50_000;

/// Build a pad with one bundle of `n` scraps through the hand-written DMI.
pub fn build_pad(n: usize) -> SlimPadDmi {
    let mut dmi = SlimPadDmi::new();
    let bundle = dmi.create_bundle("Patient", (10, 10), 800, 600);
    dmi.create_slim_pad("Rounds", Some(bundle)).unwrap();
    for i in 0..n {
        let scrap = dmi
            .create_scrap(
                &format!("lab value {i}"),
                (20 + (i as i64 % 40) * 15, 40 + (i as i64 / 40) * 25),
                &format!("mark:{i}"),
            )
            .unwrap();
        dmi.add_scrap(bundle, scrap).unwrap();
    }
    dmi
}

/// The native-struct baseline the DMI competes against in E2: plain Rust
/// data with direct field manipulation.
#[derive(Debug, Default, Clone)]
pub struct NativePad {
    pub name: String,
    pub bundles: Vec<NativeBundle>,
}

/// Native bundle for the E2 baseline.
#[derive(Debug, Default, Clone)]
pub struct NativeBundle {
    pub name: String,
    pub pos: (i64, i64),
    pub size: (i64, i64),
    pub scraps: Vec<NativeScrap>,
}

/// Native scrap for the E2 baseline.
#[derive(Debug, Default, Clone)]
pub struct NativeScrap {
    pub name: String,
    pub pos: (i64, i64),
    pub mark_id: String,
}

/// Build the same pad as [`build_pad`] with plain structs.
pub fn build_native_pad(n: usize) -> NativePad {
    let mut bundle = NativeBundle {
        name: "Patient".into(),
        pos: (10, 10),
        size: (800, 600),
        scraps: Vec::with_capacity(n),
    };
    for i in 0..n {
        bundle.scraps.push(NativeScrap {
            name: format!("lab value {i}"),
            pos: (20 + (i as i64 % 40) * 15, 40 + (i as i64 / 40) * 25),
            mark_id: format!("mark:{i}"),
        });
    }
    NativePad { name: "Rounds".into(), bundles: vec![bundle] }
}

/// A random triple store of `n` triples over a bounded vocabulary, for
/// the E4/E9 query workloads. Returns the store plus the subject and
/// property vocabularies so queries can draw matching patterns.
pub fn random_store(n: usize, seed: u64) -> (TripleStore, Vec<String>, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let subjects: Vec<String> = (0..(n / 8).max(4)).map(|i| format!("res:{i}")).collect();
    let properties: Vec<String> = (0..24).map(|i| format!("prop{i}")).collect();
    let mut store = TripleStore::new();
    while store.len() < n {
        let s = &subjects[rng.gen_range(0..subjects.len())];
        let p = &properties[rng.gen_range(0..properties.len())];
        if rng.gen_bool(0.3) {
            let o = &subjects[rng.gen_range(0..subjects.len())];
            store.insert_resource(s, p, o);
        } else {
            store.insert_literal(s, p, &format!("value {}", rng.gen_range(0..n)));
        }
    }
    (store, subjects, properties)
}

/// The canonical query pattern of one shape over [`random_store`]'s
/// vocabulary: subject `res:1`, property `prop3`, object the resource
/// `res:2` — whichever of those the shape binds. Both the criterion
/// benches and the `BENCH_trim.json` reporter draw from here so their
/// numbers describe the same queries.
pub fn shape_pattern(
    store: &TripleStore,
    shape: PatternShape,
    subjects: &[String],
    properties: &[String],
) -> TriplePattern {
    let mut pattern = TriplePattern::default();
    if shape.binds_subject() {
        pattern = pattern.with_subject(store.find_atom(&subjects[1]).expect("bench subject"));
    }
    if shape.binds_property() {
        pattern = pattern.with_property(store.find_atom(&properties[3]).expect("bench property"));
    }
    if shape.binds_object() {
        pattern =
            pattern.with_object(Value::Resource(store.find_atom(&subjects[2]).expect("bench object")));
    }
    pattern
}

/// Nested-chain length inside [`join_store`] — the unselective
/// worst-case join `(?a nested ?b) ⋈ (?b nested ?c)` walks it. Long
/// enough that the naive evaluator's quadratic cross product dwarfs the
/// engine's near-linear run intersections.
pub const JOIN_CHAIN: usize = 4_000;

/// A pad-shaped store for the conjunctive-join benches: `n` scraps
/// spread over `n/64` bundles (membership, name, mark handle, mark id,
/// and a mark-to-document link per scrap — five triples each), plus a
/// [`JOIN_CHAIN`]-long `nested` chain for the unselective worst case.
/// Returns the store; the join queries bind `bundle:0` and `doc:0`.
pub fn join_store(n: usize) -> TripleStore {
    let mut store = TripleStore::new();
    let bundles = (n / 64).max(1);
    for i in 0..n {
        let b = format!("bundle:{}", i % bundles);
        let s = format!("scrap:{i}");
        let m = format!("markh:{i}");
        store.insert_resource(&b, "bundleContent", &s);
        store.insert_literal(&s, "scrapName", &format!("lab value {i}"));
        store.insert_resource(&s, "scrapMark", &m);
        store.insert_literal(&m, "markId", &format!("mark:{i}"));
        store.insert_resource(&m, "markDoc", &format!("doc:{}", i % 8));
    }
    for i in 0..JOIN_CHAIN {
        store.insert_resource(&format!("chain:{i}"), "nested", &format!("chain:{}", i + 1));
    }
    store
}

/// The naive-store copy of a triple store, for E9.
pub fn naive_copy(store: &TripleStore) -> NaiveStore {
    let mut naive = NaiveStore::new();
    for t in store.iter() {
        naive.insert(
            store.resolve(t.subject),
            store.resolve(t.property),
            store.value_text(t.object),
            t.object.is_resource(),
        );
    }
    naive
}

/// A chain of `depth` nested bundles for the E4 view-closure sweep.
/// Returns the raw store and the root bundle's resource name.
pub fn nested_chain(depth: usize) -> (TripleStore, String) {
    let mut dmi = SlimPadDmi::new();
    let root = dmi.create_bundle("level 0", (0, 0), 1000, 1000);
    let mut parent = root;
    for d in 1..depth {
        let b = dmi.create_bundle(&format!("level {d}"), (0, 0), 10, 10);
        dmi.add_nested_bundle(parent, b).unwrap();
        parent = b;
    }
    let name = dmi.store().resolve(root.resource()).to_string();
    let store = TripleStore::from_xml(&dmi.save_xml()).expect("round-trip");
    (store, name)
}

/// Boot a system with one document per base kind, sized by `scale`
/// (rows/elements/lines per document), with a selection made in each —
/// the E3 and E8 substrate.
pub fn populated_system(scale: usize) -> SuperimposedSystem {
    let sys = SuperimposedSystem::new("bench").unwrap();

    let mut wb = Workbook::new("meds.xls");
    {
        let sheet = wb.sheet_mut("Sheet1").unwrap();
        for r in 0..scale {
            sheet.set_a1(&format!("A{}", r + 1), &format!("drug {r}")).unwrap();
            sheet.set_a1(&format!("B{}", r + 1), &format!("{}", r * 10)).unwrap();
        }
    }
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();

    let mut xml_body = String::from("<labs>");
    for i in 0..scale {
        xml_body.push_str(&format!("<v id='x{i}'>{i}</v>"));
    }
    xml_body.push_str("</labs>");
    sys.xml.borrow_mut().open_text("labs.xml", &xml_body).unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/v[1]").unwrap();

    let paragraphs: Vec<String> =
        (0..scale.max(1)).map(|i| format!("Paragraph {i} of the progress note.")).collect();
    sys.text
        .borrow_mut()
        .open(TextDocument::from_text("note.doc", &paragraphs.join("\n\n")))
        .unwrap();
    sys.text.borrow_mut().select_span("note.doc", 0, 0, 9).unwrap();

    let mut html_body = String::from("<html><body>");
    for i in 0..scale {
        html_body.push_str(&format!("<p id='p{i}'>paragraph {i}</p>"));
    }
    html_body.push_str("</body></html>");
    sys.html.borrow_mut().load("page.html", &html_body).unwrap();
    sys.html.borrow_mut().select_anchor("page.html", "p0").unwrap();

    let prose: String =
        (0..scale).map(|i| format!("Sentence number {i} of the guideline. ")).collect();
    sys.pdf.borrow_mut().open(PdfDocument::paginate("guide.pdf", &prose, 60, 40)).unwrap();
    sys.pdf.borrow_mut().select_found("guide.pdf", "Sentence").unwrap();

    let mut deck = SlideDeck::new("deck.ppt");
    for s in 0..scale.max(1) {
        let mut slide = Slide::new();
        slide.add_shape("title", ShapeKind::Title, format!("Slide {s}")).unwrap();
        deck.add_slide(slide);
    }
    sys.slides.borrow_mut().open(deck).unwrap();
    sys.slides.borrow_mut().select("deck.ppt", 0, "title").unwrap();

    sys
}

/// All six kinds, for per-kind parameterized benches.
pub fn all_kinds() -> [DocKind; 6] {
    DocKind::all()
}
