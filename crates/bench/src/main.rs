//! `BENCH_trim.json` reporter: measure every pattern shape against the
//! 50k-triple workload (indexed store vs naive linear scan) and every
//! conjunctive-join shape against a pad-shaped store of the same size
//! (merge-join engine vs naive cross-product evaluator), then write (or
//! gate against) the committed baseline.
//!
//! * `cargo run -p slim-bench --release` — full run, writes
//!   `BENCH_trim.json` in the current directory.
//! * `-- --quick` — shorter per-measurement budget for CI smoke runs.
//! * `-- --check BENCH_trim.json` — additionally gate: predicate- and
//!   object-bound speedups must stay ≥ 5× and must not fall below half
//!   of the committed baseline's speedup (a machine-independent ratio,
//!   unlike raw latencies).
//! * `-- --out PATH` — write the report somewhere else.

use slim_bench::{join_store, naive_copy, random_store, shape_pattern, BENCH_TRIPLES};
use std::hint::black_box;
use std::time::Instant;
use superimposed::trim::{naive_join, ConjQuery, PatternShape, TripleStore};

/// Shapes the ≥5× floor and the regression gate apply to: the tentpole's
/// claim is about queries the pre-index store had to answer by scanning.
const GATED_SHAPES: [PatternShape; 2] = [PatternShape::P, PatternShape::O];
const SPEEDUP_FLOOR: f64 = 5.0;
/// `--check` fails if a gated speedup drops below baseline/this factor.
const REGRESSION_FACTOR: f64 = 2.0;

/// Shapes known to run *slower* than the naive scan, tracked instead of
/// silenced: they are exempt from the ≥5× floor but still gated against
/// the committed baseline, so the known ratio cannot quietly get worse.
/// Each entry carries the issue note explaining why it is allowed.
struct AllowedRegression {
    shape: PatternShape,
    note: &'static str,
}

const ALLOWED_REGRESSIONS: [AllowedRegression; 1] = [AllowedRegression {
    shape: PatternShape::Unbound,
    note: "unbound full scan runs at ~0.3x of the naive Vec scan: iterating \
           the BTreeSet index pointer-chases where the Vec streams. Tracked \
           (ROADMAP: dense sidecar for shape-unbound scans); gated against \
           the baseline so it cannot silently degrade further.",
}];

/// Conjunctive joins measured against [`naive_join`], the index-free
/// cross-product evaluator. All three are gated at the same ≥5× floor:
/// the engine's claim is that merge joins on sorted runs beat
/// materialized nested loops even on the unselective worst case.
struct JoinShape {
    name: &'static str,
    build: fn(&TripleStore) -> ConjQuery,
}

const JOIN_SHAPES: [JoinShape; 3] = [
    JoinShape { name: "bundle_membership", build: bundle_membership },
    JoinShape { name: "mark_target", build: mark_target },
    JoinShape { name: "chain_unselective", build: chain_unselective },
];

/// 2-pattern membership join: `(bundle:0 bundleContent ?s) ⋈ (?s scrapName ?n)`.
fn bundle_membership(store: &TripleStore) -> ConjQuery {
    let b = store.find_atom("bundle:0").expect("join store bundle");
    let content = store.find_atom("bundleContent").expect("property");
    let name = store.find_atom("scrapName").expect("property");
    let mut q = ConjQuery::new();
    let (s, n) = (q.var("s"), q.var("n"));
    q.pattern(b, content, s).pattern(s, name, n);
    q
}

/// 3-pattern mark-target join:
/// `(?s scrapMark ?m) ⋈ (?m markDoc doc:0) ⋈ (?s scrapName ?n)`.
fn mark_target(store: &TripleStore) -> ConjQuery {
    let mark = store.find_atom("scrapMark").expect("property");
    let doc_p = store.find_atom("markDoc").expect("property");
    let doc = store.find_atom("doc:0").expect("join store doc");
    let name = store.find_atom("scrapName").expect("property");
    let mut q = ConjQuery::new();
    let (s, m, n) = (q.var("s"), q.var("m"), q.var("n"));
    q.pattern(s, mark, m).pattern(m, doc_p, doc).pattern(s, name, n);
    q
}

/// Unselective worst case: `(?a nested ?b) ⋈ (?b nested ?c)` over the
/// 1000-bundle chain — no constant narrows either pattern.
fn chain_unselective(store: &TripleStore) -> ConjQuery {
    let nested = store.find_atom("nested").expect("property");
    let mut q = ConjQuery::new();
    let (a, b, c) = (q.var("a"), q.var("b"), q.var("c"));
    q.pattern(a, nested, b).pattern(b, nested, c);
    q
}

struct Args {
    quick: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, out: "BENCH_trim.json".to_string(), check: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--check" => args.check = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!("usage: slim-bench [--quick] [--out PATH] [--check BASELINE_PATH]");
    std::process::exit(2)
}

/// Nanoseconds per call: warm once, size the batch to roughly
/// `budget_ms`, then take the best of three batches (best-of counters
/// scheduler noise; these are pure in-memory queries).
fn time_ns(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let once = probe.elapsed().as_nanos().max(1);
    let iters = ((budget_ms as u128 * 1_000_000) / once).clamp(1, 100_000) as u32;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

struct ShapeResult {
    shape: PatternShape,
    plan: String,
    hits: usize,
    indexed_ns: f64,
    naive_ns: f64,
}

impl ShapeResult {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.indexed_ns.max(1.0)
    }
}

fn measure(quick: bool) -> Vec<ShapeResult> {
    let budget_ms = if quick { 20 } else { 200 };
    let (store, subjects, properties) = random_store(BENCH_TRIPLES, 42);
    let naive = naive_copy(&store);
    let naive_args = |shape: PatternShape| {
        (
            shape.binds_subject().then_some(subjects[1].as_str()),
            shape.binds_property().then_some(properties[3].as_str()),
            shape.binds_object().then_some((subjects[2].as_str(), true)),
        )
    };
    PatternShape::ALL
        .into_iter()
        .map(|shape| {
            let pattern = shape_pattern(&store, shape, &subjects, &properties);
            let (ns, np, no) = naive_args(shape);
            let hits = store.count(&pattern);
            assert_eq!(
                hits,
                naive.select_matching(ns, np, no).len(),
                "indexed and naive stores disagree on shape {} — refusing to benchmark a wrong answer",
                shape.name()
            );
            let indexed_ns = time_ns(budget_ms, || {
                black_box(store.select(black_box(&pattern)));
            });
            let naive_ns = time_ns(budget_ms, || {
                black_box(naive.select_matching(black_box(ns), np, no));
            });
            ShapeResult {
                shape,
                plan: store.explain(&pattern).to_string(),
                hits,
                indexed_ns,
                naive_ns,
            }
        })
        .collect()
}

struct JoinResult {
    name: &'static str,
    plan: String,
    hits: usize,
    indexed_ns: f64,
    naive_ns: f64,
}

impl JoinResult {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.indexed_ns.max(1.0)
    }
}

fn measure_joins(quick: bool) -> Vec<JoinResult> {
    let budget_ms = if quick { 20 } else { 200 };
    // 5 triples per scrap: the join store lands at the same ~50k-triple
    // point the pattern shapes are measured at.
    let store = join_store(BENCH_TRIPLES / 5);
    JOIN_SHAPES
        .iter()
        .map(|shape| {
            let q = (shape.build)(&store);
            let rows = q.solve(&store).expect("well-formed join query");
            assert_eq!(
                rows,
                naive_join(&store, &q).expect("well-formed join query"),
                "engine and naive evaluator disagree on join `{}` — refusing to \
                 benchmark a wrong answer",
                shape.name
            );
            let indexed_ns = time_ns(budget_ms, || {
                black_box(q.solve(black_box(&store)).expect("solves"));
            });
            let naive_ns = time_ns(budget_ms, || {
                black_box(naive_join(black_box(&store), &q).expect("solves"));
            });
            // First line of the join tree only: keeps the report's
            // line-oriented JSON (and its string-scanning reader) happy.
            let plan = store
                .explain_join(&q)
                .expect("plans")
                .lines()
                .next()
                .unwrap_or_default()
                .to_string();
            JoinResult { name: shape.name, plan, hits: rows.len(), indexed_ns, naive_ns }
        })
        .collect()
}

fn render_json(results: &[ShapeResult], joins: &[JoinResult], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"n_triples\": {BENCH_TRIPLES},\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str("  \"shapes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"plan\": \"{}\", \"hits\": {}, \
             \"indexed_ns\": {:.1}, \"naive_ns\": {:.1}, \"speedup\": {:.1}}}{}\n",
            r.shape.name(),
            r.plan,
            r.hits,
            r.indexed_ns,
            r.naive_ns,
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"joins\": [\n");
    for (i, r) in joins.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"join\": \"{}\", \"plan\": \"{}\", \"hits\": {}, \
             \"indexed_ns\": {:.1}, \"naive_ns\": {:.1}, \"speedup\": {:.1}}}{}\n",
            r.name,
            r.plan,
            r.hits,
            r.indexed_ns,
            r.naive_ns,
            r.speedup(),
            if i + 1 == joins.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"allowed_regressions\": [\n");
    for (i, a) in ALLOWED_REGRESSIONS.iter().enumerate() {
        let r = results.iter().find(|r| r.shape == a.shape).expect("measured");
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"allow_regression\": true, \"ratio\": {:.1}, \
             \"note\": \"{}\"}}{}\n",
            a.shape.name(),
            r.speedup(),
            a.note,
            if i + 1 == ALLOWED_REGRESSIONS.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull `"speedup": X` for one shape out of a baseline report. String
/// scanning instead of a JSON dependency: the file is machine-written by
/// this binary in a fixed shape.
fn baseline_speedup(baseline: &str, shape: PatternShape) -> Option<f64> {
    let marker = format!("\"shape\": \"{}\"", shape.name());
    let line = baseline.lines().find(|l| l.contains(&marker))?;
    let rest = line.split("\"speedup\":").nth(1)?;
    rest.trim_start().trim_end_matches(['}', ',', ' ']).parse().ok()
}

/// Like [`baseline_speedup`], for a join row (`"join": "NAME"`).
/// Baselines written before the joins section existed return `None`,
/// which skips the regression half of the join gate — never the floor.
fn baseline_join_speedup(baseline: &str, name: &str) -> Option<f64> {
    let marker = format!("\"join\": \"{name}\"");
    let line = baseline.lines().find(|l| l.contains(&marker))?;
    let rest = line.split("\"speedup\":").nth(1)?;
    rest.trim_start().trim_end_matches(['}', ',', ' ']).parse().ok()
}

fn check(results: &[ShapeResult], joins: &[JoinResult], baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    for shape in GATED_SHAPES {
        let r = results
            .iter()
            .find(|r| r.shape == shape)
            .expect("measure() covers every shape");
        let speedup = r.speedup();
        if speedup < SPEEDUP_FLOOR {
            return Err(format!(
                "shape `{}`: speedup {speedup:.1}x over naive scan is below the {SPEEDUP_FLOOR}x floor",
                shape.name()
            ));
        }
        if let Some(committed) = baseline_speedup(&baseline, shape) {
            if speedup < committed / REGRESSION_FACTOR {
                return Err(format!(
                    "shape `{}`: speedup {speedup:.1}x regressed more than {REGRESSION_FACTOR}x \
                     against the committed baseline ({committed:.1}x)",
                    shape.name()
                ));
            }
        }
    }
    // Every join shape — including the unselective worst case — must
    // beat the naive cross-product evaluator by the same floor, and must
    // not regress against its committed ratio.
    for r in joins {
        let speedup = r.speedup();
        if speedup < SPEEDUP_FLOOR {
            return Err(format!(
                "join `{}`: speedup {speedup:.1}x over the naive cross-product \
                 evaluator is below the {SPEEDUP_FLOOR}x floor",
                r.name
            ));
        }
        if let Some(committed) = baseline_join_speedup(&baseline, r.name) {
            if speedup < committed / REGRESSION_FACTOR {
                return Err(format!(
                    "join `{}`: speedup {speedup:.1}x regressed more than {REGRESSION_FACTOR}x \
                     against the committed baseline ({committed:.1}x)",
                    r.name
                ));
            }
        }
    }
    // Allowed regressions skip the floor but not the baseline gate: the
    // tracked ratio must not quietly get worse.
    for allowed in &ALLOWED_REGRESSIONS {
        let r = results
            .iter()
            .find(|r| r.shape == allowed.shape)
            .expect("measure() covers every shape");
        let ratio = r.speedup();
        if let Some(committed) = baseline_speedup(&baseline, allowed.shape) {
            if ratio < committed / REGRESSION_FACTOR {
                return Err(format!(
                    "shape `{}`: tracked ratio {ratio:.1}x fell more than {REGRESSION_FACTOR}x \
                     below the committed baseline ({committed:.1}x) — the allowed regression \
                     is degrading",
                    allowed.shape.name()
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let results = measure(args.quick);
    let joins = measure_joins(args.quick);
    for r in &results {
        println!(
            "shape {:>7}  {:<34}  hits {:>6}  indexed {:>12.1} ns  naive {:>12.1} ns  speedup {:>8.1}x",
            r.shape.name(),
            r.plan,
            r.hits,
            r.indexed_ns,
            r.naive_ns,
            r.speedup(),
        );
    }
    for r in &joins {
        println!(
            "join {:>18}  {:<40}  hits {:>6}  indexed {:>12.1} ns  naive {:>12.1} ns  speedup {:>8.1}x",
            r.name,
            r.plan,
            r.hits,
            r.indexed_ns,
            r.naive_ns,
            r.speedup(),
        );
    }
    for allowed in &ALLOWED_REGRESSIONS {
        let r = results
            .iter()
            .find(|r| r.shape == allowed.shape)
            .expect("measure() covers every shape");
        println!(
            "note: shape {:>7} runs at {:.1}x (allowed regression, tracked): {}",
            allowed.shape.name(),
            r.speedup(),
            allowed.note
        );
    }
    std::fs::write(&args.out, render_json(&results, &joins, args.quick))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);
    if let Some(baseline) = &args.check {
        match check(&results, &joins, baseline) {
            Ok(()) => println!("baseline check passed against {baseline}"),
            Err(msg) => {
                eprintln!("baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
