//! `BENCH_serve.json` reporter: the concurrent session service under
//! load.
//!
//! Three measurements, all on `MemVfs` (algorithmic cost, not fsync):
//!
//! * **reader throughput under a hot writer** at 1, 4, and 16 reader
//!   sessions — each reader clones the published snapshot and scans it
//!   while two feeder sessions keep the writer committing continuously;
//! * **shed rate at saturation** — submitters enqueue flat out against
//!   a small queue; backpressure must engage (typed `Overloaded`
//!   refusals, not silence) while the writer keeps acking;
//! * **commit latency percentiles** — p50/p99 of a blocking submit
//!   (enqueue → group commit → ack) from a single session;
//! * **pad-op mix throughput** — two sessions blocking-submit a fixed
//!   rotation of application-level pad ops (bundles, marks,
//!   annotations, resolutions, links, inspections) through a
//!   `PadService`, reported both absolutely and as a ratio against
//!   plain triple-insert submits measured in the same run.
//!
//! * `cargo run -p slim-bench --bin bench-serve --release` — full run,
//!   writes `BENCH_serve.json` in the current directory.
//! * `-- --quick` — shorter measurement windows for CI smoke runs.
//! * `-- --check BENCH_serve.json` — additionally gate: aggregate
//!   reader throughput at 16 sessions must stay above the starvation
//!   floor relative to the single-reader run, must not regress more
//!   than 3× against the committed baseline's scaling ratio, and
//!   saturation must both shed and ack.
//! * `-- --out PATH` — write the report somewhere else.
//!
//! The gates are ratios measured within one run, so they hold across
//! machines of different speeds.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use slimserve::{
    ward_doc, ward_factory, PadConfig, PadOp, PadService, ServeConfig, ServeError, ServeOp,
    Service, WARD_PARAGRAPHS,
};
use superimposed::marks::resilience::{BreakerConfig, MockClock, SystemClock};
use superimposed::marks::{FaultProfile, FlakyControl, RetryPolicy};
use superimposed::slimio::MemVfs;

const SNAP: &str = "bench/serve-store.xml";
const PAD: &str = "bench/serve-pad.xml";
/// Reader-session counts measured under the hot writer.
const READER_SESSIONS: [usize; 3] = [1, 4, 16];
/// Aggregate reader throughput at 16 sessions must stay above this
/// fraction of the single-reader aggregate — the "no reader
/// starvation" gate. Aggregate (not per-reader) so the floor holds on
/// single-core machines where 16 threads necessarily time-slice; a
/// collapse below the single-reader rate means readers are being
/// starved by the writer or convoying on shared state, not merely
/// sharing cores.
const SCALING_FLOOR: f64 = 0.5;
/// `--check` fails if the scaling ratio drops below baseline/this.
const REGRESSION_FACTOR: f64 = 3.0;
/// Triples seeded into the store before measuring readers.
const SEED_TRIPLES: usize = 2_000;

struct Args {
    quick: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, out: "BENCH_serve.json".to_string(), check: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--check" => args.check = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!("usage: bench-serve [--quick] [--out PATH] [--check BASELINE_PATH]");
    std::process::exit(2)
}

struct ReaderResult {
    sessions: usize,
    reads_total: u64,
    reads_per_sec_total: f64,
    reads_per_sec_per_reader: f64,
}

struct PadMixResult {
    acked: u64,
    engine_refusals: u64,
    ops_per_sec: f64,
    plain_insert_ops_per_sec: f64,
    /// pad-op mix acks/s ÷ plain triple-insert acks/s, same run.
    mix_ratio: f64,
}

struct Report {
    readers: Vec<ReaderResult>,
    /// aggregate reads/s at 16 sessions / aggregate at 1 session.
    reader_scaling_16: f64,
    saturation_attempts: u64,
    saturation_acked: u64,
    saturation_shed: u64,
    shed_rate: f64,
    commit_p50_ns: f64,
    commit_p99_ns: f64,
    pad_mix: PadMixResult,
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 1024,
        max_batch: 64,
        // SystemClock milliseconds; generous so the bench never trips it.
        op_deadline_ms: 60_000,
        ..ServeConfig::default()
    }
}

fn open_service(config: ServeConfig) -> Service {
    let vfs = Arc::new(MemVfs::new());
    let clock = Arc::new(SystemClock::new());
    let (service, _) = Service::open(vfs, Path::new(SNAP), config, clock)
        .expect("fresh bench service opens");
    service
}

/// Seed the store through the front door so snapshots have substance.
fn seed(service: &Service) {
    let session = service.session();
    for i in 0..SEED_TRIPLES {
        session
            .submit(ServeOp::insert(
                &format!("hot:doc{}", i % 64),
                if i % 3 == 0 { "annotation" } else { "containsScrap" },
                &format!("seed value {i}"),
            ))
            .expect("seeding submit");
    }
}

/// Reader throughput with `n` reader sessions while two feeder sessions
/// keep the writer committing for the whole window.
fn measure_readers(service: &Service, n: usize, window: Duration) -> ReaderResult {
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));

    let feeders: Vec<_> = (0..2)
        .map(|f| {
            let session = service.session();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let _ = session.submit(ServeOp::insert(
                        &format!("feed{f}:{i}"),
                        "seq",
                        &i.to_string(),
                    ));
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..n)
        .map(|r| {
            let session = service.session();
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                let mut local = 0u64;
                let subject = format!("hot:doc{}", r % 64);
                while !stop.load(Ordering::Relaxed) {
                    // One "read op": clone the published snapshot, scan
                    // one hot subject, touch the overall cardinality.
                    let snap = session.snapshot();
                    let hits = snap.scan_subject(&subject).count();
                    assert!(hits > 0, "seeded subject must be visible");
                    local += 1;
                }
                reads.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for t in readers {
        t.join().expect("reader thread");
    }
    for t in feeders {
        t.join().expect("feeder thread");
    }

    let reads_total = reads.load(Ordering::Relaxed);
    let secs = window.as_secs_f64();
    ReaderResult {
        sessions: n,
        reads_total,
        reads_per_sec_total: reads_total as f64 / secs,
        reads_per_sec_per_reader: reads_total as f64 / secs / n as f64,
    }
}

/// Hammer a small queue with non-blocking enqueues from four threads:
/// count accepted vs shed. Tickets are dropped — the writer still acks
/// into them, the bench only cares about admission outcomes.
fn measure_saturation(window: Duration) -> (u64, u64, u64) {
    let service = open_service(ServeConfig {
        queue_capacity: 64,
        max_batch: 64,
        op_deadline_ms: 60_000,
        ..ServeConfig::default()
    });
    let stop = Arc::new(AtomicBool::new(false));
    let attempts = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let submitters: Vec<_> = (0..4)
        .map(|s| {
            let session = service.session();
            let stop = Arc::clone(&stop);
            let attempts = Arc::clone(&attempts);
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    attempts.fetch_add(1, Ordering::Relaxed);
                    match session.enqueue(ServeOp::insert(
                        &format!("sat{s}:{i}"),
                        "seq",
                        &i.to_string(),
                    )) {
                        Ok(_ticket) => {}
                        Err(ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(other) => panic!("unexpected refusal at saturation: {other}"),
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for t in submitters {
        t.join().expect("submitter thread");
    }
    let stats = service.shutdown();
    (attempts.load(Ordering::Relaxed), stats.acked, shed.load(Ordering::Relaxed))
}

/// Blocking-submit latency distribution from one session.
fn measure_commit_latency(service: &Service, rounds: usize) -> (f64, f64) {
    let session = service.session();
    let mut lat: Vec<u64> = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let start = Instant::now();
        session
            .submit(ServeOp::insert(&format!("lat:{i}"), "seq", &i.to_string()))
            .expect("latency submit");
        lat.push(start.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize] as f64;
    (pct(0.50), pct(0.99))
}

/// The `i`-th op of the pad-mix rotation for submitter `t`: one bundle,
/// three marks (the paper's core gesture dominates), an annotation, a
/// resolution, a link, and an inspection per cycle of eight.
fn pad_mix_op(t: usize, i: u64) -> PadOp {
    let pos = ((i % 200) as i64, ((i >> 3) % 160) as i64);
    match i % 8 {
        0 => PadOp::CreateBundle {
            name: format!("mix{t} bundle {i}"),
            pos,
            width: 40,
            height: 30,
            parent: None,
        },
        1..=3 => PadOp::CreateMark {
            doc: ward_doc(i),
            paragraph: i % WARD_PARAGRAPHS as u64,
            start: 0,
            len: 4 + i % 8,
            label: format!("mix{t} mark {i}"),
            pos,
            bundle: None,
        },
        4 => PadOp::Annotate { scrap: i, text: format!("mix{t} note {i}") },
        5 => PadOp::Resolve { scrap: i },
        6 => PadOp::Link { from: i, to: i + 1 },
        _ => PadOp::Inspect,
    }
}

/// Blocking-submit throughput of plain triple inserts, the in-run
/// denominator for the pad-mix ratio.
fn measure_plain_inserts(window: Duration) -> f64 {
    let service = open_service(serve_config());
    let stop = Arc::new(AtomicBool::new(false));
    let acked = Arc::new(AtomicU64::new(0));
    let submitters: Vec<_> = (0..2)
        .map(|t| {
            let session = service.session();
            let stop = Arc::clone(&stop);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                let mut i = 0u64;
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    session
                        .submit(ServeOp::insert(&format!("mix{t}:{i}"), "seq", &i.to_string()))
                        .expect("plain insert submit");
                    local += 1;
                }
                acked.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for t in submitters {
        t.join().expect("plain submitter thread");
    }
    acked.load(Ordering::Relaxed) as f64 / window.as_secs_f64()
}

/// Pad-op mix throughput: two sessions blocking-submit the fixed
/// rotation against a fresh `PadService` over healthy resolver parts.
/// Engine refusals (e.g. a link landing on one scrap) are typed and
/// counted, never fatal; the ledger must balance at shutdown.
fn measure_pad_mix(window: Duration) -> PadMixResult {
    let vfs: Arc<MemVfs> = Arc::new(MemVfs::new());
    // Frozen MockClock: ward_factory needs one, and a never-advancing
    // clock keeps the generous deadline from ever tripping. Wall time
    // for the rate comes from the measurement window itself.
    let clock = Arc::new(MockClock::new());
    let factory = ward_factory(
        (*clock).clone(),
        FaultProfile::healthy(),
        FlakyControl::new(0),
        RetryPolicy::default(),
        BreakerConfig::default(),
        3,
    );
    let config = PadConfig {
        queue_capacity: 1024,
        max_batch: 64,
        op_deadline_ms: 60_000,
        // Roomy: early-cycle refusals (annotate before any scrap
        // exists) must not quarantine a bench session.
        breaker: BreakerConfig {
            failure_threshold: 64,
            cooldown_ms: 1_000,
            probe_budget: 3,
            probe_successes: 1,
        },
        ..PadConfig::default()
    };
    let service = PadService::open(vfs, Path::new(PAD), config, clock, factory)
        .expect("fresh bench pad service opens");

    let stop = Arc::new(AtomicBool::new(false));
    let submitters: Vec<_> = (0..2)
        .map(|t| {
            let session = service.session();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    match session.submit(pad_mix_op(t, i)) {
                        Ok(_) | Err(ServeError::Engine { .. }) => {}
                        Err(other) => panic!("unexpected pad refusal in mix: {other}"),
                    }
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for t in submitters {
        t.join().expect("pad submitter thread");
    }
    let stats = service.shutdown();
    assert_eq!(stats.unaccounted(), 0, "pad mix dropped ops silently: {stats:?}");

    let ops_per_sec = stats.acked as f64 / window.as_secs_f64();
    let plain_insert_ops_per_sec = measure_plain_inserts(window);
    PadMixResult {
        acked: stats.acked,
        engine_refusals: stats.engine_refusals,
        ops_per_sec,
        plain_insert_ops_per_sec,
        mix_ratio: ops_per_sec / plain_insert_ops_per_sec.max(1.0),
    }
}

fn measure(quick: bool) -> Report {
    let window = if quick { Duration::from_millis(100) } else { Duration::from_millis(400) };

    let service = open_service(serve_config());
    seed(&service);
    let readers: Vec<ReaderResult> =
        READER_SESSIONS.iter().map(|&n| measure_readers(&service, n, window)).collect();
    let total_1 = readers[0].reads_per_sec_total;
    let total_16 = readers[readers.len() - 1].reads_per_sec_total;
    let reader_scaling_16 = total_16 / total_1.max(1.0);

    let latency_rounds = if quick { 500 } else { 2_000 };
    let (commit_p50_ns, commit_p99_ns) = measure_commit_latency(&service, latency_rounds);
    drop(service);

    let (saturation_attempts, saturation_acked, saturation_shed) = measure_saturation(window);
    let shed_rate = saturation_shed as f64 / saturation_attempts.max(1) as f64;

    let pad_mix = measure_pad_mix(window);

    Report {
        readers,
        reader_scaling_16,
        saturation_attempts,
        saturation_acked,
        saturation_shed,
        shed_rate,
        commit_p50_ns,
        commit_p99_ns,
        pad_mix,
    }
}

fn render_json(r: &Report, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str("  \"readers_under_hot_writer\": [\n");
    for (i, rr) in r.readers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"sessions\": {}, \"reads_total\": {}, \"reads_per_sec_total\": {:.1}, \
             \"reads_per_sec_per_reader\": {:.1}}}{}\n",
            rr.sessions,
            rr.reads_total,
            rr.reads_per_sec_total,
            rr.reads_per_sec_per_reader,
            if i + 1 == r.readers.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"reader_scaling_16\": {:.3},\n", r.reader_scaling_16));
    out.push_str(&format!(
        "  \"saturation\": {{\"attempts\": {}, \"acked\": {}, \"shed\": {}, \
         \"shed_rate\": {:.3}}},\n",
        r.saturation_attempts, r.saturation_acked, r.saturation_shed, r.shed_rate
    ));
    out.push_str(&format!(
        "  \"commit_latency_ns\": {{\"p50\": {:.1}, \"p99\": {:.1}}},\n",
        r.commit_p50_ns, r.commit_p99_ns
    ));
    out.push_str(&format!(
        "  \"pad_mix\": {{\"acked\": {}, \"engine_refusals\": {}, \"ops_per_sec\": {:.1}, \
         \"plain_insert_ops_per_sec\": {:.1}, \"mix_ratio\": {:.4}}}\n",
        r.pad_mix.acked,
        r.pad_mix.engine_refusals,
        r.pad_mix.ops_per_sec,
        r.pad_mix.plain_insert_ops_per_sec,
        r.pad_mix.mix_ratio
    ));
    out.push_str("}\n");
    out
}

/// Pull `"reader_scaling_16": X` out of a baseline report
/// (machine-written by this binary in a fixed shape).
fn baseline_scaling(baseline: &str) -> Option<f64> {
    let line = baseline.lines().find(|l| l.contains("\"reader_scaling_16\":"))?;
    let rest = line.split("\"reader_scaling_16\":").nth(1)?;
    rest.trim_start().trim_end_matches([',', ' ']).parse().ok()
}

/// Pull `"mix_ratio": X` out of a baseline report. `None` (and so no
/// ratio gate) when the baseline predates the pad-mix column — old
/// committed baselines must keep passing `--check`.
fn baseline_pad_ratio(baseline: &str) -> Option<f64> {
    let line = baseline.lines().find(|l| l.contains("\"mix_ratio\":"))?;
    let rest = line.split("\"mix_ratio\":").nth(1)?;
    rest.trim_start().trim_end_matches(['}', ',', ' ']).parse().ok()
}

fn check(r: &Report, baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    if r.reader_scaling_16 < SCALING_FLOOR {
        return Err(format!(
            "aggregate reader throughput at 16 sessions fell to {:.3} of the single-reader \
             run (starvation floor: {SCALING_FLOOR})",
            r.reader_scaling_16
        ));
    }
    if let Some(committed) = baseline_scaling(&baseline) {
        if r.reader_scaling_16 < committed / REGRESSION_FACTOR {
            return Err(format!(
                "reader scaling {:.3} regressed more than {REGRESSION_FACTOR}x against the \
                 committed baseline ({committed:.3})",
                r.reader_scaling_16
            ));
        }
    }
    if r.saturation_shed == 0 {
        return Err("saturation never shed: backpressure is not engaging".to_string());
    }
    if r.saturation_acked == 0 {
        return Err("saturation acked nothing: the writer starved completely".to_string());
    }
    if r.pad_mix.acked == 0 {
        return Err("pad mix acked nothing: the pad writer starved completely".to_string());
    }
    if let Some(committed) = baseline_pad_ratio(&baseline) {
        if r.pad_mix.mix_ratio < committed / REGRESSION_FACTOR {
            return Err(format!(
                "pad-op mix ratio {:.4} regressed more than {REGRESSION_FACTOR}x against the \
                 committed baseline ({committed:.4})",
                r.pad_mix.mix_ratio
            ));
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let report = measure(args.quick);
    for rr in &report.readers {
        println!(
            "readers {:>2}: {:>12.1} reads/s total  ({:>12.1} per reader)",
            rr.sessions, rr.reads_per_sec_total, rr.reads_per_sec_per_reader
        );
    }
    println!(
        "reader scaling at 16 sessions: {:.3}x the single-reader aggregate",
        report.reader_scaling_16
    );
    println!(
        "saturation: {} attempts, {} acked, {} shed ({:.1}% shed rate)",
        report.saturation_attempts,
        report.saturation_acked,
        report.saturation_shed,
        report.shed_rate * 100.0
    );
    println!(
        "commit latency: p50 {:>10.1} ns, p99 {:>10.1} ns",
        report.commit_p50_ns, report.commit_p99_ns
    );
    println!(
        "pad mix: {:>12.1} ops/s acked ({} engine refusals), {:.4}x plain inserts \
         ({:.1} ops/s)",
        report.pad_mix.ops_per_sec,
        report.pad_mix.engine_refusals,
        report.pad_mix.mix_ratio,
        report.pad_mix.plain_insert_ops_per_sec
    );
    std::fs::write(&args.out, render_json(&report, args.quick))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);
    if let Some(baseline) = &args.check {
        match check(&report, baseline) {
            Ok(()) => println!("baseline check passed against {baseline}"),
            Err(msg) => {
                eprintln!("baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
