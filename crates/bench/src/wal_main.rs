//! `BENCH_wal.json` reporter: measure the logged commit path against the
//! full-XML rewrite at the 50k-triple point, plus restart (recovery)
//! time before and after compaction.
//!
//! * `cargo run -p slim-bench --bin bench-wal --release` — full run,
//!   writes `BENCH_wal.json` in the current directory.
//! * `-- --quick` — shorter measurement budget for CI smoke runs.
//! * `-- --check BENCH_wal.json` — additionally gate: the 1-op commit
//!   must beat the full snapshot rewrite by ≥ 50× and must not fall
//!   below a third of the committed baseline's speedup.
//! * `-- --out PATH` — write the report somewhere else.
//!
//! Everything runs on `MemVfs`, so both sides skip the physical disk:
//! the comparison isolates the algorithmic cost (O(changes) frame encode
//! + append vs O(store) serialize + seal + rewrite), not fsync latency.

use slim_bench::{random_store, BENCH_TRIPLES};
use std::path::Path;
use std::time::Instant;
use superimposed::slimio::MemVfs;
use superimposed::trim::{CommitOutcome, StoreLog, TripleStore};

const SNAP: &str = "bench/wal-store.xml";
/// The 1-op commit must beat the full rewrite by at least this much.
const SPEEDUP_FLOOR: f64 = 50.0;
/// `--check` fails if the gated speedup drops below baseline/this factor.
const REGRESSION_FACTOR: f64 = 3.0;
/// Commit batch sizes reported (and the gate applies to batch 1).
const BATCHES: [usize; 3] = [1, 16, 256];
/// Committed frames sitting in the log for the restart measurement.
const RESTART_COMMITS: usize = 256;
/// Ops per frame in the restart workload.
const RESTART_BATCH: usize = 8;

struct Args {
    quick: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, out: "BENCH_wal.json".to_string(), check: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--check" => args.check = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!("usage: bench-wal [--quick] [--out PATH] [--check BASELINE_PATH]");
    std::process::exit(2)
}

struct CommitResult {
    batch: usize,
    commit_ns: f64,
    log_bytes_per_commit: f64,
}

struct Report {
    full_save_ns: f64,
    commits: Vec<CommitResult>,
    restart_replay_ns: f64,
    restart_compacted_ns: f64,
    restart_ops: usize,
}

impl Report {
    /// The tentpole ratio: full snapshot rewrite over a 1-op commit.
    fn speedup(&self, batch: usize) -> f64 {
        let r = self.commits.iter().find(|r| r.batch == batch).expect("batch measured");
        self.full_save_ns / r.commit_ns.max(1.0)
    }
}

/// Best-of-`rounds` wall time of one mutating operation; `f` must leave
/// the world ready for the next round itself.
fn best_ns(rounds: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn measure(quick: bool) -> Report {
    let snap = Path::new(SNAP);
    let (seed_store, _, _) = random_store(BENCH_TRIPLES, 42);

    // The old authoritative path: rewrite the whole sealed XML artifact.
    let mut vfs = MemVfs::new();
    seed_store.save_to(&vfs, snap).expect("seed save");
    let save_rounds = if quick { 2 } else { 5 };
    let full_save_ns = best_ns(save_rounds, || {
        seed_store.save_to(&vfs, snap).expect("full save");
    });

    // The logged path, on top of the same 50k-triple snapshot.
    let (mut store, mut log, report) =
        TripleStore::open_logged(&vfs, snap).expect("open logged");
    assert!(report.is_clean(), "bench setup must start from a clean pair");
    let commit_rounds = if quick { 32 } else { 256 };
    let mut round = 0usize;
    let commits = BATCHES
        .iter()
        .map(|&batch| {
            let bytes_before = log.log_bytes();
            let mut committed = 0usize;
            let commit_ns = best_ns(commit_rounds, || {
                committed += 1;
                one_commit(&mut log, &mut vfs, &mut store, batch, &mut round);
            });
            let log_bytes_per_commit =
                (log.log_bytes() - bytes_before) as f64 / committed as f64;
            CommitResult { batch, commit_ns, log_bytes_per_commit }
        })
        .collect();

    // Restart time with a populated log vs after compaction.
    let restart_commits = if quick { RESTART_COMMITS / 4 } else { RESTART_COMMITS };
    let disk = MemVfs::new();
    seed_store.save_to(&disk, snap).expect("restart seed save");
    let (mut rstore, mut rlog, _) = TripleStore::open_logged(&disk, snap).expect("open");
    for c in 0..restart_commits {
        for i in 0..RESTART_BATCH {
            rstore.insert_literal(&format!("restart:{c}:{i}"), "prop", "value");
        }
        let outcome = rlog.commit(&disk, &mut rstore).expect("commit");
        assert!(matches!(outcome, CommitOutcome::Committed { .. }));
    }
    let open_rounds = if quick { 2 } else { 3 };
    let restart_replay_ns = best_ns(open_rounds, || {
        TripleStore::open_logged(&disk, snap).expect("recovery open");
    });
    rlog.compact(&disk, &mut rstore).expect("compact");
    let restart_compacted_ns = best_ns(open_rounds, || {
        TripleStore::open_logged(&disk, snap).expect("post-compaction open");
    });

    Report {
        full_save_ns,
        commits,
        restart_replay_ns,
        restart_compacted_ns,
        restart_ops: restart_commits * RESTART_BATCH,
    }
}

/// One timed round: insert `batch` fresh triples and commit them. The
/// insert cost rides inside the timed region; it is orders of magnitude
/// below the serialize/rewrite work on the other side of the comparison
/// and identical across batch sizes.
fn one_commit(
    log: &mut StoreLog,
    vfs: &mut MemVfs,
    store: &mut TripleStore,
    batch: usize,
    round: &mut usize,
) {
    *round += 1;
    for i in 0..batch {
        store.insert_literal(&format!("bench:{round}:{i}"), "prop", "value");
    }
    let outcome = log.commit(vfs, store).expect("bench commit");
    assert!(matches!(outcome, CommitOutcome::Committed { .. }));
}

fn render_json(r: &Report, quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"n_triples\": {BENCH_TRIPLES},\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"full_save_ns\": {:.1},\n", r.full_save_ns));
    out.push_str("  \"commits\": [\n");
    for (i, c) in r.commits.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"batch\": {}, \"commit_ns\": {:.1}, \"ns_per_op\": {:.1}, \
             \"log_bytes_per_commit\": {:.1}, \"speedup_vs_full_save\": {:.1}}}{}\n",
            c.batch,
            c.commit_ns,
            c.commit_ns / c.batch as f64,
            c.log_bytes_per_commit,
            r.speedup(c.batch),
            if i + 1 == r.commits.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"restart\": {{\"ops_in_log\": {}, \"replay_ns\": {:.1}, \"compacted_ns\": {:.1}}}\n",
        r.restart_ops, r.restart_replay_ns, r.restart_compacted_ns
    ));
    out.push_str("}\n");
    out
}

/// Pull `"speedup_vs_full_save": X` for one batch size out of a baseline
/// report (machine-written by this binary in a fixed shape).
fn baseline_speedup(baseline: &str, batch: usize) -> Option<f64> {
    let marker = format!("\"batch\": {batch},");
    let line = baseline.lines().find(|l| l.contains(&marker))?;
    let rest = line.split("\"speedup_vs_full_save\":").nth(1)?;
    rest.trim_start().trim_end_matches(['}', ',', ' ']).parse().ok()
}

fn check(r: &Report, baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let speedup = r.speedup(1);
    if speedup < SPEEDUP_FLOOR {
        return Err(format!(
            "1-op commit is only {speedup:.1}x faster than the full snapshot rewrite \
             (floor: {SPEEDUP_FLOOR}x)"
        ));
    }
    if let Some(committed) = baseline_speedup(&baseline, 1) {
        if speedup < committed / REGRESSION_FACTOR {
            return Err(format!(
                "1-op commit speedup {speedup:.1}x regressed more than {REGRESSION_FACTOR}x \
                 against the committed baseline ({committed:.1}x)"
            ));
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let report = measure(args.quick);
    println!("full snapshot rewrite at {BENCH_TRIPLES} triples: {:>12.1} ns", report.full_save_ns);
    for c in &report.commits {
        println!(
            "commit batch {:>3}: {:>10.1} ns  ({:>9.1} ns/op, {:>7.1} log bytes, {:>8.1}x vs full save)",
            c.batch,
            c.commit_ns,
            c.commit_ns / c.batch as f64,
            c.log_bytes_per_commit,
            report.speedup(c.batch),
        );
    }
    println!(
        "restart with {} logged ops: {:>12.1} ns replay, {:>12.1} ns after compaction",
        report.restart_ops, report.restart_replay_ns, report.restart_compacted_ns
    );
    std::fs::write(&args.out, render_json(&report, args.quick))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);
    if let Some(baseline) = &args.check {
        match check(&report, baseline) {
            Ok(()) => println!("baseline check passed against {baseline}"),
            Err(msg) => {
                eprintln!("baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
