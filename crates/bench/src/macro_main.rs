//! `BENCH_macro.json` reporter: end-to-end throughput of the whole stack
//! under slimgen's hospital-scale workload — ops/sec and p99 op latency
//! per traffic mix, plus restart (recovery) time at corpus scale.
//!
//! Unlike the micro reporters (`BENCH_trim`, `BENCH_wal`) this drives
//! the *macro* path: every operation goes through `PadSession` over the
//! WAL-logged store with the full quick-profile corpus (≥ 1,000
//! documents, ≥ 100,000 marks) underneath, so mark resolution, scrap
//! queries, undo and group-commit all pay their real costs.
//!
//! * `cargo run -p slim-bench --bin bench-macro --release` — full run,
//!   writes `BENCH_macro.json` in the current directory.
//! * `-- --quick` — fewer trace ops and restart rounds for CI smoke
//!   runs; the corpus stays at quick-profile scale so per-op numbers
//!   remain comparable with the committed baseline.
//! * `-- --check BENCH_macro.json` — additionally gate: each mix's
//!   throughput must stay within 2× of the committed baseline (the
//!   factor absorbs machine variance; a real regression shows up well
//!   past it).
//! * `-- --out PATH` — write the report somewhere else.

use slimgen::corpus::{self, Corpus};
use slimgen::trace::{self, Driver, Mix};
use slimgen::Profile;
use std::path::Path;
use std::time::Instant;
use superimposed::slimio::MemVfs;
use superimposed::slimpad::PadSession;

const PAD: &str = "bench-macro.pad";
const SEED: u64 = 0xC0FFEE;
/// `--check` fails if a mix's ops/sec drops below baseline/this factor.
const REGRESSION_FACTOR: f64 = 2.0;
const MIXES: [Mix; 3] = [Mix::ReadHeavy, Mix::WriteHeavy, Mix::Mixed];

struct Args {
    quick: bool,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { quick: false, out: "BENCH_macro.json".to_string(), check: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = it.next().unwrap_or_else(|| usage()),
            "--check" => args.check = Some(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    args
}

fn usage() -> ! {
    eprintln!("usage: bench-macro [--quick] [--out PATH] [--check BASELINE_PATH]");
    std::process::exit(2)
}

struct MixResult {
    mix: Mix,
    ops: usize,
    ops_per_sec: f64,
    p99_ns: f64,
}

struct Report {
    corpus_stats: corpus::CorpusStats,
    mixes: Vec<MixResult>,
    restart_replay_ns: f64,
    restart_compacted_ns: f64,
}

/// A fresh logged quick-profile corpus — identical for every mix, so
/// the mixes measure traffic shape, not accumulated state.
fn logged_corpus() -> (Corpus, MemVfs) {
    let mut corpus = corpus::generate(Profile::Quick, SEED);
    let vfs = MemVfs::new();
    corpus
        .system
        .pad
        .enable_logging(&vfs, Path::new(PAD))
        .expect("snapshot the corpus to the bench vfs");
    (corpus, vfs)
}

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn measure(quick: bool) -> Report {
    let ops_per_mix = if quick { 500 } else { Profile::Quick.trace_ops() };
    let mut corpus_stats = None;
    let mut mixes = Vec::new();
    let mut restart_replay_ns = 0.0;
    let mut restart_compacted_ns = 0.0;

    for mix in MIXES {
        let (mut corpus, mut vfs) = logged_corpus();
        corpus_stats.get_or_insert(corpus.stats);
        let ops = trace::generate(SEED, ops_per_mix, mix);
        let mut driver = Driver::new(&corpus.system);

        let mut latencies_ns = Vec::with_capacity(ops.len());
        let run = Instant::now();
        for op in &ops {
            let t = Instant::now();
            driver.apply(&mut corpus.system, &corpus.mark_ids, &vfs, op);
            latencies_ns.push(t.elapsed().as_nanos() as f64);
        }
        let total_s = run.elapsed().as_secs_f64();
        latencies_ns.sort_by(|a, b| a.total_cmp(b));
        mixes.push(MixResult {
            mix,
            ops: ops.len(),
            ops_per_sec: ops.len() as f64 / total_s.max(f64::EPSILON),
            p99_ns: percentile(&latencies_ns, 0.99),
        });

        // Restart at scale, measured once off the write-heavy log: the
        // most frames to replay over the largest mark store.
        if mix == Mix::WriteHeavy {
            corpus.system.pad.commit(&vfs).expect("seal the write-heavy run");
            let rounds = if quick { 1 } else { 2 };
            restart_replay_ns = best_restart_ns(&corpus, &mut vfs, rounds);
            corpus.system.pad.compact(&vfs).expect("compact");
            restart_compacted_ns = best_restart_ns(&corpus, &mut vfs, rounds);
        }
    }

    Report {
        corpus_stats: corpus_stats.expect("at least one mix ran"),
        mixes,
        restart_replay_ns,
        restart_compacted_ns,
    }
}

/// Best-of-`rounds` time to recover a session from the logged pad —
/// snapshot load, frame replay, and mark-module rewiring included.
fn best_restart_ns(corpus: &Corpus, vfs: &mut MemVfs, rounds: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let manager = corpus.system.fresh_manager().expect("rebuild mark modules");
        let start = Instant::now();
        PadSession::open_logged(vfs, Path::new(PAD), manager).expect("recovery open");
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn render_json(r: &Report, quick: bool) -> String {
    let s = &r.corpus_stats;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", if quick { "quick" } else { "full" }));
    out.push_str(&format!("  \"seed\": \"{SEED:#x}\",\n"));
    out.push_str(&format!(
        "  \"corpus\": {{\"docs\": {}, \"marks\": {}, \"bundles\": {}, \"scraps\": {}}},\n",
        s.docs, s.marks, s.bundles, s.scraps
    ));
    out.push_str("  \"mixes\": [\n");
    for (i, m) in r.mixes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mix\": \"{}\", \"ops\": {}, \"ops_per_sec\": {:.1}, \"p99_ns\": {:.1}}}{}\n",
            m.mix.name(),
            m.ops,
            m.ops_per_sec,
            m.p99_ns,
            if i + 1 == r.mixes.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"restart\": {{\"replay_ns\": {:.1}, \"compacted_ns\": {:.1}}}\n",
        r.restart_replay_ns, r.restart_compacted_ns
    ));
    out.push_str("}\n");
    out
}

/// Pull `"ops_per_sec": X` for one mix out of a baseline report
/// (machine-written by this binary in a fixed shape).
fn baseline_ops_per_sec(baseline: &str, mix: Mix) -> Option<f64> {
    let marker = format!("\"mix\": \"{}\"", mix.name());
    let line = baseline.lines().find(|l| l.contains(&marker))?;
    let rest = line.split("\"ops_per_sec\":").nth(1)?;
    rest.trim_start().split([',', '}']).next()?.trim().parse().ok()
}

fn check(r: &Report, baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    for m in &r.mixes {
        let Some(committed) = baseline_ops_per_sec(&baseline, m.mix) else {
            return Err(format!("baseline has no ops_per_sec for mix `{}`", m.mix.name()));
        };
        if m.ops_per_sec < committed / REGRESSION_FACTOR {
            return Err(format!(
                "mix `{}`: {:.1} ops/sec regressed more than {REGRESSION_FACTOR}x against \
                 the committed baseline ({committed:.1} ops/sec)",
                m.mix.name(),
                m.ops_per_sec,
            ));
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let report = measure(args.quick);
    let s = &report.corpus_stats;
    println!(
        "corpus: {} docs, {} marks, {} bundles, {} scraps (seed {SEED:#x})",
        s.docs, s.marks, s.bundles, s.scraps
    );
    for m in &report.mixes {
        println!(
            "mix {:>5}: {:>6} ops  {:>10.1} ops/sec  p99 {:>12.1} ns",
            m.mix.name(),
            m.ops,
            m.ops_per_sec,
            m.p99_ns,
        );
    }
    println!(
        "restart at scale: {:>14.1} ns replay, {:>14.1} ns after compaction",
        report.restart_replay_ns, report.restart_compacted_ns
    );
    std::fs::write(&args.out, render_json(&report, args.quick))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    println!("wrote {}", args.out);
    if let Some(baseline) = &args.check {
        match check(&report, baseline) {
            Ok(()) => println!("baseline check passed against {baseline}"),
            Err(msg) => {
                eprintln!("baseline check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
