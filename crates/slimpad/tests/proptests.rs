//! Property tests for the SLIMPad application layer: rendering totality,
//! grid-detection invariants, and template capture/instantiate
//! structure preservation.

use proptest::prelude::*;
use slimpad::layout::{detect_grid, hit_test, Point, Rect};
use slimpad::render::render_pad;
use slimpad::templates::{BundleTemplate, PLACEHOLDER_MARK};
use slimpad::PadSession;

fn small_coord() -> impl Strategy<Value = (i64, i64)> {
    (0i64..1200, 0i64..900)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rendering never panics and always frames the pad, whatever the
    /// (accepted) layout.
    #[test]
    fn render_is_total(
        bundles in proptest::collection::vec((small_coord(), 50i64..400, 40i64..300), 0..6),
        scraps in proptest::collection::vec(small_coord(), 0..12),
    ) {
        let mut pad = PadSession::new("prop pad").unwrap();
        let mut handles = Vec::new();
        for (i, (pos, w, h)) in bundles.iter().enumerate() {
            handles.push(pad.create_bundle(&format!("b{i}"), *pos, *w, *h, None).unwrap());
        }
        for (i, pos) in scraps.iter().enumerate() {
            let target =
                handles.get(i % handles.len().max(1)).copied().unwrap_or(pad.root_bundle());
            let scrap = pad.dmi_mut().create_scrap(&format!("s{i}"), *pos, PLACEHOLDER_MARK).unwrap();
            pad.dmi_mut().add_scrap(target, scrap).unwrap();
        }
        let out = render_pad(&pad).unwrap();
        prop_assert!(out.contains(" prop pad "));
        // Overlapping glyphs may occlude each other on the canvas, so the
        // count is an upper bound; with a single scrap it is exact.
        prop_assert!(out.matches('·').count() <= scraps.len());
        if scraps.len() == 1 && bundles.is_empty() {
            prop_assert_eq!(out.matches('·').count(), 1);
        }
    }

    /// Grid detection is permutation-invariant and every item appears in
    /// at most one row and one column.
    #[test]
    fn grid_detection_invariants(points in proptest::collection::vec(small_coord(), 0..16), tol in 0i64..20) {
        let items: Vec<(usize, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (i, Point::new(x, y)))
            .collect();
        let grid = detect_grid(&items, tol);
        let mut shuffled = items.clone();
        shuffled.reverse();
        prop_assert_eq!(&grid, &detect_grid(&shuffled, tol));
        let mut seen_in_rows = std::collections::HashSet::new();
        for row in &grid.rows {
            prop_assert!(row.len() >= 2);
            for item in row {
                prop_assert!(seen_in_rows.insert(*item), "item in two rows");
            }
        }
        let mut seen_in_cols = std::collections::HashSet::new();
        for col in &grid.columns {
            prop_assert!(col.len() >= 2);
            for item in col {
                prop_assert!(seen_in_cols.insert(*item), "item in two columns");
            }
        }
    }

    /// Hit testing returns an item iff the point is inside at least one
    /// rect, and prefers the topmost.
    #[test]
    fn hit_test_agrees_with_containment(
        rects in proptest::collection::vec((small_coord(), 1i64..200, 1i64..200), 0..8),
        probe in small_coord(),
    ) {
        let items: Vec<(usize, Rect)> = rects
            .iter()
            .enumerate()
            .map(|(i, &(pos, w, h))| (i, Rect::new(pos, w, h)))
            .collect();
        let p = Point::new(probe.0, probe.1);
        let hit = hit_test(&items, p);
        let containing: Vec<usize> =
            items.iter().filter(|(_, r)| r.contains(p)).map(|(i, _)| *i).collect();
        match hit {
            Some(i) => prop_assert_eq!(Some(&i), containing.last()),
            None => prop_assert!(containing.is_empty()),
        }
    }

    /// Template capture → instantiate preserves slot count, relative
    /// positions, and nesting shape.
    #[test]
    fn template_roundtrip_preserves_structure(
        slots in proptest::collection::vec(small_coord(), 0..6),
        nested_slots in proptest::collection::vec(small_coord(), 0..4),
    ) {
        let mut pad = PadSession::new("tpl").unwrap();
        let origin = (100, 100);
        let row = pad.create_bundle("row", origin, 600, 400, None).unwrap();
        for (i, pos) in slots.iter().enumerate() {
            let s = pad
                .dmi_mut()
                .create_scrap(&format!("slot{i}"), (origin.0 + pos.0, origin.1 + pos.1), PLACEHOLDER_MARK)
                .unwrap();
            pad.dmi_mut().add_scrap(row, s).unwrap();
        }
        let sub = pad.create_bundle("sub", (origin.0 + 50, origin.1 + 50), 200, 150, Some(row)).unwrap();
        for (i, pos) in nested_slots.iter().enumerate() {
            let s = pad
                .dmi_mut()
                .create_scrap(&format!("nslot{i}"), (origin.0 + 50 + pos.0, origin.1 + 50 + pos.1), PLACEHOLDER_MARK)
                .unwrap();
            pad.dmi_mut().add_scrap(sub, s).unwrap();
        }
        let template = BundleTemplate::capture(pad.dmi(), row).unwrap();
        prop_assert_eq!(template.slots.len(), slots.len());
        prop_assert_eq!(template.nested.len(), 1);
        prop_assert_eq!(template.slot_count(), slots.len() + nested_slots.len());

        let (stamped, new_slots) =
            template.instantiate(&mut pad, "copy", (800, 700), None).unwrap();
        prop_assert_eq!(new_slots.len(), template.slot_count());
        let recaptured = BundleTemplate::capture(pad.dmi(), stamped).unwrap();
        // Structure matches up to the bundle's own name.
        prop_assert_eq!(recaptured.slots, template.slots);
        prop_assert_eq!(recaptured.nested.len(), template.nested.len());
        prop_assert_eq!(&recaptured.nested[0].0, &template.nested[0].0);
        prop_assert!(pad.dmi().check().is_conformant());
    }
}
