//! 2-D layout: free placement, hit testing, and implicit-structure
//! detection.
//!
//! "We allow flexibility for placement of information elements and
//! bundles in two dimensions. The juxtaposition of scraps and bundles
//! contains implicit semantic information that we neither want to
//! constrain or lose." (paper §3)

/// A point on the pad, in pad units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    pub x: i64,
    pub y: i64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: i64, y: i64) -> Self {
        Point { x, y }
    }
}

impl From<(i64, i64)> for Point {
    fn from((x, y): (i64, i64)) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned rectangle: origin (top-left) plus size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    pub origin: Point,
    pub width: i64,
    pub height: i64,
}

impl Rect {
    /// Construct from origin and size.
    pub fn new(origin: impl Into<Point>, width: i64, height: i64) -> Self {
        Rect { origin: origin.into(), width, height }
    }

    /// The right edge (exclusive).
    pub fn right(&self) -> i64 {
        self.origin.x + self.width
    }

    /// The bottom edge (exclusive).
    pub fn bottom(&self) -> i64 {
        self.origin.y + self.height
    }

    /// Does the rectangle contain the point?
    pub fn contains(&self, p: Point) -> bool {
        (self.origin.x..self.right()).contains(&p.x)
            && (self.origin.y..self.bottom()).contains(&p.y)
    }

    /// Does `self` fully contain `other`?
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.origin.x <= other.origin.x
            && self.origin.y <= other.origin.y
            && self.right() >= other.right()
            && self.bottom() >= other.bottom()
    }

    /// Do the rectangles overlap (non-empty intersection)?
    pub fn intersects(&self, other: &Rect) -> bool {
        self.origin.x < other.right()
            && other.origin.x < self.right()
            && self.origin.y < other.bottom()
            && other.origin.y < self.bottom()
    }
}

/// Hit testing over z-ordered items: the *last* (topmost) item whose
/// rectangle contains the point wins — scratchpad stacking order.
pub fn hit_test<T: Copy>(items: &[(T, Rect)], p: Point) -> Option<T> {
    items.iter().rev().find(|(_, r)| r.contains(p)).map(|(t, _)| *t)
}

/// The bundle (if any) a dropped point should land in: the topmost
/// bundle whose rect contains it.
pub fn drop_target<T: Copy>(bundles: &[(T, Rect)], p: Point) -> Option<T> {
    hit_test(bundles, p)
}

/// Detected implicit structure among scrap positions: rows and columns —
/// the "gridlet" arrangement of paper Figure 4's Electrolyte bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridDetection<T> {
    /// Items grouped into rows (top to bottom), each row left to right.
    /// Only rows with 2+ members count as structure.
    pub rows: Vec<Vec<T>>,
    /// Items grouped into columns (left to right), each top to bottom.
    pub columns: Vec<Vec<T>>,
}

impl<T> GridDetection<T> {
    /// Whether any multi-element row or column was found.
    pub fn has_structure(&self) -> bool {
        !self.rows.is_empty() || !self.columns.is_empty()
    }
}

/// Cluster positioned items into rows and columns within `tolerance`
/// pad units. Deterministic and permutation-invariant: the result
/// depends only on the set of items, not their input order.
pub fn detect_grid<T: Copy + Ord>(items: &[(T, Point)], tolerance: i64) -> GridDetection<T> {
    let rows = cluster_by(items, tolerance, |p| (p.y, p.x));
    let columns = cluster_by(items, tolerance, |p| (p.x, p.y));
    GridDetection { rows, columns }
}

/// Cluster by the first key-component within tolerance; order each
/// cluster by the second component. Single-member clusters are dropped.
fn cluster_by<T: Copy + Ord>(
    items: &[(T, Point)],
    tolerance: i64,
    key: impl Fn(Point) -> (i64, i64),
) -> Vec<Vec<T>> {
    let mut sorted: Vec<(i64, i64, T)> =
        items.iter().map(|&(t, p)| { let (a, b) = key(p); (a, b, t) }).collect();
    // Sort by primary axis, then secondary, then item for determinism.
    sorted.sort_unstable();
    let mut clusters: Vec<Vec<(i64, i64, T)>> = Vec::new();
    for entry in sorted {
        match clusters.last_mut() {
            // Chain clustering: compare against the cluster's last primary
            // value so gentle drift within tolerance stays in one cluster.
            Some(cluster) if entry.0 - cluster.last().expect("nonempty").0 <= tolerance => {
                cluster.push(entry);
            }
            _ => clusters.push(vec![entry]),
        }
    }
    clusters
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|mut c| {
            c.sort_unstable_by_key(|&(_, b, t)| (b, t));
            c.into_iter().map(|(_, _, t)| t).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_contains_and_edges() {
        let r = Rect::new((10, 20), 30, 40);
        assert!(r.contains(Point::new(10, 20)), "origin inclusive");
        assert!(r.contains(Point::new(39, 59)));
        assert!(!r.contains(Point::new(40, 20)), "right edge exclusive");
        assert!(!r.contains(Point::new(10, 60)), "bottom edge exclusive");
        assert!(!r.contains(Point::new(9, 20)));
    }

    #[test]
    fn rect_contains_rect_and_intersects() {
        let outer = Rect::new((0, 0), 100, 100);
        let inner = Rect::new((10, 10), 20, 20);
        let straddling = Rect::new((90, 90), 20, 20);
        let outside = Rect::new((200, 200), 5, 5);
        assert!(outer.contains_rect(&inner));
        assert!(!outer.contains_rect(&straddling));
        assert!(outer.intersects(&straddling));
        assert!(!outer.intersects(&outside));
        assert!(outer.contains_rect(&outer), "containment is reflexive");
    }

    #[test]
    fn hit_test_prefers_topmost() {
        let items = vec![(1, Rect::new((0, 0), 100, 100)), (2, Rect::new((10, 10), 50, 50))];
        assert_eq!(hit_test(&items, Point::new(20, 20)), Some(2), "later item is on top");
        assert_eq!(hit_test(&items, Point::new(80, 80)), Some(1));
        assert_eq!(hit_test(&items, Point::new(500, 500)), None);
    }

    #[test]
    fn gridlet_detection_finds_electrolyte_arrangement() {
        // The classic electrolyte "fishbone" values laid out in a 2×2+
        // grid: Na  Cl / K  HCO3 (IDs 0-3), row-major positions.
        let items = vec![
            (0, Point::new(100, 50)),  // Na
            (1, Point::new(160, 50)),  // Cl
            (2, Point::new(100, 80)),  // K
            (3, Point::new(160, 80)),  // HCO3
        ];
        let grid = detect_grid(&items, 5);
        assert_eq!(grid.rows, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(grid.columns, vec![vec![0, 2], vec![1, 3]]);
        assert!(grid.has_structure());
    }

    #[test]
    fn detection_is_permutation_invariant() {
        let items = vec![
            (0, Point::new(100, 50)),
            (1, Point::new(160, 50)),
            (2, Point::new(100, 80)),
            (3, Point::new(160, 80)),
        ];
        let mut shuffled = items.clone();
        shuffled.reverse();
        shuffled.swap(0, 2);
        assert_eq!(detect_grid(&items, 5), detect_grid(&shuffled, 5));
    }

    #[test]
    fn tolerance_allows_imperfect_alignment() {
        // Hand-placed scraps are never pixel-aligned.
        let items = vec![(0, Point::new(100, 50)), (1, Point::new(160, 53))];
        assert_eq!(detect_grid(&items, 5).rows, vec![vec![0, 1]]);
        assert!(detect_grid(&items, 1).rows.is_empty(), "tight tolerance splits them");
    }

    #[test]
    fn scattered_scraps_have_no_structure() {
        let items =
            vec![(0, Point::new(0, 0)), (1, Point::new(57, 91)), (2, Point::new(130, 33))];
        let grid = detect_grid(&items, 5);
        assert!(!grid.has_structure(), "{grid:?}");
    }

    #[test]
    fn single_item_is_no_structure() {
        let grid = detect_grid(&[(0, Point::new(5, 5))], 10);
        assert!(!grid.has_structure());
        let grid: GridDetection<i32> = detect_grid(&[], 10);
        assert!(!grid.has_structure());
    }

    #[test]
    fn rows_ordered_top_to_bottom_and_left_to_right() {
        let items = vec![
            (10, Point::new(300, 90)),
            (11, Point::new(100, 90)),
            (12, Point::new(200, 20)),
            (13, Point::new(100, 20)),
        ];
        let grid = detect_grid(&items, 5);
        assert_eq!(grid.rows, vec![vec![13, 12], vec![11, 10]]);
    }

    #[test]
    fn drop_target_picks_topmost_bundle() {
        let bundles =
            vec![("outer", Rect::new((0, 0), 300, 300)), ("inner", Rect::new((50, 50), 100, 100))];
        assert_eq!(drop_target(&bundles, Point::new(70, 70)), Some("inner"));
        assert_eq!(drop_target(&bundles, Point::new(250, 250)), Some("outer"));
        assert_eq!(drop_target(&bundles, Point::new(999, 0)), None);
    }
}
