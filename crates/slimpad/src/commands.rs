//! A textual command language for driving a pad session.
//!
//! SLIMPad's real UI was mouse gestures; the reproducible equivalent is
//! a small command language, so sessions can be scripted, replayed, and
//! tested. Each command maps 1:1 onto a user gesture from paper §3:
//!
//! ```text
//! bundle "John Smith" at 20,60 size 600x500            # draw a bundle
//! bundle "Electrolyte" at 330,240 size 260x240 in "John Smith"
//! place spreadsheet "Lasix 40" at 40,120 in "John Smith"   # drop the
//!                                       # current base selection as a scrap
//! activate "Lasix 40"                   # double-click → resolve mark
//! view "Lasix 40"                       # in-place content
//! annotate "Lasix 40" "hold if SBP<90"  # §6 extension
//! link "K 4.1" -> "Lasix 40"            # §6 extension
//! move "Lasix 40" to 50,130
//! rename "John Smith" to "Bed 4"
//! find "lasix"                          # DMI query capability (§6)
//! audit                                 # dangling/drifted mark report
//! render                                # the ASCII screenshot
//! ```
//!
//! Scrap and bundle references are by (unique) label; ambiguous or
//! unknown labels are errors, not guesses.

use crate::pad::{PadError, PadSession};
use crate::render::render_pad;
use basedocs::DocKind;
use slimstore::{BundleHandle, ScrapHandle};
use std::fmt;

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    CreateBundle { name: String, pos: (i64, i64), size: (i64, i64), parent: Option<String> },
    Place { kind: DocKind, label: String, pos: (i64, i64), bundle: Option<String> },
    Activate { label: String },
    View { label: String },
    Annotate { label: String, text: String },
    Link { from: String, to: String },
    MoveScrap { label: String, pos: (i64, i64) },
    Rename { old: String, new: String },
    Find { needle: String },
    Undo,
    Audit,
    Stats,
    Render,
}

/// Errors from parsing or executing commands.
#[derive(Debug)]
pub enum CommandError {
    Parse { message: String },
    UnknownLabel { label: String },
    AmbiguousLabel { label: String, count: usize },
    Pad(PadError),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::Parse { message } => write!(f, "parse error: {message}"),
            CommandError::UnknownLabel { label } => write!(f, "no item labelled {label:?}"),
            CommandError::AmbiguousLabel { label, count } => {
                write!(f, "{count} items labelled {label:?}; labels used in commands must be unique")
            }
            CommandError::Pad(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<PadError> for CommandError {
    fn from(e: PadError) -> Self {
        CommandError::Pad(e)
    }
}

impl From<slimstore::DmiError> for CommandError {
    fn from(e: slimstore::DmiError) -> Self {
        CommandError::Pad(PadError::Dmi(e))
    }
}

// ---- tokenizer ---------------------------------------------------------------

/// Split a command line into words; double-quoted strings are one token
/// (with `\"` escapes).
fn tokenize(line: &str) -> Result<Vec<String>, CommandError> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut token = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some(escaped) => token.push(escaped),
                        None => {
                            return Err(CommandError::Parse {
                                message: "dangling escape at end of line".into(),
                            })
                        }
                    },
                    Some(other) => token.push(other),
                    None => {
                        return Err(CommandError::Parse {
                            message: "unterminated quoted string".into(),
                        })
                    }
                }
            }
            tokens.push(token);
        } else {
            let mut token = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                token.push(c);
                chars.next();
            }
            tokens.push(token);
        }
    }
    Ok(tokens)
}

fn parse_pos(text: &str) -> Result<(i64, i64), CommandError> {
    let (x, y) = text
        .split_once(',')
        .ok_or_else(|| CommandError::Parse { message: format!("expected x,y — got {text:?}") })?;
    let parse = |s: &str| {
        s.trim()
            .parse()
            .map_err(|_| CommandError::Parse { message: format!("bad coordinate {s:?}") })
    };
    Ok((parse(x)?, parse(y)?))
}

fn parse_size(text: &str) -> Result<(i64, i64), CommandError> {
    let (w, h) = text
        .split_once('x')
        .ok_or_else(|| CommandError::Parse { message: format!("expected WxH — got {text:?}") })?;
    let parse = |s: &str| {
        s.trim()
            .parse()
            .map_err(|_| CommandError::Parse { message: format!("bad dimension {s:?}") })
    };
    Ok((parse(w)?, parse(h)?))
}

impl Command {
    /// Parse one command line.
    pub fn parse(line: &str) -> Result<Command, CommandError> {
        let tokens = tokenize(line)?;
        let words: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let err = |m: &str| CommandError::Parse { message: format!("{m} — in {line:?}") };
        match words.as_slice() {
            ["bundle", name, "at", pos, "size", size] => Ok(Command::CreateBundle {
                name: name.to_string(),
                pos: parse_pos(pos)?,
                size: parse_size(size)?,
                parent: None,
            }),
            ["bundle", name, "at", pos, "size", size, "in", parent] => {
                Ok(Command::CreateBundle {
                    name: name.to_string(),
                    pos: parse_pos(pos)?,
                    size: parse_size(size)?,
                    parent: Some(parent.to_string()),
                })
            }
            ["place", kind, label, "at", pos] => Ok(Command::Place {
                kind: DocKind::from_id(kind).ok_or_else(|| err("unknown base type"))?,
                label: label.to_string(),
                pos: parse_pos(pos)?,
                bundle: None,
            }),
            ["place", kind, label, "at", pos, "in", bundle] => Ok(Command::Place {
                kind: DocKind::from_id(kind).ok_or_else(|| err("unknown base type"))?,
                label: label.to_string(),
                pos: parse_pos(pos)?,
                bundle: Some(bundle.to_string()),
            }),
            ["activate", label] => Ok(Command::Activate { label: label.to_string() }),
            ["view", label] => Ok(Command::View { label: label.to_string() }),
            ["annotate", label, text] => {
                Ok(Command::Annotate { label: label.to_string(), text: text.to_string() })
            }
            ["link", from, "->", to] => {
                Ok(Command::Link { from: from.to_string(), to: to.to_string() })
            }
            ["move", label, "to", pos] => {
                Ok(Command::MoveScrap { label: label.to_string(), pos: parse_pos(pos)? })
            }
            ["rename", old, "to", new] => {
                Ok(Command::Rename { old: old.to_string(), new: new.to_string() })
            }
            ["find", needle] => Ok(Command::Find { needle: needle.to_string() }),
            ["undo"] => Ok(Command::Undo),
            ["audit"] => Ok(Command::Audit),
            ["stats"] => Ok(Command::Stats),
            ["render"] => Ok(Command::Render),
            [] => Err(err("empty command")),
            _ => Err(err("unrecognized command")),
        }
    }
}

// ---- execution ------------------------------------------------------------------

fn unique_scrap(pad: &PadSession, label: &str) -> Result<ScrapHandle, CommandError> {
    let hits: Vec<ScrapHandle> = pad
        .dmi()
        .all_scraps()
        .into_iter()
        .filter(|s| pad.dmi().scrap(*s).map(|d| d.name == label).unwrap_or(false))
        .collect();
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => Err(CommandError::UnknownLabel { label: label.to_string() }),
        many => Err(CommandError::AmbiguousLabel { label: label.to_string(), count: many.len() }),
    }
}

fn unique_bundle(pad: &PadSession, name: &str) -> Result<BundleHandle, CommandError> {
    let hits: Vec<BundleHandle> = pad
        .dmi()
        .bundles()
        .into_iter()
        .filter(|b| *b != pad.root_bundle())
        .filter(|b| pad.dmi().bundle(*b).map(|d| d.name == name).unwrap_or(false))
        .collect();
    match hits.as_slice() {
        [one] => Ok(*one),
        [] => Err(CommandError::UnknownLabel { label: name.to_string() }),
        many => Err(CommandError::AmbiguousLabel { label: name.to_string(), count: many.len() }),
    }
}

/// Execute one command against a session; returns the user-visible
/// output (possibly empty).
pub fn execute(pad: &mut PadSession, command: &Command) -> Result<String, CommandError> {
    // Every mutating command gets an undo checkpoint first.
    if matches!(
        command,
        Command::CreateBundle { .. }
            | Command::Place { .. }
            | Command::Annotate { .. }
            | Command::Link { .. }
            | Command::MoveScrap { .. }
            | Command::Rename { .. }
    ) {
        pad.begin_op();
    }
    match command {
        Command::CreateBundle { name, pos, size, parent } => {
            let parent_handle = match parent {
                Some(p) => Some(unique_bundle(pad, p)?),
                None => None,
            };
            pad.create_bundle(name, *pos, size.0, size.1, parent_handle)?;
            Ok(format!("bundle {name:?} created"))
        }
        Command::Place { kind, label, pos, bundle } => {
            let target = match bundle {
                Some(b) => Some(unique_bundle(pad, b)?),
                None => None,
            };
            pad.place_selection(*kind, Some(label), *pos, target)?;
            Ok(format!("scrap {label:?} placed (marked {kind} selection)"))
        }
        Command::Activate { label } => {
            let scrap = unique_scrap(pad, label)?;
            Ok(pad.activate(scrap)?.display)
        }
        Command::View { label } => {
            let scrap = unique_scrap(pad, label)?;
            Ok(pad.extract(scrap)?)
        }
        Command::Annotate { label, text } => {
            let scrap = unique_scrap(pad, label)?;
            pad.dmi_mut().add_annotation(scrap, text)?;
            Ok(format!("annotated {label:?}"))
        }
        Command::Link { from, to } => {
            let from_s = unique_scrap(pad, from)?;
            let to_s = unique_scrap(pad, to)?;
            pad.dmi_mut().link_scraps(from_s, to_s)?;
            Ok(format!("linked {from:?} -> {to:?}"))
        }
        Command::MoveScrap { label, pos } => {
            let scrap = unique_scrap(pad, label)?;
            pad.dmi_mut().update_scrap_pos(scrap, *pos)?;
            Ok(format!("moved {label:?} to {},{}", pos.0, pos.1))
        }
        Command::Rename { old, new } => {
            // Try bundles first, then scraps.
            if let Ok(bundle) = unique_bundle(pad, old) {
                pad.dmi_mut().update_bundle_name(bundle, new)?;
                return Ok(format!("bundle {old:?} renamed to {new:?}"));
            }
            let scrap = unique_scrap(pad, old)?;
            pad.dmi_mut().update_scrap_name(scrap, new)?;
            Ok(format!("scrap {old:?} renamed to {new:?}"))
        }
        Command::Find { needle } => {
            let scraps = pad.dmi().find_scraps(needle);
            let bundles = pad.dmi().find_bundles(needle);
            let mut lines = Vec::new();
            for b in bundles {
                if b != pad.root_bundle() {
                    lines.push(format!("bundle: {}", pad.dmi().bundle(b).unwrap().name));
                }
            }
            for s in scraps {
                let crumbs: Vec<String> = pad
                    .dmi()
                    .bundle_path(s)
                    .iter()
                    .filter(|b| **b != pad.root_bundle())
                    .map(|b| pad.dmi().bundle(*b).unwrap().name)
                    .collect();
                let data = pad.dmi().scrap(s).unwrap();
                if crumbs.is_empty() {
                    lines.push(format!("scrap: {}", data.name));
                } else {
                    lines.push(format!("scrap: {} ({})", data.name, crumbs.join(" › ")));
                }
            }
            if lines.is_empty() {
                Ok(format!("no matches for {needle:?}"))
            } else {
                Ok(lines.join("\n"))
            }
        }
        Command::Undo => {
            if pad.undo()? {
                Ok("undone".into())
            } else {
                Ok("nothing to undo".into())
            }
        }
        Command::Audit => {
            let audit = pad.marks().audit();
            if audit.is_empty() {
                return Ok("no marks".into());
            }
            let lines: Vec<String> = audit
                .iter()
                .map(|a| {
                    let status = match (a.live, a.drifted) {
                        (false, _) => "DANGLING",
                        (true, true) => "drifted",
                        (true, false) => "ok",
                    };
                    format!("{} [{}] {}", a.mark_id, a.kind, status)
                })
                .collect();
            Ok(lines.join("\n"))
        }
        Command::Stats => Ok(pad.stats().to_string()),
        Command::Render => Ok(render_pad(pad)?),
    }
}

/// Run a whole script (one command per line; `#` comments and blank
/// lines skipped). Returns each command's output. Stops at the first
/// error, reporting the offending line number.
pub fn run_script(pad: &mut PadSession, script: &str) -> Result<Vec<String>, CommandError> {
    let mut outputs = Vec::new();
    for (no, line) in script.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let command = Command::parse(trimmed).map_err(|e| CommandError::Parse {
            message: format!("line {}: {e}", no + 1),
        })?;
        let output = execute(pad, &command).map_err(|e| match e {
            CommandError::Parse { message } => {
                CommandError::Parse { message: format!("line {}: {message}", no + 1) }
            }
            other => other,
        })?;
        outputs.push(output);
    }
    Ok(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use basedocs::spreadsheet::Workbook;
    use basedocs::SpreadsheetApp;
    use marks::AppModule;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn session() -> (PadSession, Rc<RefCell<SpreadsheetApp>>) {
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
        wb.sheet_mut("Sheet1").unwrap().set_a1("A2", "KCl 20").unwrap();
        let mut excel = SpreadsheetApp::new();
        excel.open(wb).unwrap();
        excel.select("meds.xls", "Sheet1", "A1").unwrap();
        let excel = Rc::new(RefCell::new(excel));
        let mut pad = PadSession::new("Rounds").unwrap();
        pad.marks_mut()
            .register_module(Box::new(AppModule::in_context("spreadsheet", Rc::clone(&excel))))
            .unwrap();
        (pad, excel)
    }

    #[test]
    fn tokenizer_handles_quotes_and_escapes() {
        assert_eq!(
            tokenize(r#"annotate "K 4.1" "say \"hi\"""#).unwrap(),
            vec!["annotate", "K 4.1", "say \"hi\""]
        );
        assert!(tokenize(r#"bad "unterminated"#).is_err());
    }

    #[test]
    fn parse_all_command_forms() {
        for line in [
            r#"bundle "John Smith" at 20,60 size 600x500"#,
            r#"bundle "Electrolyte" at 330,240 size 260x240 in "John Smith""#,
            r#"place spreadsheet "Lasix 40" at 40,120 in "John Smith""#,
            r#"place xml "K" at 10,10"#,
            r#"activate "Lasix 40""#,
            r#"view "Lasix 40""#,
            r#"annotate "Lasix 40" "note""#,
            r#"link "a" -> "b""#,
            r#"move "a" to 5,6"#,
            r#"rename "a" to "b""#,
            r#"find "lasix""#,
            "audit",
            "stats",
            "render",
        ] {
            assert!(Command::parse(line).is_ok(), "{line}");
        }
        for bad in ["", "frobnicate", "bundle x at 1,2", "place floppy x at 1,2", "move a to b"] {
            assert!(Command::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn scripted_session_end_to_end() {
        let (mut pad, _excel) = session();
        let outputs = run_script(
            &mut pad,
            r#"
            # build the pad
            bundle "John Smith" at 20,60 size 600x500
            place spreadsheet "Lasix 40" at 40,120 in "John Smith"
            annotate "Lasix 40" "hold if SBP<90"
            move "Lasix 40" to 50,130
            find "lasix"
            audit
            render
            "#,
        )
        .unwrap();
        assert_eq!(outputs.len(), 7);
        assert!(outputs[4].contains("John Smith"), "find shows breadcrumbs: {}", outputs[4]);
        assert!(outputs[5].contains("ok"), "audit: {}", outputs[5]);
        assert!(outputs[6].contains("·Lasix 40*"), "render shows annotated scrap: {}", outputs[6]);
    }

    #[test]
    fn activate_via_command_resolves_mark() {
        let (mut pad, excel) = session();
        run_script(&mut pad, r#"place spreadsheet "Lasix 40" at 10,30"#).unwrap();
        excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap();
        let out = execute(&mut pad, &Command::parse(r#"activate "Lasix 40""#).unwrap()).unwrap();
        assert!(out.contains("[Lasix 40]"), "{out}");
    }

    #[test]
    fn unknown_and_ambiguous_labels_error() {
        let (mut pad, excel) = session();
        assert!(matches!(
            execute(&mut pad, &Command::parse(r#"activate "ghost""#).unwrap()),
            Err(CommandError::UnknownLabel { .. })
        ));
        run_script(&mut pad, r#"place spreadsheet "dup" at 10,30"#).unwrap();
        excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap();
        run_script(&mut pad, r#"place spreadsheet "dup" at 10,60"#).unwrap();
        assert!(matches!(
            execute(&mut pad, &Command::parse(r#"view "dup""#).unwrap()),
            Err(CommandError::AmbiguousLabel { count: 2, .. })
        ));
    }

    #[test]
    fn rename_prefers_bundles_then_scraps() {
        let (mut pad, _excel) = session();
        run_script(
            &mut pad,
            r#"
            bundle "X" at 0,0 size 100x100
            place spreadsheet "Y" at 10,10 in "X"
            rename "X" to "Ward"
            rename "Y" to "med"
            "#,
        )
        .unwrap();
        assert_eq!(pad.dmi().find_bundles("Ward").len(), 1);
        assert_eq!(pad.dmi().find_scraps("med").len(), 1);
    }

    #[test]
    fn undo_command_reverts_last_mutation() {
        let (mut pad, _excel) = session();
        run_script(&mut pad, r#"bundle "Keep" at 0,0 size 100x100"#).unwrap();
        run_script(&mut pad, r#"bundle "Oops" at 200,0 size 100x100"#).unwrap();
        assert_eq!(pad.dmi().find_bundles("Oops").len(), 1);
        let out = run_script(&mut pad, "undo").unwrap();
        assert_eq!(out, vec!["undone"]);
        assert!(pad.dmi().find_bundles("Oops").is_empty());
        assert_eq!(pad.dmi().find_bundles("Keep").len(), 1);
        // Two more undos: one reverts "Keep", then the stack is empty.
        run_script(&mut pad, "undo").unwrap();
        assert_eq!(run_script(&mut pad, "undo").unwrap(), vec!["nothing to undo"]);
        assert!(pad.dmi().check().is_conformant());
    }

    #[test]
    fn stats_command_reports_counts() {
        let (mut pad, _excel) = session();
        run_script(
            &mut pad,
            "bundle \"B\" at 0,0 size 100x100\nplace spreadsheet \"s\" at 10,10 in \"B\"\nannotate \"s\" \"note\"",
        )
        .unwrap();
        let out = run_script(&mut pad, "stats").unwrap().remove(0);
        assert!(out.contains("1 bundle(s)"), "{out}");
        assert!(out.contains("1 scrap(s)"), "{out}");
        assert!(out.contains("1 annotation(s)"), "{out}");
        assert!(out.contains("1 live"), "{out}");
    }

    #[test]
    fn script_errors_carry_line_numbers() {
        let (mut pad, _excel) = session();
        let err = run_script(&mut pad, "render\nfrobnicate\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
