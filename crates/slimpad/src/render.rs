//! ASCII rendering of pads: the textual "screenshot".
//!
//! Paper Figure 4 is a screenshot of the 'Rounds' pad; the examples
//! regenerate that state and render it through this module. Rendering is
//! deterministic, so goldens in tests are stable.

use crate::pad::{PadError, PadSession};
use slimstore::BundleHandle;

/// Horizontal pad-units per character cell.
const SCALE_X: i64 = 10;
/// Vertical pad-units per character cell.
const SCALE_Y: i64 = 30;

/// Render the whole pad: an outer window frame titled with the pad name,
/// bundles as nested boxes (name in the top border), scraps as
/// `·label` glyphs (`*` suffix marks annotated scraps).
pub fn render_pad(session: &PadSession) -> Result<String, PadError> {
    let dmi = session.dmi();
    let pad_data = dmi.pad(session.pad())?;
    let root = session.root_bundle();
    let root_data = dmi.bundle(root)?;
    let cols = (root_data.width / SCALE_X).max(20) as usize;
    let rows = (root_data.height / SCALE_Y).max(8) as usize;
    let mut canvas = Canvas::new(cols + 2, rows + 2);
    canvas.box_at(0, 0, cols + 2, rows + 2, &format!(" {} ", pad_data.name));
    render_bundle_contents(session, root, &mut canvas)?;
    Ok(canvas.to_string())
}

fn render_bundle_contents(
    session: &PadSession,
    bundle: BundleHandle,
    canvas: &mut Canvas,
) -> Result<(), PadError> {
    let dmi = session.dmi();
    let data = dmi.bundle(bundle)?;
    for nested in &data.nested {
        let nd = dmi.bundle(*nested)?;
        // Content is drawn inside the window frame: +1 for the border.
        let x = (nd.pos.0 / SCALE_X).max(0) as usize + 1;
        let y = (nd.pos.1 / SCALE_Y).max(0) as usize + 1;
        let w = ((nd.width / SCALE_X) as usize).max(nd.name.len() + 4);
        let h = ((nd.height / SCALE_Y) as usize).max(3);
        canvas.box_at(x, y, w, h, &format!(" {} ", nd.name));
        render_bundle_contents(session, *nested, canvas)?;
    }
    for scrap in &data.scraps {
        let sd = dmi.scrap(*scrap)?;
        let x = (sd.pos.0 / SCALE_X).max(0) as usize + 1;
        let y = (sd.pos.1 / SCALE_Y).max(0) as usize + 1;
        let annotated = !dmi.annotations(*scrap).unwrap_or_default().is_empty();
        let label = if annotated { format!("·{}*", sd.name) } else { format!("·{}", sd.name) };
        canvas.text_at(x, y, &label);
    }
    Ok(())
}

/// Compose two text blocks into side-by-side columns separated by a
/// vertical rule — the two-monitor feel of simultaneous viewing
/// (paper Figure 6's two windows).
pub fn side_by_side(left: &str, right: &str) -> String {
    let left_lines: Vec<&str> = left.lines().collect();
    let right_lines: Vec<&str> = right.lines().collect();
    let left_width = left_lines.iter().map(|l| l.chars().count()).max().unwrap_or(0);
    let rows = left_lines.len().max(right_lines.len());
    let mut out = String::new();
    for i in 0..rows {
        let l = left_lines.get(i).copied().unwrap_or("");
        let r = right_lines.get(i).copied().unwrap_or("");
        let pad = left_width - l.chars().count();
        out.push_str(l);
        for _ in 0..pad {
            out.push(' ');
        }
        out.push_str(" │ ");
        out.push_str(r);
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// A fixed-size character canvas.
struct Canvas {
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl Canvas {
    fn new(cols: usize, rows: usize) -> Self {
        Canvas { cols, rows, cells: vec![' '; cols * rows] }
    }

    fn set(&mut self, x: usize, y: usize, c: char) {
        if x < self.cols && y < self.rows {
            self.cells[y * self.cols + x] = c;
        }
    }

    /// Draw a box with a title embedded in the top border.
    fn box_at(&mut self, x: usize, y: usize, w: usize, h: usize, title: &str) {
        if w < 2 || h < 2 {
            return;
        }
        for dx in 0..w {
            self.set(x + dx, y, '-');
            self.set(x + dx, y + h - 1, '-');
        }
        for dy in 0..h {
            self.set(x, y + dy, '|');
            self.set(x + w - 1, y + dy, '|');
        }
        for (corner_x, corner_y) in [(x, y), (x + w - 1, y), (x, y + h - 1), (x + w - 1, y + h - 1)]
        {
            self.set(corner_x, corner_y, '+');
        }
        // Title in the top border, truncated to fit.
        for (i, c) in title.chars().enumerate().take(w.saturating_sub(2)) {
            self.set(x + 1 + i, y, c);
        }
    }

    fn text_at(&mut self, x: usize, y: usize, text: &str) {
        for (i, c) in text.chars().enumerate() {
            self.set(x + i, y, c);
        }
    }
}

impl std::fmt::Display for Canvas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for row in 0..self.rows {
            let line: String = self.cells[row * self.cols..(row + 1) * self.cols]
                .iter()
                .collect::<String>();
            writeln!(f, "{}", line.trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pad::PadSession;

    fn demo_pad() -> PadSession {
        let mut pad = PadSession::new("Rounds").unwrap();
        let john = pad.create_bundle("John Smith", (20, 60), 500, 450, None).unwrap();
        let electro = pad.create_bundle("Electrolyte", (250, 150), 220, 240, Some(john)).unwrap();
        // Scraps need marks; fabricate marks directly in the manager.
        let mark = pad
            .marks_mut()
            .create_mark_at(marks::MarkAddress::Pdf(basedocs::PdfAddress {
                file_name: "guide.pdf".into(),
                page: 0,
                line: 0,
                span: basedocs::Span::new(0, 5),
            }))
            .unwrap();
        pad.place_mark(&mark, Some("Lasix 40"), (40, 120), Some(john)).unwrap();
        let s = pad.place_mark(&mark, Some("Na 140"), (260, 210), Some(electro)).unwrap();
        pad.dmi_mut().add_annotation(s, "trending down").unwrap();
        pad
    }

    #[test]
    fn render_shows_window_bundles_and_scraps() {
        let pad = demo_pad();
        let out = render_pad(&pad).unwrap();
        assert!(out.contains(" Rounds "), "{out}");
        assert!(out.contains(" John Smith "), "{out}");
        assert!(out.contains(" Electrolyte "), "{out}");
        assert!(out.contains("·Lasix 40"), "{out}");
        assert!(out.contains("·Na 140*"), "annotated scrap gets a star: {out}");
    }

    #[test]
    fn render_is_deterministic() {
        let pad = demo_pad();
        assert_eq!(render_pad(&pad).unwrap(), render_pad(&pad).unwrap());
    }

    #[test]
    fn nested_box_sits_inside_parent_box() {
        let pad = demo_pad();
        let out = render_pad(&pad).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        let john_top = lines.iter().position(|l| l.contains(" John Smith ")).unwrap();
        let electro_top = lines.iter().position(|l| l.contains(" Electrolyte ")).unwrap();
        assert!(electro_top > john_top, "nested bundle drawn below parent's top border");
    }

    #[test]
    fn side_by_side_aligns_columns() {
        let combined = side_by_side("aa\nb", "XXX\nYY\nZ");
        let lines: Vec<&str> = combined.lines().collect();
        assert_eq!(lines, vec!["aa │ XXX", "b  │ YY", "   │ Z"]);
    }

    #[test]
    fn side_by_side_handles_empty_sides() {
        assert_eq!(side_by_side("", "x"), " │ x\n");
        assert_eq!(side_by_side("x", ""), "x │\n");
    }

    #[test]
    fn empty_pad_renders_frame_only() {
        let pad = PadSession::new("Empty").unwrap();
        let out = render_pad(&pad).unwrap();
        assert!(out.contains(" Empty "), "{out}");
        assert!(!out.contains('·'));
    }
}
