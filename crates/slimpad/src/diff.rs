//! Pad diffing: what changed between two versions of a pad?
//!
//! The paper's sharing story ("sharing bundles to establish collectively
//! maintained, situated awareness", §2; the weekend-handoff task, §6)
//! implies the question every incoming clinician asks: *what changed
//! since I last saw this pad?* This module compares two pad states and
//! reports scrap- and bundle-level changes.
//!
//! Identity across versions rides on **mark ids** for scraps (the wire
//! is the scrap's identity; labels are mutable decoration) and on names
//! for bundles (bundles have no other stable key in the Figure 3 model).

use crate::pad::PadSession;
use slimstore::{ScrapHandle, SlimPadDmi};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use trim::{Atom, ConjQuery, Value};

/// One reported change.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PadChange {
    /// A scrap with this mark id appeared.
    ScrapAdded { mark_id: String, label: String },
    /// A scrap with this mark id disappeared.
    ScrapRemoved { mark_id: String, label: String },
    /// Same mark, new label.
    ScrapRelabelled { mark_id: String, from: String, to: String },
    /// Same mark, moved position.
    ScrapMoved { mark_id: String, from: (i64, i64), to: (i64, i64) },
    /// Annotations on the scrap changed.
    AnnotationsChanged { mark_id: String, added: Vec<String>, removed: Vec<String> },
    /// A bundle with this name appeared.
    BundleAdded { name: String },
    /// A bundle with this name disappeared.
    BundleRemoved { name: String },
}

impl fmt::Display for PadChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PadChange::ScrapAdded { mark_id, label } => {
                write!(f, "+ scrap {label:?} ({mark_id})")
            }
            PadChange::ScrapRemoved { mark_id, label } => {
                write!(f, "- scrap {label:?} ({mark_id})")
            }
            PadChange::ScrapRelabelled { mark_id, from, to } => {
                write!(f, "~ scrap {mark_id}: {from:?} → {to:?}")
            }
            PadChange::ScrapMoved { mark_id, from, to } => {
                write!(f, "~ scrap {mark_id} moved {},{} → {},{}", from.0, from.1, to.0, to.1)
            }
            PadChange::AnnotationsChanged { mark_id, added, removed } => {
                write!(f, "~ scrap {mark_id} notes: +{} -{}", added.len(), removed.len())
            }
            PadChange::BundleAdded { name } => write!(f, "+ bundle {name:?}"),
            PadChange::BundleRemoved { name } => write!(f, "- bundle {name:?}"),
        }
    }
}

/// Per-scrap snapshot keyed by first mark id.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ScrapFacts {
    label: String,
    pos: (i64, i64),
    annotations: Vec<String>,
}

/// Typed handles for the scrap resources a join binds: the conjunctive
/// engine answers in store resources, the DMI accessors want handles.
fn scraps_by_atom(dmi: &SlimPadDmi) -> BTreeMap<Atom, ScrapHandle> {
    dmi.all_scraps().into_iter().map(|h| (h.resource(), h)).collect()
}

fn scrap_facts(dmi: &SlimPadDmi) -> BTreeMap<String, ScrapFacts> {
    // The identity walk is a two-pattern conjunctive join,
    // `(?s scrapMark ?m) ⋈ (?m markId ?id)`, so only marked scraps are
    // visited. Rows come back sorted `(s, m, id)`: the first row per
    // scrap carries its first mark — the identity key.
    let store = dmi.store();
    let by_atom = scraps_by_atom(dmi);
    let (Some(mark_p), Some(id_p)) = (store.find_atom("scrapMark"), store.find_atom("markId"))
    else {
        return BTreeMap::new();
    };
    let mut q = ConjQuery::new();
    let (s, m, id) = (q.var("s"), q.var("m"), q.var("id"));
    q.pattern(s, mark_p, m).pattern(m, id_p, id);
    let Ok(rows) = q.solve(store) else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    let mut seen = BTreeSet::new();
    for row in rows {
        let Value::Resource(s_atom) = row[0] else { continue };
        if !seen.insert(s_atom) {
            continue;
        }
        let Some(&scrap) = by_atom.get(&s_atom) else { continue };
        let Some(mark_id) = store.value_str(row[2]) else { continue };
        let Ok(data) = dmi.scrap(scrap) else { continue };
        out.insert(
            mark_id.to_string(),
            ScrapFacts {
                label: data.name,
                pos: data.pos,
                annotations: dmi.annotations(scrap).unwrap_or_default(),
            },
        );
    }
    out
}

fn bundle_names(dmi: &SlimPadDmi, skip: Option<slimstore::BundleHandle>) -> BTreeSet<String> {
    dmi.bundles()
        .into_iter()
        .filter(|b| Some(*b) != skip)
        .filter_map(|b| dmi.bundle(b).ok().map(|d| d.name))
        .collect()
}

/// Compare two pad sessions (e.g. Friday's file vs Saturday's live pad).
/// Changes are reported in a deterministic order.
pub fn diff_pads(old: &PadSession, new: &PadSession) -> Vec<PadChange> {
    let old_scraps = scrap_facts(old.dmi());
    let new_scraps = scrap_facts(new.dmi());
    let mut changes = Vec::new();

    for (mark_id, facts) in &old_scraps {
        match new_scraps.get(mark_id) {
            None => changes.push(PadChange::ScrapRemoved {
                mark_id: mark_id.clone(),
                label: facts.label.clone(),
            }),
            Some(now) => {
                if now.label != facts.label {
                    changes.push(PadChange::ScrapRelabelled {
                        mark_id: mark_id.clone(),
                        from: facts.label.clone(),
                        to: now.label.clone(),
                    });
                }
                if now.pos != facts.pos {
                    changes.push(PadChange::ScrapMoved {
                        mark_id: mark_id.clone(),
                        from: facts.pos,
                        to: now.pos,
                    });
                }
                if now.annotations != facts.annotations {
                    let added: Vec<String> = now
                        .annotations
                        .iter()
                        .filter(|a| !facts.annotations.contains(a))
                        .cloned()
                        .collect();
                    let removed: Vec<String> = facts
                        .annotations
                        .iter()
                        .filter(|a| !now.annotations.contains(a))
                        .cloned()
                        .collect();
                    changes.push(PadChange::AnnotationsChanged {
                        mark_id: mark_id.clone(),
                        added,
                        removed,
                    });
                }
            }
        }
    }
    for (mark_id, facts) in &new_scraps {
        if !old_scraps.contains_key(mark_id) {
            changes.push(PadChange::ScrapAdded {
                mark_id: mark_id.clone(),
                label: facts.label.clone(),
            });
        }
    }

    let old_bundles = bundle_names(old.dmi(), Some(old.root_bundle()));
    let new_bundles = bundle_names(new.dmi(), Some(new.root_bundle()));
    for name in old_bundles.difference(&new_bundles) {
        changes.push(PadChange::BundleRemoved { name: name.clone() });
    }
    for name in new_bundles.difference(&old_bundles) {
        changes.push(PadChange::BundleAdded { name: name.clone() });
    }
    changes.sort();
    changes
}

/// Scraps in `pad` whose first mark id equals `mark_id` — the reverse
/// lookup a diff viewer needs to jump from a change to the scrap.
/// Candidates come off the join `(?s scrapMark ?m) ⋈ (?m markId "id")`
/// — one OSP probe on the literal, not a scan of every scrap — then
/// the first-mark identity rule filters them.
pub fn scraps_with_mark(pad: &PadSession, mark_id: &str) -> Vec<ScrapHandle> {
    let dmi = pad.dmi();
    let store = dmi.store();
    let by_atom = scraps_by_atom(dmi);
    let (Some(mark_p), Some(id_p), Some(id_lit)) = (
        store.find_atom("scrapMark"),
        store.find_atom("markId"),
        store.find_atom(mark_id),
    ) else {
        return Vec::new();
    };
    let mut q = ConjQuery::new();
    let (s, m) = (q.var("s"), q.var("m"));
    q.pattern(s, mark_p, m).pattern(m, id_p, Value::Literal(id_lit));
    let Ok(rows) = q.solve(store) else {
        return Vec::new();
    };
    let mut out: Vec<ScrapHandle> = rows
        .into_iter()
        .filter_map(|row| match row[0] {
            Value::Resource(a) => by_atom.get(&a).copied(),
            _ => None,
        })
        .filter(|s| {
            dmi.scrap(*s)
                .ok()
                .and_then(|d| d.marks.first().copied())
                .and_then(|h| dmi.mark_handle(h).ok())
                .map(|m| m.mark_id == mark_id)
                .unwrap_or(false)
        })
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pad::PadSession;
    use basedocs::{PdfAddress, Span};
    use marks::MarkAddress;

    fn mark_for(pad: &mut PadSession, n: usize) -> String {
        pad.marks_mut()
            .create_mark_at(MarkAddress::Pdf(PdfAddress {
                file_name: format!("doc{n}.pdf"),
                page: 0,
                line: 0,
                span: Span::new(0, 3),
            }))
            .unwrap()
    }

    fn base_pad() -> PadSession {
        let mut pad = PadSession::new("Friday").unwrap();
        pad.create_bundle("Bed 4", (20, 60), 300, 200, None).unwrap();
        let m0 = mark_for(&mut pad, 0);
        let m1 = mark_for(&mut pad, 1);
        pad.place_mark(&m0, Some("K 3.4"), (40, 90), None).unwrap();
        pad.place_mark(&m1, Some("Lasix 40"), (40, 120), None).unwrap();
        pad
    }

    #[test]
    fn identical_pads_have_no_diff() {
        let a = base_pad();
        let b = base_pad();
        assert!(diff_pads(&a, &b).is_empty());
    }

    #[test]
    fn add_remove_relabel_move_annotate_all_reported() {
        let old = base_pad();
        let mut new = base_pad();
        // Relabel + move the K scrap; annotate the Lasix scrap; add a
        // scrap and a bundle; remove nothing yet.
        let k = new.dmi().find_scraps("K 3.4").remove(0);
        new.dmi_mut().update_scrap_name(k, "K 4.0").unwrap();
        new.dmi_mut().update_scrap_pos(k, (50, 95)).unwrap();
        let lasix = new.dmi().find_scraps("Lasix 40").remove(0);
        new.dmi_mut().add_annotation(lasix, "dose held Sat am").unwrap();
        let m9 = mark_for(&mut new, 9);
        new.place_mark(&m9, Some("new echo result"), (40, 150), None).unwrap();
        new.create_bundle("Bed 7", (400, 60), 300, 200, None).unwrap();

        let changes = diff_pads(&old, &new);
        let rendered: Vec<String> = changes.iter().map(|c| c.to_string()).collect();
        assert!(changes.iter().any(|c| matches!(c, PadChange::ScrapRelabelled { from, to, .. } if from == "K 3.4" && to == "K 4.0")), "{rendered:?}");
        assert!(changes.iter().any(|c| matches!(c, PadChange::ScrapMoved { .. })), "{rendered:?}");
        assert!(changes.iter().any(|c| matches!(c, PadChange::AnnotationsChanged { added, .. } if added == &vec!["dose held Sat am".to_string()])), "{rendered:?}");
        assert!(changes.iter().any(|c| matches!(c, PadChange::ScrapAdded { label, .. } if label == "new echo result")), "{rendered:?}");
        assert!(changes.iter().any(|c| matches!(c, PadChange::BundleAdded { name } if name == "Bed 7")), "{rendered:?}");
        assert!(!changes.iter().any(|c| matches!(c, PadChange::ScrapRemoved { .. })));
    }

    #[test]
    fn removal_reported_with_last_known_label() {
        let old = base_pad();
        let mut new = base_pad();
        let k = new.dmi().find_scraps("K 3.4").remove(0);
        new.dmi_mut().delete_scrap(k).unwrap();
        let changes = diff_pads(&old, &new);
        assert!(changes
            .iter()
            .any(|c| matches!(c, PadChange::ScrapRemoved { label, .. } if label == "K 3.4")));
    }

    #[test]
    fn diff_works_across_save_load() {
        let old = base_pad();
        let saved = old.save_xml();
        let reloaded = PadSession::load_xml(&saved, marks::MarkManager::new()).unwrap();
        assert!(diff_pads(&old, &reloaded).is_empty(), "round-trip is not a change");
    }

    #[test]
    fn reverse_lookup_finds_scrap_for_change() {
        let pad = base_pad();
        let changes = diff_pads(&PadSession::new("empty").unwrap(), &pad);
        let added: Vec<&str> = changes
            .iter()
            .filter_map(|c| match c {
                PadChange::ScrapAdded { mark_id, .. } => Some(mark_id.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(added.len(), 2);
        for mark_id in added {
            assert_eq!(scraps_with_mark(&pad, mark_id).len(), 1);
        }
    }

    #[test]
    fn display_is_compact_and_informative() {
        let c = PadChange::ScrapRelabelled {
            mark_id: "mark:0".into(),
            from: "K 3.4".into(),
            to: "K 4.0".into(),
        };
        assert_eq!(c.to_string(), "~ scrap mark:0: \"K 3.4\" → \"K 4.0\"");
    }
}
