//! Bundle templates (§6 extension: "templates for bundles").
//!
//! The resident's worksheet of paper Figure 2 has the same four-column
//! structure for every patient. A [`BundleTemplate`] captures that
//! structure — bundle geometry, scrap slots with labels and relative
//! positions, nested sub-bundles — *without* the marks, and stamps out
//! fresh bundles for new patients. Slots are created with a placeholder
//! mark id and are filled with live marks via [`BundleTemplate`]'s
//! `PLACEHOLDER_MARK` and [`crate::PadSession::place_mark`]-style flows.

use crate::pad::{PadError, PadSession};
use slimstore::{BundleHandle, ScrapHandle, SlimPadDmi};

/// The mark id given to template-slot scraps until a real mark fills
/// them. It never resolves; audits and activation report it cleanly.
pub const PLACEHOLDER_MARK: &str = "mark:template-placeholder";

/// One scrap slot in a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrapSlot {
    pub label: String,
    /// Position relative to the template bundle's origin.
    pub rel_pos: (i64, i64),
}

/// A reusable bundle structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleTemplate {
    pub name: String,
    pub width: i64,
    pub height: i64,
    pub slots: Vec<ScrapSlot>,
    /// Nested templates with their relative origins.
    pub nested: Vec<((i64, i64), BundleTemplate)>,
}

impl BundleTemplate {
    /// Capture the structure of an existing bundle (recursively). Marks
    /// and annotations are deliberately not captured — a template is
    /// structure, not content.
    pub fn capture(dmi: &SlimPadDmi, bundle: BundleHandle) -> Result<Self, PadError> {
        let data = dmi.bundle(bundle)?;
        let origin = data.pos;
        let mut slots = Vec::new();
        for s in &data.scraps {
            let sd = dmi.scrap(*s)?;
            slots.push(ScrapSlot {
                label: sd.name,
                rel_pos: (sd.pos.0 - origin.0, sd.pos.1 - origin.1),
            });
        }
        slots.sort_by(|a, b| (a.rel_pos.1, a.rel_pos.0, &a.label).cmp(&(b.rel_pos.1, b.rel_pos.0, &b.label)));
        let mut nested = Vec::new();
        for n in &data.nested {
            let nd = dmi.bundle(*n)?;
            nested.push((
                (nd.pos.0 - origin.0, nd.pos.1 - origin.1),
                BundleTemplate::capture(dmi, *n)?,
            ));
        }
        nested.sort_by_key(|(pos, _)| *pos);
        Ok(BundleTemplate {
            name: data.name,
            width: data.width,
            height: data.height,
            slots,
            nested,
        })
    }

    /// Stamp the template onto a pad at `pos`, inside `parent` (or the
    /// pad surface). Slot scraps carry [`PLACEHOLDER_MARK`]. Returns the
    /// new bundle and the created slot scraps in template order.
    pub fn instantiate(
        &self,
        session: &mut PadSession,
        name: &str,
        pos: (i64, i64),
        parent: Option<BundleHandle>,
    ) -> Result<(BundleHandle, Vec<ScrapHandle>), PadError> {
        let bundle = session.create_bundle(name, pos, self.width, self.height, parent)?;
        let mut scraps = Vec::new();
        for slot in &self.slots {
            let scrap = session.dmi_mut().create_scrap(
                &slot.label,
                (pos.0 + slot.rel_pos.0, pos.1 + slot.rel_pos.1),
                PLACEHOLDER_MARK,
            )?;
            session.dmi_mut().add_scrap(bundle, scrap)?;
            scraps.push(scrap);
        }
        for (rel, sub) in &self.nested {
            let (_, mut sub_scraps) = sub.instantiate(
                session,
                &sub.name,
                (pos.0 + rel.0, pos.1 + rel.1),
                Some(bundle),
            )?;
            scraps.append(&mut sub_scraps);
        }
        Ok((bundle, scraps))
    }

    /// Fill a placeholder slot with a real mark: attaches the mark and
    /// removes the placeholder handle.
    pub fn fill_slot(
        session: &mut PadSession,
        scrap: ScrapHandle,
        mark_id: &str,
    ) -> Result<(), PadError> {
        let dmi = session.dmi_mut();
        let handle = dmi.create_mark_handle(mark_id);
        dmi.add_scrap_mark(scrap, handle)?;
        // Remove any placeholder handles now that a real mark exists.
        let data = dmi.scrap(scrap)?;
        let placeholders: Vec<_> = data
            .marks
            .iter()
            .copied()
            .filter(|h| {
                dmi.mark_handle(*h).map(|d| d.mark_id == PLACEHOLDER_MARK).unwrap_or(false)
            })
            .collect();
        for p in placeholders {
            dmi.remove_scrap_mark(scrap, p)?;
        }
        Ok(())
    }

    /// Count all slots, including nested ones.
    pub fn slot_count(&self) -> usize {
        self.slots.len() + self.nested.iter().map(|(_, t)| t.slot_count()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A resident's-worksheet row: Problems / Labs / To-do columns.
    fn worksheet_row(session: &mut PadSession) -> BundleHandle {
        let row = session.create_bundle("Patient Row", (50, 60), 900, 240, None).unwrap();
        let labs = session.create_bundle("Labs", (350, 90), 250, 180, Some(row)).unwrap();
        let dmi = session.dmi_mut();
        let s1 = dmi.create_scrap("problem: CHF", (70, 90), PLACEHOLDER_MARK).unwrap();
        dmi.add_scrap(row, s1).unwrap();
        let s2 = dmi.create_scrap("K", (360, 120), PLACEHOLDER_MARK).unwrap();
        dmi.add_scrap(labs, s2).unwrap();
        let s3 = dmi.create_scrap("todo: echo", (650, 90), PLACEHOLDER_MARK).unwrap();
        dmi.add_scrap(row, s3).unwrap();
        row
    }

    #[test]
    fn capture_records_structure_with_relative_positions() {
        let mut session = PadSession::new("Worksheet").unwrap();
        let row = worksheet_row(&mut session);
        let template = BundleTemplate::capture(session.dmi(), row).unwrap();
        assert_eq!(template.name, "Patient Row");
        assert_eq!(template.slots.len(), 2, "row-level scraps only");
        assert_eq!(template.nested.len(), 1);
        assert_eq!(template.nested[0].0, (300, 30), "nested origin is relative");
        assert_eq!(template.nested[0].1.slots[0].rel_pos, (10, 30));
        assert_eq!(template.slot_count(), 3);
    }

    #[test]
    fn instantiate_stamps_a_fresh_conformant_bundle() {
        let mut session = PadSession::new("Worksheet").unwrap();
        let row = worksheet_row(&mut session);
        let template = BundleTemplate::capture(session.dmi(), row).unwrap();
        let (new_row, slots) =
            template.instantiate(&mut session, "Jane Doe", (50, 360), None).unwrap();
        assert_eq!(slots.len(), 3);
        let data = session.dmi().bundle(new_row).unwrap();
        assert_eq!(data.name, "Jane Doe");
        assert_eq!(data.pos, (50, 360));
        assert_eq!(data.nested.len(), 1);
        // Absolute positions shifted by the new origin.
        let nested = session.dmi().bundle(data.nested[0]).unwrap();
        assert_eq!(nested.pos, (350, 390));
        assert!(session.dmi().check().is_conformant(), "{:?}", session.dmi().check().violations);
    }

    #[test]
    fn fill_slot_replaces_placeholder() {
        let mut session = PadSession::new("Worksheet").unwrap();
        let row = worksheet_row(&mut session);
        let template = BundleTemplate::capture(session.dmi(), row).unwrap();
        let (_, slots) = template.instantiate(&mut session, "Jane Doe", (50, 360), None).unwrap();
        // Fabricate a real mark.
        let mark = session
            .marks_mut()
            .create_mark_at(marks::MarkAddress::Pdf(basedocs::PdfAddress {
                file_name: "labs.pdf".into(),
                page: 0,
                line: 0,
                span: basedocs::Span::new(0, 5),
            }))
            .unwrap();
        BundleTemplate::fill_slot(&mut session, slots[0], &mark).unwrap();
        let marks_after = session.dmi().scrap(slots[0]).unwrap().marks;
        assert_eq!(marks_after.len(), 1);
        assert_eq!(session.dmi().mark_handle(marks_after[0]).unwrap().mark_id, mark);
        // Untouched slots keep their placeholder.
        let other = session.dmi().scrap(slots[1]).unwrap().marks;
        assert_eq!(
            session.dmi().mark_handle(other[0]).unwrap().mark_id,
            PLACEHOLDER_MARK
        );
    }

    #[test]
    fn repeated_instantiation_builds_a_worksheet() {
        // "The multiple rows on the worksheet illustrate another
        // observation: bundles can be grouped into larger bundles."
        let mut session = PadSession::new("Worksheet").unwrap();
        let row = worksheet_row(&mut session);
        let template = BundleTemplate::capture(session.dmi(), row).unwrap();
        for (i, patient) in ["Jane Doe", "R. Chen", "M. Okafor"].iter().enumerate() {
            template
                .instantiate(&mut session, patient, (50, 360 + 300 * i as i64), None)
                .unwrap();
        }
        let rows = session.dmi().bundle(session.root_bundle()).unwrap().nested;
        assert_eq!(rows.len(), 4, "original + three stamped rows");
        assert!(session.dmi().check().is_conformant());
    }
}
