//! `slimpad` — the SLIMPad superimposed application.
//!
//! "The SLIM scratchPad (SLIMPad) allows users to create structured,
//! digital, bundles. … SLIMPad provides this same \[scratchpad\] look and
//! feel, in a computerized tool." (paper §3)
//!
//! The crate assembles the whole stack: the Bundle-Scrap data through the
//! hand-written DMI (`slimstore`), marks through the Mark Manager
//! (`marks`), and live base applications (`basedocs`). On top it adds
//! what the application layer owns:
//!
//! * [`PadSession`] — the running application: create bundles and scraps,
//!   place marks from base-application selections onto the pad
//!   (the digital "sticky-note … with a digital 'wire'"), activate
//!   scraps (double-click → mark resolution), annotate and link scraps,
//!   save/load the pad *with* its mark store;
//! * [`layout`] — free 2-D placement, hit testing, drop-into-bundle
//!   detection, and *implicit-structure* (gridlet) detection: "each
//!   number in the 'Electrolyte' bundle has a specific meaning …, which
//!   can be deduced from their arrangement relative to each other. The
//!   SLIMPad data model does not impose structure – but allows the user
//!   to create structure";
//! * [`render`] — the ASCII "screenshot": a deterministic textual
//!   rendering of a pad (bundles as boxes, scraps as labelled dots) used
//!   by the examples to regenerate paper Figure 4;
//! * [`viewing`] — the three viewing styles of paper Figure 6
//!   (simultaneous, enhanced base-layer, independent);
//! * [`templates`] — bundle templates (§6 extension): capture a bundle
//!   subtree's structure and re-instantiate it for a new patient;
//! * [`commands`] — a scriptable command language over pad sessions
//!   (with undo), standing in for the original's direct-manipulation UI;
//! * [`diff`] — pad diffing: what changed between two versions of a pad,
//!   keyed on mark identity — the handoff question.

pub mod commands;
pub mod diff;
pub mod layout;
pub mod pad;
pub mod render;
pub mod templates;
pub mod viewing;

pub use commands::{Command, CommandError};
pub use diff::{diff_pads, PadChange};
pub use layout::{GridDetection, Point, Rect};
pub use pad::{PadEngine, PadError, PadSession};
pub use templates::BundleTemplate;
pub use viewing::ViewingStyle;
