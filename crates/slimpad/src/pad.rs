//! The running SLIMPad application: a pad session wiring the DMI to the
//! Mark Manager.

use crate::layout::{detect_grid, GridDetection, Point};
use basedocs::DocKind;
use marks::{
    MarkAudit, MarkError, MarkManager, ResilientResolution, ResilientResolver, Resolution,
};
use slimio::{Integrity, Recovered, StdVfs, Vfs};
use slimstore::{BundleHandle, DmiError, PadHandle, ScrapHandle, SlimPadDmi};
use std::fmt;
use std::path::Path;
use xmlkit::{Element, XmlWriter};

/// Errors from pad-session operations.
#[derive(Debug)]
pub enum PadError {
    /// A data-layer failure.
    Dmi(DmiError),
    /// A mark-layer failure.
    Mark(MarkError),
    /// A malformed combined pad file.
    File { message: String },
    /// The file declares a format version newer than this build supports.
    UnsupportedVersion { found: String, supported: u32 },
    /// The pad file failed its integrity check (checksum mismatch or
    /// truncation); salvage loading may still recover a prefix.
    Corrupt { detail: String },
    /// An I/O failure while reading or writing the pad file.
    Io(slimio::IoError),
}

impl fmt::Display for PadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PadError::Dmi(e) => write!(f, "pad data error: {e}"),
            PadError::Mark(e) => write!(f, "mark error: {e}"),
            PadError::File { message } => write!(f, "pad file error: {message}"),
            PadError::UnsupportedVersion { found, supported } => write!(
                f,
                "pad file declares format version {found}, \
                 but this build supports at most version {supported}"
            ),
            PadError::Corrupt { detail } => {
                write!(f, "pad file failed its integrity check: {detail}")
            }
            PadError::Io(e) => write!(f, "pad file I/O error: {e}"),
        }
    }
}

impl std::error::Error for PadError {}

impl From<DmiError> for PadError {
    fn from(e: DmiError) -> Self {
        PadError::Dmi(e)
    }
}

impl From<MarkError> for PadError {
    fn from(e: MarkError) -> Self {
        PadError::Mark(e)
    }
}

impl From<slimio::IoError> for PadError {
    fn from(e: slimio::IoError) -> Self {
        PadError::Io(e)
    }
}

/// On-disk format version for combined pad files.
const FILE_VERSION: &str = "1";
/// Highest numeric format version this build can read.
const SUPPORTED_VERSION: u32 = 1;
/// Aux-record key under which the mark-store XML rides in the log.
const MARKS_AUX_KEY: &str = "marks";

/// The error for log operations on a session that has no log attached.
fn no_log_error() -> PadError {
    PadError::File {
        message: "pad session has no write-ahead log \
                  (open with open_logged, or call enable_logging)"
            .into(),
    }
}

/// Reject files from the future with a typed error; anything else odd
/// about the version attribute is a plain format error.
fn check_version(root: &Element) -> Result<(), PadError> {
    match root.attr("version") {
        Some(FILE_VERSION) => Ok(()),
        Some(other) => match other.trim().parse::<u32>() {
            Ok(n) if n > SUPPORTED_VERSION => Err(PadError::UnsupportedVersion {
                found: other.to_string(),
                supported: SUPPORTED_VERSION,
            }),
            _ => Err(PadError::File {
                message: format!("unsupported pad file version {other:?}"),
            }),
        },
        None => Err(PadError::File { message: "missing version attribute".into() }),
    }
}

/// Session statistics: what a status bar would show.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PadStats {
    pub bundles: usize,
    pub scraps: usize,
    pub marks: usize,
    pub annotations: usize,
    pub scrap_links: usize,
    pub triples: usize,
    pub live_marks: usize,
    pub drifted_marks: usize,
}

impl fmt::Display for PadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bundle(s), {} scrap(s), {} mark(s) ({} live, {} drifted), \
{} annotation(s), {} link(s); {} triples underneath",
            self.bundles,
            self.scraps,
            self.marks,
            self.live_marks,
            self.drifted_marks,
            self.annotations,
            self.scrap_links,
            self.triples,
        )
    }
}

/// The pad's state machine: the pad object, its bundle tree, and its
/// marks — everything a pad *is*, with no opinion about who drives it.
///
/// "Each visual entity the user sees on the screen corresponds to an
/// object in the data model" (paper §3); every mutation below goes
/// through the DMI, so the triple representation stays consistent.
///
/// Split from [`PadSession`] so slimserve's pad service can own a bare
/// engine on its writer thread while user sessions talk to it through
/// typed ops; direct embedders keep using [`PadSession`], which derefs
/// here.
pub struct PadEngine {
    dmi: SlimPadDmi,
    pad: PadHandle,
    root: BundleHandle,
    marks: MarkManager,
    /// Failure handling for mark resolution: deadlines, retries,
    /// breakers, quarantine ([`PadEngine::activate_resilient`]).
    resolver: ResilientResolver,
    /// Checkpoints taken by [`PadEngine::begin_op`], popped by
    /// [`PadEngine::undo`].
    undo_stack: Vec<trim::Revision>,
    /// The write-ahead log, when this session was opened through
    /// [`PadEngine::open_logged`] or upgraded via
    /// [`PadEngine::enable_logging`].
    log: Option<trim::StoreLog>,
    /// CRC32 of the mark-store XML as of the last committed "marks"
    /// sidecar record, so [`PadEngine::commit`] only ships the marks
    /// when they actually changed.
    committed_marks_crc: u32,
}

impl PadEngine {
    /// Open a new, empty pad. The pad's own surface is its (invisible)
    /// root bundle; bundles and scraps placed "on the pad" live there.
    pub fn new(pad_name: &str) -> Result<Self, PadError> {
        let mut dmi = SlimPadDmi::new();
        let root = dmi.create_bundle(pad_name, (0, 0), 1280, 960);
        let pad = dmi.create_slim_pad(pad_name, Some(root))?;
        Ok(PadEngine {
            dmi,
            pad,
            root,
            marks: MarkManager::new(),
            resolver: ResilientResolver::default(),
            undo_stack: Vec::new(),
            log: None,
            committed_marks_crc: 0,
        })
    }

    /// Mark the start of a user-visible operation; [`PadEngine::undo`]
    /// reverts to the most recent unmatched call.
    pub fn begin_op(&mut self) {
        self.undo_stack.push(self.dmi.checkpoint());
    }

    /// Undo back to the last [`PadEngine::begin_op`] checkpoint.
    /// Returns `false` when there is nothing to undo. Marks created
    /// since are *not* removed (the mark store is append-only); they
    /// simply become unreferenced, which the audit reports.
    pub fn undo(&mut self) -> Result<bool, PadError> {
        match self.undo_stack.pop() {
            Some(revision) => {
                self.dmi.rollback(revision)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Number of open (unmatched) [`PadEngine::begin_op`] checkpoints.
    /// A supervisor mirroring the undo stack externally (the pad
    /// service keeps per-checkpoint op lists for replay) resynchronizes
    /// its mirror against this depth after a contained fault.
    pub fn undo_depth(&self) -> usize {
        self.undo_stack.len()
    }

    /// Drop checkpoints *older* than the newest `keep`, keeping undo
    /// bounded without disturbing the most recent history. No-op when
    /// `keep >= undo_depth()`.
    pub fn truncate_undo(&mut self, keep: usize) {
        let len = self.undo_stack.len();
        if keep < len {
            self.undo_stack.drain(..len - keep);
        }
    }

    /// The mark manager — register mark modules here before placing
    /// marks (paper Figure 7's per-application modules).
    pub fn marks_mut(&mut self) -> &mut MarkManager {
        &mut self.marks
    }

    /// Read access to the mark manager.
    pub fn marks(&self) -> &MarkManager {
        &self.marks
    }

    /// Read access to the data layer.
    pub fn dmi(&self) -> &SlimPadDmi {
        &self.dmi
    }

    /// Mutable access to the data layer for operations the session does
    /// not wrap (annotations, links, deletes, …).
    pub fn dmi_mut(&mut self) -> &mut SlimPadDmi {
        &mut self.dmi
    }

    /// The pad object.
    pub fn pad(&self) -> PadHandle {
        self.pad
    }

    /// The pad's root bundle.
    pub fn root_bundle(&self) -> BundleHandle {
        self.root
    }

    /// Session statistics (excludes the invisible root bundle).
    pub fn stats(&self) -> PadStats {
        let scraps = self.dmi.all_scraps();
        let annotations: usize =
            scraps.iter().map(|s| self.dmi.annotations(*s).map(|a| a.len()).unwrap_or(0)).sum();
        let scrap_links: usize =
            scraps.iter().map(|s| self.dmi.scrap_links(*s).map(|l| l.len()).unwrap_or(0)).sum();
        let audit = self.marks.audit();
        PadStats {
            bundles: self.dmi.bundles().len().saturating_sub(1),
            scraps: scraps.len(),
            marks: self.marks.len(),
            annotations,
            scrap_links,
            triples: self.dmi.store().len(),
            live_marks: audit.iter().filter(|a| a.live).count(),
            drifted_marks: audit.iter().filter(|a| a.drifted).count(),
        }
    }

    // ---- building the pad -----------------------------------------------------

    /// Create a bundle on the pad surface or inside `parent`.
    pub fn create_bundle(
        &mut self,
        name: &str,
        pos: (i64, i64),
        width: i64,
        height: i64,
        parent: Option<BundleHandle>,
    ) -> Result<BundleHandle, PadError> {
        let b = self.dmi.create_bundle(name, pos, width, height);
        self.dmi.add_nested_bundle(parent.unwrap_or(self.root), b)?;
        Ok(b)
    }

    /// The paper's core gesture: take the base application's *current
    /// selection*, create a mark for it, and place a scrap holding that
    /// mark onto the pad — "the user creates a digital 'sticky-note,'
    /// which comes with a digital 'wire' that leads back to the
    /// information in the original data source."
    ///
    /// With `label: None` the scrap is labelled with the marked content
    /// (the excerpt); pass a label to override — "a scrap's label and its
    /// mark's content may differ."
    pub fn place_selection(
        &mut self,
        kind: DocKind,
        label: Option<&str>,
        pos: (i64, i64),
        bundle: Option<BundleHandle>,
    ) -> Result<ScrapHandle, PadError> {
        let mark_id = self.marks.create_mark(kind)?;
        self.place_mark(&mark_id, label, pos, bundle)
    }

    /// Place an existing mark onto the pad as a new scrap.
    pub fn place_mark(
        &mut self,
        mark_id: &str,
        label: Option<&str>,
        pos: (i64, i64),
        bundle: Option<BundleHandle>,
    ) -> Result<ScrapHandle, PadError> {
        let mark = self.marks.get(mark_id)?;
        let label = match label {
            Some(l) => l.to_string(),
            None if !mark.excerpt.is_empty() => mark.excerpt.clone(),
            None => mark.address.to_string(),
        };
        let scrap = self.dmi.create_scrap(&label, pos, mark_id)?;
        self.dmi.add_scrap(bundle.unwrap_or(self.root), scrap)?;
        Ok(scrap)
    }

    // ---- using the pad -----------------------------------------------------

    /// Double-click a scrap: de-reference its (first) mark and drive the
    /// base application there — "the original information source … is
    /// displayed with the appropriate medication highlighted" (paper §3,
    /// Figure 4).
    pub fn activate(&mut self, scrap: ScrapHandle) -> Result<Resolution, PadError> {
        let mark_id = self.first_mark_id(scrap)?;
        Ok(self.marks.resolve(&mark_id)?)
    }

    /// Double-click with a safety net: resolve the scrap's (first) mark
    /// through the session's [`ResilientResolver`]. Base-layer failures
    /// degrade to the mark's stored excerpt
    /// ([`marks::ResolutionStyle::DegradedExcerpt`]) instead of erroring;
    /// the returned outcome carries the full attempt trace.
    pub fn activate_resilient(
        &mut self,
        scrap: ScrapHandle,
    ) -> Result<ResilientResolution, PadError> {
        let mark_id = self.first_mark_id(scrap)?;
        Ok(self.resolver.resolve(&mut self.marks, &mark_id)?)
    }

    /// The session's resilient resolver (breaker states, quarantine).
    pub fn resolver(&self) -> &ResilientResolver {
        &self.resolver
    }

    /// Mutable resolver access (release a quarantined mark, …).
    pub fn resolver_mut(&mut self) -> &mut ResilientResolver {
        &mut self.resolver
    }

    /// Replace the resolver — tests and embedders install one driven by
    /// a mock clock or tuned policies here.
    pub fn set_resolver(&mut self, resolver: ResilientResolver) {
        self.resolver = resolver;
    }

    /// Split borrow for callers that drive the resolver against this
    /// session's marks (e.g. the repair pass in `core`).
    pub fn resolver_parts(&mut self) -> (&mut ResilientResolver, &mut MarkManager) {
        (&mut self.resolver, &mut self.marks)
    }

    /// Audit every mark and feed the result to the resolver, so
    /// subsequent degraded resolutions carry an accurate staleness flag.
    pub fn audit_marks(&mut self) -> Vec<MarkAudit> {
        let audits = self.marks.audit();
        self.resolver.note_audit(&audits);
        audits
    }

    /// Activate through a named module (e.g. an in-place viewer).
    pub fn activate_with(
        &mut self,
        scrap: ScrapHandle,
        module: &str,
    ) -> Result<Resolution, PadError> {
        let mark_id = self.first_mark_id(scrap)?;
        Ok(self.marks.resolve_with(&mark_id, module)?)
    }

    /// §6 extension behaviour: the marked element's current content,
    /// without driving the base application.
    pub fn extract(&self, scrap: ScrapHandle) -> Result<String, PadError> {
        let mark_id = self.first_mark_id(scrap)?;
        Ok(self.marks.extract_content(&mark_id)?)
    }

    /// [`extract`](PadEngine::extract) with a safety net: fall back to
    /// the mark's stored excerpt when the base layer cannot supply the
    /// content. The boolean is `true` when the fallback was used.
    pub fn extract_degraded(&self, scrap: ScrapHandle) -> Result<(String, bool), PadError> {
        let mark_id = self.first_mark_id(scrap)?;
        match self.marks.extract_content(&mark_id) {
            Ok(content) => Ok((content, false)),
            Err(_) => Ok((self.marks.get(&mark_id)?.excerpt.clone(), true)),
        }
    }

    /// Resolve *all* of a scrap's marks, in handle order — the
    /// composite-mark behaviour the paper compares to MVD's NoteMarks
    /// ("combine several kinds of annotations together to serve as an
    /// index"). Figure 3 allows `scrapMark 1..*`; this is what a
    /// double-click does when a scrap carries several wires.
    pub fn activate_all(&mut self, scrap: ScrapHandle) -> Result<Vec<Resolution>, PadError> {
        let data = self.dmi.scrap(scrap)?;
        let mut out = Vec::with_capacity(data.marks.len());
        for handle in &data.marks {
            let mark_id = self.dmi.mark_handle(*handle)?.mark_id;
            out.push(self.marks.resolve(&mark_id)?);
        }
        Ok(out)
    }

    /// Attach the base application's current selection as an *additional*
    /// mark on an existing scrap (building a composite scrap).
    pub fn add_selection_to_scrap(
        &mut self,
        scrap: ScrapHandle,
        kind: DocKind,
    ) -> Result<(), PadError> {
        let mark_id = self.marks.create_mark(kind)?;
        let handle = self.dmi.create_mark_handle(&mark_id);
        self.dmi.add_scrap_mark(scrap, handle)?;
        Ok(())
    }

    fn first_mark_id(&self, scrap: ScrapHandle) -> Result<String, PadError> {
        let data = self.dmi.scrap(scrap)?;
        let first = data.marks.first().ok_or(PadError::Dmi(DmiError::Cardinality {
            message: "scrap has no mark handle".into(),
        }))?;
        Ok(self.dmi.mark_handle(*first)?.mark_id)
    }

    /// Detect implicit row/column structure among a bundle's scraps —
    /// the "gridlet" of paper Figure 4, recovered from juxtaposition.
    pub fn detect_gridlet(
        &self,
        bundle: BundleHandle,
        tolerance: i64,
    ) -> Result<GridDetection<ScrapHandle>, PadError> {
        let data = self.dmi.bundle(bundle)?;
        let items: Vec<(ScrapHandle, Point)> = data
            .scraps
            .iter()
            .map(|&s| Ok((s, Point::from(self.dmi.scrap(s)?.pos))))
            .collect::<Result<_, PadError>>()?;
        Ok(detect_grid(&items, tolerance))
    }

    // ---- persistence -----------------------------------------------------------

    /// Serialize the pad *and* its marks into one combined XML document.
    pub fn save_xml(&self) -> String {
        let mut w = XmlWriter::compact();
        w.declaration();
        w.start("slimpad-file");
        w.attr("version", FILE_VERSION);
        w.leaf("store", &self.dmi.save_xml());
        w.leaf("marks", &self.marks.to_xml());
        w.end();
        w.finish()
    }

    /// Save to a file: sealed with a checksum footer, installed
    /// atomically (write-temp → fsync → rename). A crash at any point
    /// leaves the previous file intact.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PadError> {
        self.save_to(&StdVfs, path.as_ref())
    }

    /// [`save`](PadEngine::save) through an explicit [`Vfs`] backend.
    pub fn save_to(&self, vfs: &dyn Vfs, path: &Path) -> Result<(), PadError> {
        slimio::save_atomic(vfs, path, &self.save_xml())?;
        Ok(())
    }

    /// Load a combined pad file. `manager` supplies the mark modules
    /// (live base applications); its mark store is replaced by the file's.
    pub fn load_xml(text: &str, mut manager: MarkManager) -> Result<Self, PadError> {
        let doc = xmlkit::parse(text).map_err(|e| PadError::File { message: e.to_string() })?;
        if doc.root.name != "slimpad-file" {
            return Err(PadError::File { message: "not a SLIMPad file".into() });
        }
        check_version(&doc.root)?;
        let store_xml = doc
            .root
            .child("store")
            .ok_or_else(|| PadError::File { message: "missing <store>".into() })?
            .text();
        let marks_xml = doc
            .root
            .child("marks")
            .ok_or_else(|| PadError::File { message: "missing <marks>".into() })?
            .text();
        let (dmi, pads) = SlimPadDmi::load_xml(&store_xml)?;
        let pad = *pads.first().ok_or_else(|| PadError::File {
            message: "pad file contains no SlimPad object".into(),
        })?;
        let root = dmi
            .pad(pad)?
            .root_bundle
            .ok_or_else(|| PadError::File { message: "pad has no root bundle".into() })?;
        manager.load_xml(&marks_xml)?;
        Ok(PadEngine {
            dmi,
            pad,
            root,
            marks: manager,
            resolver: ResilientResolver::default(),
            undo_stack: Vec::new(),
            log: None,
            committed_marks_crc: 0,
        })
    }

    /// Load from a file written by [`PadEngine::save`].
    ///
    /// Strict: a file whose checksum footer does not match its contents
    /// is refused with [`PadError::Corrupt`] — use
    /// [`PadEngine::load_salvage`] to recover what remains. Legacy
    /// files without a footer are trusted as-is.
    pub fn load(path: impl AsRef<Path>, manager: MarkManager) -> Result<Self, PadError> {
        Self::load_from(&StdVfs, path.as_ref(), manager)
    }

    /// [`load`](PadEngine::load) through an explicit [`Vfs`] backend.
    pub fn load_from(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<Self, PadError> {
        let (verdict, payload) = slimio::load_sealed(vfs, path)?;
        if verdict == Integrity::Corrupt {
            return Err(PadError::Corrupt {
                detail: format!("{} (checksum mismatch or truncation)", path.display()),
            });
        }
        Self::load_xml(&payload, manager)
    }

    // ---- logged persistence ----------------------------------------------------

    /// Open a pad file with its write-ahead log attached: load the
    /// sealed snapshot, replay committed log frames onto the embedded
    /// store, and restore the mark store from the newest `"marks"`
    /// sidecar record if one was committed after the snapshot. The
    /// session comes back in the state of its last acknowledged
    /// [`commit`](PadEngine::commit), even after a crash.
    ///
    /// The file must exist; for a brand-new pad, build the session with
    /// [`PadEngine::new`] and call
    /// [`enable_logging`](PadEngine::enable_logging).
    pub fn open_logged(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<(Self, trim::LogReport), PadError> {
        slimio::sweep_stale_temp(vfs, path);
        let mut session = Self::load_from(vfs, path, manager)?;
        let (log, report) = session.dmi.attach_log(vfs, path)?;
        session.adopt_log(log, &report)?;
        Ok((session, report))
    }

    /// [`open_logged`](PadEngine::open_logged) with tail-frame CRC
    /// checks disabled — only for the slimcheck mutation harness.
    #[doc(hidden)]
    pub fn testonly_open_logged_skip_tail_crc(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<(Self, trim::LogReport), PadError> {
        slimio::sweep_stale_temp(vfs, path);
        let mut session = Self::load_from(vfs, path, manager)?;
        let (log, report) = session.dmi.testonly_attach_log_skip_tail_crc(vfs, path)?;
        session.adopt_log(log, &report)?;
        Ok((session, report))
    }

    /// Upgrade this session to logged persistence: write a full snapshot
    /// of the current state to `path`, then attach a (fresh) log to it.
    /// After this, [`commit`](PadEngine::commit) persists deltas.
    ///
    /// Any stale log at the sibling `.wal` path belongs to an older
    /// snapshot generation and is discarded, not replayed.
    pub fn enable_logging(
        &mut self,
        vfs: &dyn Vfs,
        path: &Path,
    ) -> Result<trim::LogReport, PadError> {
        self.save_to(vfs, path)?;
        let (log, report) = self.dmi.attach_log(vfs, path)?;
        self.adopt_log(log, &report)?;
        Ok(report)
    }

    /// Wire a freshly attached log into the session: restore the marks
    /// sidecar the log recovered (if any), record the committed marks
    /// generation, and invalidate undo checkpoints — attaching truncates
    /// the store journal, so revisions taken before it are unreachable.
    fn adopt_log(
        &mut self,
        log: trim::StoreLog,
        report: &trim::LogReport,
    ) -> Result<(), PadError> {
        if let Some(bytes) = report.aux.get(MARKS_AUX_KEY) {
            let text = std::str::from_utf8(bytes).map_err(|_| PadError::File {
                message: "recovered marks sidecar is not valid UTF-8".into(),
            })?;
            self.marks.load_xml(text)?;
        }
        self.committed_marks_crc = slimio::crc32(self.marks.to_xml().as_bytes());
        self.undo_stack.clear();
        self.log = Some(log);
        Ok(())
    }

    /// Group-commit every change since the last commit — store triples
    /// and, when it changed, the mark store as a `"marks"` sidecar
    /// record — as one log frame with one sync.
    ///
    /// On [`CommitOutcome::NeedsFullSnapshot`](trim::CommitOutcome) (an
    /// undo crossed the previous commit boundary) the session compacts
    /// internally, so on `Ok` the current state is durable regardless of
    /// the outcome value.
    pub fn commit(&mut self, vfs: &dyn Vfs) -> Result<trim::CommitOutcome, PadError> {
        if self.log.is_none() {
            return Err(no_log_error());
        }
        let marks_xml = self.marks.to_xml();
        let marks_crc = slimio::crc32(marks_xml.as_bytes());
        let mut aux: Vec<(&str, &[u8])> = Vec::new();
        if marks_crc != self.committed_marks_crc {
            aux.push((MARKS_AUX_KEY, marks_xml.as_bytes()));
        }
        let log = self.log.as_mut().expect("checked above");
        let outcome = self.dmi.commit_log_with_aux(vfs, log, &aux)?;
        match outcome {
            trim::CommitOutcome::NeedsFullSnapshot => self.compact(vfs)?,
            trim::CommitOutcome::Committed { .. } => self.committed_marks_crc = marks_crc,
            trim::CommitOutcome::Clean => {}
        }
        Ok(outcome)
    }

    /// Fold the log into a fresh snapshot of the combined pad file
    /// (store *and* marks) and reset the log to an empty generation.
    /// Crash-consistent at every step; run when
    /// [`should_compact`](PadEngine::should_compact) reports true.
    pub fn compact(&mut self, vfs: &dyn Vfs) -> Result<(), PadError> {
        if self.log.is_none() {
            return Err(no_log_error());
        }
        let payload = self.save_xml();
        let marks_crc = slimio::crc32(self.marks.to_xml().as_bytes());
        let log = self.log.as_mut().expect("checked above");
        self.dmi.compact_log_with(vfs, log, &payload)?;
        self.committed_marks_crc = marks_crc;
        Ok(())
    }

    /// Truncate any unacknowledged log suffix a failed
    /// [`commit`](PadEngine::commit) may have left on disk — a torn
    /// append can land the doomed frame fully readable, and a cold
    /// reopen would adopt the refused batch as real history. No-op on
    /// unlogged sessions and on clean tails.
    pub fn repair_log(&mut self, vfs: &dyn Vfs) -> Result<(), PadError> {
        if let Some(log) = self.log.as_mut() {
            self.dmi.repair_log(vfs, log)?;
        }
        Ok(())
    }

    /// True when this is a logged session whose log has outgrown its
    /// compaction threshold.
    pub fn should_compact(&self) -> bool {
        self.log.as_ref().is_some_and(|log| log.should_compact())
    }

    /// The attached write-ahead log, if this is a logged session.
    pub fn log(&self) -> Option<&trim::StoreLog> {
        self.log.as_ref()
    }

    /// Override the log-size threshold at which
    /// [`should_compact`](PadEngine::should_compact) (and the
    /// `NeedsFullSnapshot` auto-compaction) trigger. No-op on unlogged
    /// sessions; soak harnesses lower it to exercise compaction cheaply.
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        if let Some(log) = self.log.as_mut() {
            log.set_compact_threshold(bytes);
        }
    }

    /// Salvage a pad from a damaged file: recover what remains of the
    /// bundle tree and mark store instead of failing hard.
    ///
    /// Errors only when no session at all can be built — the file is
    /// unreadable, the root element never materialized, it declares a
    /// newer format than this build understands, or the `<store>`
    /// section (which holds the pad object itself) is gone.
    pub fn load_salvage(
        path: impl AsRef<Path>,
        manager: MarkManager,
    ) -> Result<Recovered<Self>, PadError> {
        Self::load_salvage_from(&StdVfs, path.as_ref(), manager)
    }

    /// [`load_salvage`](PadEngine::load_salvage) through an explicit
    /// [`Vfs`] backend.
    pub fn load_salvage_from(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<Recovered<Self>, PadError> {
        let (verdict, payload) = slimio::load_sealed(vfs, path)?;
        let mut recovered = Self::load_xml_salvage(&payload, manager)?;
        if verdict == Integrity::Corrupt {
            recovered.note("integrity check failed: checksum mismatch or truncation");
        }
        Ok(recovered)
    }

    /// Salvage a pad session from combined XML text.
    ///
    /// The `<store>` section is salvaged through the data layer (every
    /// readable triple survives); a damaged or missing `<marks>` section
    /// degrades to an empty mark store rather than refusing the load.
    /// Scraps whose marks did not survive stay on the pad as degraded
    /// scraps — their labels and layout are intact, only activation
    /// fails — and the report counts the dangling wires.
    pub fn load_xml_salvage(
        text: &str,
        mut manager: MarkManager,
    ) -> Result<Recovered<Self>, PadError> {
        let salvaged = xmlkit::parse_salvage(text);
        let root = match salvaged.root {
            Some(root) => root,
            None => {
                return Err(match salvaged.error {
                    Some(e) => PadError::File { message: e.to_string() },
                    None => PadError::File { message: "no root element".into() },
                })
            }
        };
        if root.name != "slimpad-file" {
            return Err(PadError::File { message: "not a SLIMPad file".into() });
        }
        check_version(&root)?;

        let mut recovered = Recovered::clean((), 0);
        if let Some(e) = &salvaged.error {
            recovered.note(format!("file damaged: {e}"));
        }

        // The store carries the pad object and bundle tree; without it
        // there is no session to build, so it alone is load-bearing.
        let store_xml = root
            .child("store")
            .ok_or_else(|| PadError::File { message: "missing <store>".into() })?
            .text();
        let store_rec = SlimPadDmi::load_xml_salvage(&store_xml)?;
        recovered.salvaged += store_rec.salvaged;
        recovered.lost += store_rec.lost;
        recovered.notes.extend(store_rec.notes);
        let (dmi, pads) = store_rec.value;
        let pad = *pads.first().ok_or_else(|| PadError::File {
            message: "pad file contains no SlimPad object".into(),
        })?;
        let root_bundle = dmi
            .pad(pad)?
            .root_bundle
            .ok_or_else(|| PadError::File { message: "pad has no root bundle".into() })?;

        // Marks are individually expendable: a scrap without its mark is
        // degraded (no wire back to the source), not gone.
        match root.child("marks") {
            Some(m) => match manager.load_xml_salvage(&m.text()) {
                Ok(marks_rec) => {
                    recovered.salvaged += marks_rec.salvaged;
                    recovered.lost += marks_rec.lost;
                    recovered.notes.extend(marks_rec.notes);
                }
                Err(e) => {
                    recovered.note(format!(
                        "marks section unrecoverable ({e}); continuing without marks"
                    ));
                }
            },
            None => recovered.note("marks section missing; continuing without marks"),
        }

        let session = PadEngine {
            dmi,
            pad,
            root: root_bundle,
            marks: manager,
            resolver: ResilientResolver::default(),
            undo_stack: Vec::new(),
            log: None,
            committed_marks_crc: 0,
        };

        let mut dangling = 0usize;
        for scrap in session.dmi.all_scraps() {
            let Ok(data) = session.dmi.scrap(scrap) else { continue };
            for handle in &data.marks {
                let Ok(mh) = session.dmi.mark_handle(*handle) else { continue };
                if session.marks.get(&mh.mark_id).is_err() {
                    dangling += 1;
                }
            }
        }
        if dangling > 0 {
            recovered.note(format!(
                "{dangling} scrap mark reference(s) dangle; those scraps are \
                 degraded but still on the pad"
            ));
        }
        Ok(recovered.map(|()| session))
    }
}

/// A live SLIMPad: the user-facing handle over a [`PadEngine`].
///
/// Every method of the engine is available here through deref — to a
/// direct embedder the split is invisible. The point of the handle is
/// what it *doesn't* let concurrent code do: slimserve's pad service
/// owns a bare [`PadEngine`] on its single writer thread, and hands
/// user code typed ops instead of this struct, so "one engine, many
/// sessions" is enforced by construction.
pub struct PadSession {
    engine: PadEngine,
}

impl std::ops::Deref for PadSession {
    type Target = PadEngine;

    fn deref(&self) -> &PadEngine {
        &self.engine
    }
}

impl std::ops::DerefMut for PadSession {
    fn deref_mut(&mut self) -> &mut PadEngine {
        &mut self.engine
    }
}

impl From<PadEngine> for PadSession {
    fn from(engine: PadEngine) -> Self {
        PadSession { engine }
    }
}

impl PadSession {
    /// Open a new, empty pad — see [`PadEngine::new`].
    pub fn new(pad_name: &str) -> Result<Self, PadError> {
        PadEngine::new(pad_name).map(Self::from)
    }

    /// Wrap an engine back into a session handle.
    pub fn from_engine(engine: PadEngine) -> Self {
        PadSession { engine }
    }

    /// Surrender the handle, keeping the engine (the pad service's
    /// adoption path).
    pub fn into_engine(self) -> PadEngine {
        self.engine
    }

    /// The underlying engine, explicitly.
    pub fn engine(&self) -> &PadEngine {
        &self.engine
    }

    /// The underlying engine, mutably and explicitly.
    pub fn engine_mut(&mut self) -> &mut PadEngine {
        &mut self.engine
    }

    /// Load a combined pad file from XML — see [`PadEngine::load_xml`].
    pub fn load_xml(text: &str, manager: MarkManager) -> Result<Self, PadError> {
        PadEngine::load_xml(text, manager).map(Self::from)
    }

    /// Load from a file — see [`PadEngine::load`].
    pub fn load(path: impl AsRef<Path>, manager: MarkManager) -> Result<Self, PadError> {
        PadEngine::load(path, manager).map(Self::from)
    }

    /// [`load`](PadSession::load) through an explicit [`Vfs`] backend.
    pub fn load_from(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<Self, PadError> {
        PadEngine::load_from(vfs, path, manager).map(Self::from)
    }

    /// Open with the write-ahead log attached — see
    /// [`PadEngine::open_logged`].
    pub fn open_logged(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<(Self, trim::LogReport), PadError> {
        PadEngine::open_logged(vfs, path, manager)
            .map(|(engine, report)| (Self::from(engine), report))
    }

    /// [`open_logged`](PadSession::open_logged) with tail-frame CRC
    /// checks disabled — only for the slimcheck mutation harness.
    #[doc(hidden)]
    pub fn testonly_open_logged_skip_tail_crc(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<(Self, trim::LogReport), PadError> {
        PadEngine::testonly_open_logged_skip_tail_crc(vfs, path, manager)
            .map(|(engine, report)| (Self::from(engine), report))
    }

    /// Salvage a pad from a damaged file — see
    /// [`PadEngine::load_salvage`].
    pub fn load_salvage(
        path: impl AsRef<Path>,
        manager: MarkManager,
    ) -> Result<Recovered<Self>, PadError> {
        PadEngine::load_salvage(path, manager).map(|r| r.map(Self::from))
    }

    /// [`load_salvage`](PadSession::load_salvage) through an explicit
    /// [`Vfs`] backend.
    pub fn load_salvage_from(
        vfs: &dyn Vfs,
        path: &Path,
        manager: MarkManager,
    ) -> Result<Recovered<Self>, PadError> {
        PadEngine::load_salvage_from(vfs, path, manager).map(|r| r.map(Self::from))
    }

    /// Salvage from combined XML text — see
    /// [`PadEngine::load_xml_salvage`].
    pub fn load_xml_salvage(
        text: &str,
        manager: MarkManager,
    ) -> Result<Recovered<Self>, PadError> {
        PadEngine::load_xml_salvage(text, manager).map(|r| r.map(Self::from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basedocs::spreadsheet::Workbook;
    use basedocs::{BaseApplication, SpreadsheetApp, XmlApp};
    use marks::AppModule;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn apps() -> (Rc<RefCell<SpreadsheetApp>>, Rc<RefCell<XmlApp>>) {
        let mut wb = Workbook::new("medications.xls");
        let sheet = wb.sheet_mut("Sheet1").unwrap();
        sheet.set_a1("A1", "Lasix 40 IV bid").unwrap();
        sheet.set_a1("A2", "Captopril 12.5 tid").unwrap();
        let mut excel = SpreadsheetApp::new();
        excel.open(wb).unwrap();
        let mut xml = XmlApp::new();
        xml.open_text(
            "labs.xml",
            "<labs><na>140</na><k>4.1</k><cl>102</cl></labs>",
        )
        .unwrap();
        (Rc::new(RefCell::new(excel)), Rc::new(RefCell::new(xml)))
    }

    fn session() -> (PadSession, Rc<RefCell<SpreadsheetApp>>, Rc<RefCell<XmlApp>>) {
        let (excel, xml) = apps();
        let mut pad = PadSession::new("Rounds").unwrap();
        pad.marks_mut()
            .register_module(Box::new(AppModule::in_context("excel", Rc::clone(&excel))))
            .unwrap();
        pad.marks_mut()
            .register_module(Box::new(AppModule::in_place("excel-viewer", Rc::clone(&excel))))
            .unwrap();
        pad.marks_mut()
            .register_module(Box::new(AppModule::in_context("xml", Rc::clone(&xml))))
            .unwrap();
        (pad, excel, xml)
    }

    #[test]
    fn place_selection_creates_wired_scrap() {
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let john = pad.create_bundle("John Smith", (10, 10), 400, 300, None).unwrap();
        let scrap = pad
            .place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john))
            .unwrap();
        // Default label is the excerpt.
        assert_eq!(pad.dmi().scrap(scrap).unwrap().name, "Lasix 40 IV bid");
        // Activation drives the base app back to the marked cell.
        excel.borrow_mut().select("medications.xls", "Sheet1", "A2").unwrap();
        let res = pad.activate(scrap).unwrap();
        assert!(res.display.contains("[Lasix 40 IV bid]"), "{}", res.display);
        assert_eq!(
            excel.borrow().current_selection().unwrap().to_string(),
            "medications.xls!Sheet1!A1"
        );
    }

    #[test]
    fn custom_labels_differ_from_content() {
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A2").unwrap();
        let scrap = pad
            .place_selection(DocKind::Spreadsheet, Some("ACE inhibitor"), (0, 0), None)
            .unwrap();
        assert_eq!(pad.dmi().scrap(scrap).unwrap().name, "ACE inhibitor");
        assert_eq!(pad.extract(scrap).unwrap(), "Captopril 12.5 tid");
    }

    #[test]
    fn activate_with_uses_alternate_module() {
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let scrap = pad.place_selection(DocKind::Spreadsheet, None, (0, 0), None).unwrap();
        let res = pad.activate_with(scrap, "excel-viewer").unwrap();
        assert_eq!(res.display, "Lasix 40 IV bid");
    }

    #[test]
    fn gridlet_detected_from_scrap_positions() {
        let (mut pad, _, xml) = session();
        let electro = pad.create_bundle("Electrolyte", (200, 60), 180, 160, None).unwrap();
        for (path, pos) in [
            ("/labs/na", (210, 80)),
            ("/labs/cl", (270, 80)),
            ("/labs/k", (210, 110)),
        ] {
            xml.borrow_mut().select_by_path("labs.xml", path).unwrap();
            pad.place_selection(DocKind::Xml, None, pos, Some(electro)).unwrap();
        }
        let grid = pad.detect_gridlet(electro, 5).unwrap();
        assert_eq!(grid.rows.len(), 1, "{grid:?}");
        assert_eq!(grid.columns.len(), 1, "{grid:?}");
        assert!(grid.has_structure());
    }

    #[test]
    fn composite_scraps_resolve_all_marks() {
        let (mut pad, excel, xml) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let scrap = pad
            .place_selection(DocKind::Spreadsheet, Some("CHF therapy"), (10, 30), None)
            .unwrap();
        // Add a second wire: the potassium the diuretic threatens.
        xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        pad.add_selection_to_scrap(scrap, DocKind::Xml).unwrap();

        let resolutions = pad.activate_all(scrap).unwrap();
        assert_eq!(resolutions.len(), 2);
        assert!(resolutions[0].display.contains("[Lasix 40 IV bid]"), "{}", resolutions[0].display);
        assert!(resolutions[1].display.contains(">>"), "{}", resolutions[1].display);
        // The pad stays conformant with multi-mark scraps.
        assert!(pad.dmi().check().is_conformant());
    }

    #[test]
    fn save_load_roundtrip_with_marks() {
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let john = pad.create_bundle("John Smith", (10, 10), 400, 300, None).unwrap();
        let scrap = pad.place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john)).unwrap();
        pad.dmi_mut().add_annotation(scrap, "hold if SBP < 90").unwrap();
        let xml_text = pad.save_xml();

        // Reload against a fresh manager wired to the same live apps.
        let mut manager = MarkManager::new();
        manager
            .register_module(Box::new(AppModule::in_context("excel", Rc::clone(&excel))))
            .unwrap();
        let mut pad2 = PadSession::load_xml(&xml_text, manager).unwrap();
        assert_eq!(pad2.dmi().pad(pad2.pad()).unwrap().name, "Rounds");
        let root = pad2.root_bundle();
        let bundles = pad2.dmi().bundle(root).unwrap().nested;
        assert_eq!(bundles.len(), 1);
        let scraps = pad2.dmi().bundle(bundles[0]).unwrap().scraps;
        assert_eq!(scraps.len(), 1);
        assert_eq!(pad2.dmi().scrap(scraps[0]).unwrap().name, "Lasix 40 IV bid");
        assert_eq!(
            pad2.dmi().annotations(scraps[0]).unwrap(),
            vec!["hold if SBP < 90"]
        );
        // The reloaded mark still resolves against the live application.
        let res = pad2.activate(scraps[0]).unwrap();
        assert!(res.display.contains("[Lasix 40 IV bid]"));
    }

    #[test]
    fn load_rejects_malformed_files() {
        let manager = MarkManager::new();
        assert!(matches!(
            PadSession::load_xml("<nope/>", manager),
            Err(PadError::File { .. })
        ));
        let manager = MarkManager::new();
        assert!(matches!(
            PadSession::load_xml("not xml", manager),
            Err(PadError::File { .. })
        ));
        let manager = MarkManager::new();
        assert!(matches!(
            PadSession::load_xml(r#"<slimpad-file version="1"/>"#, manager),
            Err(PadError::File { .. })
        ));
    }

    #[test]
    fn save_load_via_file() {
        let dir = std::env::temp_dir().join("slimpad-session-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rounds.slimpad.xml");
        let (pad, excel, _) = session();
        pad.save(&path).unwrap();
        let mut manager = MarkManager::new();
        manager
            .register_module(Box::new(AppModule::in_context("excel", excel)))
            .unwrap();
        let pad2 = PadSession::load(&path, manager).unwrap();
        assert_eq!(pad2.dmi().pad(pad2.pad()).unwrap().name, "Rounds");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn newer_version_is_a_typed_refusal() {
        let text = r#"<slimpad-file version="99"><store>s</store><marks>m</marks></slimpad-file>"#;
        assert!(matches!(
            PadSession::load_xml(text, MarkManager::new()),
            Err(PadError::UnsupportedVersion { supported: 1, .. })
        ));
        // Salvage does not override the version gate: a future format
        // is refused, not half-understood.
        assert!(matches!(
            PadSession::load_xml_salvage(text, MarkManager::new()),
            Err(PadError::UnsupportedVersion { supported: 1, .. })
        ));
    }

    #[test]
    fn saved_files_are_sealed_and_load_back() {
        use slimio::MemVfs;
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        pad.place_selection(DocKind::Spreadsheet, None, (20, 40), None).unwrap();

        let vfs = MemVfs::new();
        let path = Path::new("rounds.slimpad.xml");
        pad.save_to(&vfs, path).unwrap();
        let bytes = vfs.bytes(path).unwrap();
        assert!(
            String::from_utf8_lossy(&bytes).contains("<!--slimio v1 crc32="),
            "saved pad should carry a seal footer"
        );

        let mut manager = MarkManager::new();
        manager
            .register_module(Box::new(AppModule::in_context("excel", excel)))
            .unwrap();
        let pad2 = PadSession::load_from(&vfs, path, manager).unwrap();
        assert_eq!(pad2.stats().scraps, 1);
        assert_eq!(pad2.stats().marks, 1);
    }

    #[test]
    fn crash_during_save_preserves_previous_file() {
        use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
        let path = Path::new("rounds.slimpad.xml");
        let (pad_v1, _, _) = session();
        let (mut pad_v2, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A2").unwrap();
        pad_v2.place_selection(DocKind::Spreadsheet, None, (5, 5), None).unwrap();

        for op in [FaultOp::Write, FaultOp::Sync, FaultOp::Rename] {
            for mode in [FaultMode::Fail, FaultMode::Torn] {
                let base = MemVfs::new();
                pad_v1.save_to(&base, path).unwrap();
                let vfs = FaultVfs::new(
                    base,
                    FaultConfig { op, mode, index: 0, seed: 7, halt_after_fault: true },
                );
                let _ = pad_v2.save_to(&vfs, path);
                // Whatever happened mid-save, the previous pad is intact.
                let vfs = vfs.into_inner();
                let pad =
                    PadSession::load_from(&vfs, path, MarkManager::new()).unwrap();
                assert_eq!(pad.stats().scraps, 0, "op {op:?} mode {mode:?}");
            }
        }
    }

    #[test]
    fn corrupt_file_refused_strictly_but_salvageable() {
        use slimio::MemVfs;
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        pad.place_selection(DocKind::Spreadsheet, None, (20, 40), None).unwrap();

        let vfs = MemVfs::new();
        let path = Path::new("rounds.slimpad.xml");
        pad.save_to(&vfs, path).unwrap();
        // Flip one payload byte behind the seal's back.
        let mut bytes = vfs.bytes(path).unwrap().to_vec();
        let i = bytes.iter().position(|&b| b == b'R').unwrap(); // "Rounds"
        bytes[i] = b'W';
        vfs.write(path, &bytes).unwrap();

        assert!(matches!(
            PadSession::load_from(&vfs, path, MarkManager::new()),
            Err(PadError::Corrupt { .. })
        ));
        let rec = PadSession::load_salvage_from(&vfs, path, MarkManager::new()).unwrap();
        assert!(rec.notes.iter().any(|n| n.contains("integrity check failed")), "{rec}");
        assert_eq!(rec.value.stats().scraps, 1);
    }

    #[test]
    fn lost_marks_leave_degraded_scraps_not_load_errors() {
        let (mut pad, excel, _) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let scrap_label = "Lasix 40 IV bid";
        pad.place_selection(DocKind::Spreadsheet, None, (20, 40), None).unwrap();
        let xml_text = pad.save_xml();

        // Rip out the whole marks section, as a mid-file tear would.
        let start = xml_text.find("<marks>").unwrap();
        let end = xml_text.find("</marks>").unwrap() + "</marks>".len();
        let mangled = format!("{}{}", &xml_text[..start], &xml_text[end..]);

        let rec = PadSession::load_xml_salvage(&mangled, MarkManager::new()).unwrap();
        assert!(rec.notes.iter().any(|n| n.contains("marks section missing")), "{rec}");
        assert!(rec.notes.iter().any(|n| n.contains("dangle")), "{rec}");
        let mut session = rec.value;
        // The scrap survives with its label and layout — only the wire
        // back to the source is gone.
        let scraps = session.dmi().all_scraps();
        assert_eq!(scraps.len(), 1);
        assert_eq!(session.dmi().scrap(scraps[0]).unwrap().name, scrap_label);
        assert!(matches!(
            session.activate(scraps[0]),
            Err(PadError::Mark(MarkError::UnknownMark { .. }))
        ));
    }

    #[test]
    fn every_truncation_of_a_saved_pad_loads_salvages_or_errors() {
        // A minimal pad keeps the exhaustive sweep fast while still
        // cutting through every structural region of the file (prolog,
        // root tag, store, marks, seal footer). The integration suite
        // sweeps a populated pad at sampled offsets.
        let pad = PadSession::new("Rounds").unwrap();
        let sealed = slimio::seal(&pad.save_xml());
        for cut in 0..=sealed.len() {
            if !sealed.is_char_boundary(cut) {
                continue;
            }
            let prefix = &sealed[..cut];
            // Strict load must refuse gracefully or succeed — and
            // salvage must never panic either.
            let _ = PadSession::load_xml(prefix, MarkManager::new());
            let _ = PadSession::load_xml_salvage(prefix, MarkManager::new());
        }
    }

    /// A fresh manager wired to the same live spreadsheet, for reloads.
    fn reload_manager(excel: &Rc<RefCell<SpreadsheetApp>>) -> MarkManager {
        let mut manager = MarkManager::new();
        manager
            .register_module(Box::new(AppModule::in_context("excel", Rc::clone(excel))))
            .unwrap();
        manager
    }

    /// Names of the bundles nested directly on the pad surface.
    fn surface_bundles(pad: &PadSession) -> Vec<String> {
        pad.dmi()
            .bundle(pad.root_bundle())
            .unwrap()
            .nested
            .iter()
            .map(|&b| pad.dmi().bundle(b).unwrap().name.clone())
            .collect()
    }

    #[test]
    fn logged_session_commits_deltas_and_recovers() {
        use slimio::MemVfs;
        let path = Path::new("rounds.slimpad.xml");
        let vfs = MemVfs::new();
        let (mut pad, excel, _) = session();
        pad.enable_logging(&vfs, path).unwrap();

        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let john = pad.create_bundle("John Smith", (10, 10), 400, 300, None).unwrap();
        let scrap =
            pad.place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john)).unwrap();
        let snapshot_before = vfs.bytes(path).unwrap().to_vec();
        assert!(matches!(
            pad.commit(&vfs).unwrap(),
            trim::CommitOutcome::Committed { .. }
        ));
        // The delta went to the log; the snapshot was not rewritten.
        assert_eq!(vfs.bytes(path).unwrap(), &snapshot_before[..]);

        pad.dmi_mut().add_annotation(scrap, "hold if SBP < 90").unwrap();
        assert!(matches!(
            pad.commit(&vfs).unwrap(),
            trim::CommitOutcome::Committed { .. }
        ));
        // Nothing changed since: a clean commit writes nothing.
        let log_len = pad.log().unwrap().log_bytes();
        assert!(matches!(pad.commit(&vfs).unwrap(), trim::CommitOutcome::Clean));
        assert_eq!(pad.log().unwrap().log_bytes(), log_len);

        let (mut pad2, report) =
            PadSession::open_logged(&vfs, path, reload_manager(&excel)).unwrap();
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(pad2.stats().scraps, 1);
        assert_eq!(pad2.stats().marks, 1);
        let scraps = pad2.dmi().all_scraps();
        assert_eq!(
            pad2.dmi().annotations(scraps[0]).unwrap(),
            vec!["hold if SBP < 90"]
        );
        // The mark came back through the sidecar and still resolves live.
        let res = pad2.activate(scraps[0]).unwrap();
        assert!(res.display.contains("[Lasix 40 IV bid]"), "{}", res.display);
    }

    #[test]
    fn crashed_commit_recovers_an_acknowledged_session() {
        use slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
        let path = Path::new("rounds.slimpad.xml");
        for op in [FaultOp::Append, FaultOp::Sync] {
            for mode in [FaultMode::Fail, FaultMode::Torn] {
                for seed in 0..4u64 {
                    let base = MemVfs::new();
                    let (mut pad, excel, _) = session();
                    pad.enable_logging(&base, path).unwrap();
                    excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
                    let john =
                        pad.create_bundle("John Smith", (10, 10), 400, 300, None).unwrap();
                    pad.place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john))
                        .unwrap();
                    pad.commit(&base).unwrap();

                    // An unacknowledged batch dies with the process.
                    pad.create_bundle("Unacked", (50, 50), 100, 100, None).unwrap();
                    let config = FaultConfig::new(op, mode, 0, seed).halting();
                    let vfs = FaultVfs::new(base, config);
                    assert!(pad.commit(&vfs).is_err());
                    assert!(vfs.fault_fired());

                    let disk = vfs.into_inner();
                    let (mut pad2, _) =
                        PadSession::open_logged(&disk, path, reload_manager(&excel))
                            .unwrap();
                    // Recovery lands on the acknowledged commit — or, if a
                    // torn append happened to land the whole frame, on the
                    // complete attempted batch. Never anything partial.
                    let names = surface_bundles(&pad2);
                    assert!(
                        names == ["John Smith"] || names == ["John Smith", "Unacked"],
                        "{op:?}/{mode:?}/{seed}: {names:?}"
                    );
                    assert_eq!(pad2.stats().scraps, 1, "{op:?}/{mode:?}/{seed}");
                    assert_eq!(pad2.stats().marks, 1, "{op:?}/{mode:?}/{seed}");
                    let scraps = pad2.dmi().all_scraps();
                    let res = pad2.activate(scraps[0]).unwrap();
                    assert!(res.display.contains("[Lasix 40 IV bid]"));
                }
            }
        }
    }

    #[test]
    fn commit_after_cross_boundary_undo_compacts_internally() {
        use slimio::MemVfs;
        let path = Path::new("rounds.slimpad.xml");
        let vfs = MemVfs::new();
        let (mut pad, _, _) = session();
        pad.enable_logging(&vfs, path).unwrap();

        pad.begin_op();
        pad.create_bundle("Oops", (0, 0), 10, 10, None).unwrap();
        pad.commit(&vfs).unwrap();
        // Undo back across the acknowledged commit: the journal suffix no
        // longer describes the delta, so commit falls back to compaction.
        assert!(pad.undo().unwrap());
        pad.create_bundle("Kept", (5, 5), 10, 10, None).unwrap();
        let outcome = pad.commit(&vfs).unwrap();
        assert_eq!(outcome, trim::CommitOutcome::NeedsFullSnapshot);

        // The state is durable regardless: reopen sees it, from the
        // snapshot alone (the compaction reset the log).
        let (pad2, report) =
            PadSession::open_logged(&vfs, path, MarkManager::new()).unwrap();
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(surface_bundles(&pad2), ["Kept"]);
    }

    #[test]
    fn compaction_folds_marks_into_the_snapshot() {
        use slimio::MemVfs;
        let path = Path::new("rounds.slimpad.xml");
        let vfs = MemVfs::new();
        let (mut pad, excel, _) = session();
        pad.enable_logging(&vfs, path).unwrap();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        pad.place_selection(DocKind::Spreadsheet, None, (20, 40), None).unwrap();
        pad.commit(&vfs).unwrap();

        let log_len = pad.log().unwrap().log_bytes();
        pad.compact(&vfs).unwrap();
        assert!(pad.log().unwrap().log_bytes() < log_len);

        let (mut pad2, report) =
            PadSession::open_logged(&vfs, path, reload_manager(&excel)).unwrap();
        assert_eq!(report.frames_replayed, 0);
        assert_eq!(pad2.stats().marks, 1);
        let scraps = pad2.dmi().all_scraps();
        let res = pad2.activate(scraps[0]).unwrap();
        assert!(res.display.contains("[Lasix 40 IV bid]"));
        // Marks unchanged since the compaction: a new commit carries no
        // redundant sidecar (it would be a whole mark-store copy).
        pad2.create_bundle("B", (0, 0), 10, 10, None).unwrap();
        let wal_file = trim::StoreLog::wal_path(path);
        let before = vfs.bytes(&wal_file).unwrap().len();
        pad2.commit(&vfs).unwrap();
        let frame = &vfs.bytes(&wal_file).unwrap()[before..];
        assert!(
            !frame.windows(b"<marks".len()).any(|w| w == b"<marks"),
            "marks sidecar should not ride a marks-free commit"
        );
    }

    #[test]
    fn log_operations_without_a_log_are_typed_errors() {
        use slimio::MemVfs;
        let vfs = MemVfs::new();
        let (mut pad, _, _) = session();
        assert!(matches!(pad.commit(&vfs), Err(PadError::File { .. })));
        assert!(matches!(pad.compact(&vfs), Err(PadError::File { .. })));
        assert!(!pad.should_compact());
        assert!(pad.log().is_none());
    }

    #[test]
    fn pad_stays_conformant_through_a_session() {
        let (mut pad, excel, xml) = session();
        excel.borrow_mut().select("medications.xls", "Sheet1", "A1").unwrap();
        let john = pad.create_bundle("John Smith", (10, 10), 400, 300, None).unwrap();
        let s1 = pad.place_selection(DocKind::Spreadsheet, None, (20, 40), Some(john)).unwrap();
        xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
        let s2 = pad.place_selection(DocKind::Xml, Some("K 4.1"), (30, 70), Some(john)).unwrap();
        pad.dmi_mut().link_scraps(s1, s2).unwrap();
        pad.dmi_mut().update_scrap_pos(s2, (35, 75)).unwrap();
        pad.dmi_mut().delete_scrap(s1).unwrap();
        let report = pad.dmi().check();
        assert!(report.is_conformant(), "{:?}", report.violations);
    }
}
