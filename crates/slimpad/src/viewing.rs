//! The three viewing styles of paper Figure 6.
//!
//! * **Simultaneous viewing** — "there are two windows active on the
//!   computer screen: one for the superimposed application and one for
//!   the base application." SLIMPad's normal mode.
//! * **Enhanced base-layer viewing** — "the functionality of a base
//!   application is enhanced to manage superimposed information" (the
//!   Third Voice pattern): the base view carries the superimposed
//!   annotations inline.
//! * **Independent viewing** — "the base application is hidden. A user
//!   sees only the superimposed application … \[which\] can work as an
//!   in-place viewer for base information."

use crate::pad::{PadError, PadSession};
use crate::render::render_pad;
use slimstore::ScrapHandle;

/// Which Figure 6 style to present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewingStyle {
    Simultaneous,
    EnhancedBase,
    Independent,
}

/// Present a scrap in the requested viewing style, returning the full
/// textual "screen".
pub fn view_scrap(
    session: &mut PadSession,
    scrap: ScrapHandle,
    style: ViewingStyle,
) -> Result<String, PadError> {
    match style {
        ViewingStyle::Simultaneous => {
            // Two windows side by side: the pad and the base application.
            // Activation drives the base window to the marked element
            // first, as the user's double-click would.
            let base = session.activate(scrap)?.display;
            let pad = render_pad(session)?;
            Ok(crate::render::side_by_side(&pad, &base))
        }
        ViewingStyle::EnhancedBase => {
            // One window: the base application's view, enhanced with the
            // superimposed layer's knowledge about this element.
            let base = session.activate(scrap)?.display;
            let data = session.dmi().scrap(scrap)?;
            let annotations = session.dmi().annotations(scrap)?;
            let mut out = base;
            out.push_str(&format!("\n─ superimposed: scrap \"{}\"", data.name));
            for a in annotations {
                out.push_str(&format!("\n─ note: {a}"));
            }
            out.push('\n');
            Ok(out)
        }
        ViewingStyle::Independent => {
            // One window: the pad only; the marked content is pulled
            // in-place without showing the base application.
            let content = session.extract(scrap)?;
            let data = session.dmi().scrap(scrap)?;
            let pad = render_pad(session)?;
            Ok(format!("{pad}\n[{}] ⇐ {content}\n", data.name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basedocs::spreadsheet::Workbook;
    use basedocs::{DocKind, SpreadsheetApp};
    use marks::AppModule;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn session_with_scrap() -> (PadSession, ScrapHandle) {
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
        let mut excel = SpreadsheetApp::new();
        excel.open(wb).unwrap();
        excel.select("meds.xls", "Sheet1", "A1").unwrap();
        let excel = Rc::new(RefCell::new(excel));
        let mut pad = PadSession::new("Rounds").unwrap();
        pad.marks_mut()
            .register_module(Box::new(AppModule::in_context("excel", excel)))
            .unwrap();
        let scrap = pad.place_selection(DocKind::Spreadsheet, None, (40, 90), None).unwrap();
        pad.dmi_mut().add_annotation(scrap, "dose due 14:00").unwrap();
        (pad, scrap)
    }

    #[test]
    fn simultaneous_shows_both_windows() {
        let (mut pad, scrap) = session_with_scrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::Simultaneous).unwrap();
        assert!(screen.contains(" Rounds "), "pad window present: {screen}");
        assert!(screen.contains("meds.xls"), "base window present: {screen}");
        assert!(screen.contains("[Lasix 40]"), "base highlight present: {screen}");
    }

    #[test]
    fn enhanced_base_injects_superimposed_info_into_base_view() {
        let (mut pad, scrap) = session_with_scrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::EnhancedBase).unwrap();
        assert!(screen.contains("meds.xls"), "{screen}");
        assert!(screen.contains("superimposed: scrap \"Lasix 40\""), "{screen}");
        assert!(screen.contains("note: dose due 14:00"), "{screen}");
        assert!(!screen.contains(" Rounds "), "no pad window in enhanced-base style");
    }

    #[test]
    fn independent_hides_the_base_application() {
        let (mut pad, scrap) = session_with_scrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::Independent).unwrap();
        assert!(screen.contains(" Rounds "), "{screen}");
        assert!(!screen.contains("meds.xls"), "base window hidden: {screen}");
        assert!(screen.contains("⇐ Lasix 40"), "content pulled in place: {screen}");
    }
}
