//! The three viewing styles of paper Figure 6.
//!
//! * **Simultaneous viewing** — "there are two windows active on the
//!   computer screen: one for the superimposed application and one for
//!   the base application." SLIMPad's normal mode.
//! * **Enhanced base-layer viewing** — "the functionality of a base
//!   application is enhanced to manage superimposed information" (the
//!   Third Voice pattern): the base view carries the superimposed
//!   annotations inline.
//! * **Independent viewing** — "the base application is hidden. A user
//!   sees only the superimposed application … \[which\] can work as an
//!   in-place viewer for base information."

use crate::pad::{PadError, PadSession};
use crate::render::render_pad;
use marks::ResilientResolution;
use slimstore::ScrapHandle;

/// Which Figure 6 style to present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewingStyle {
    Simultaneous,
    EnhancedBase,
    Independent,
}

/// The banner shown in place of (or alongside) base content when a
/// resolution degraded to the mark's stored excerpt.
fn degraded_banner(resolved: &ResilientResolution) -> String {
    let staleness = if resolved.outcome.stale { "stale " } else { "" };
    format!(
        "⚠ base layer unavailable — showing {}excerpt ({} attempt(s))",
        staleness,
        resolved.outcome.attempts.len(),
    )
}

/// The base "window" for a resilient resolution: live content, or the
/// stored excerpt under a banner when the base layer was unreachable.
fn base_window(resolved: &ResilientResolution) -> String {
    if resolved.is_degraded() {
        format!("{}\n{}", degraded_banner(resolved), resolved.resolution.display)
    } else {
        resolved.resolution.display.clone()
    }
}

/// Present a scrap in the requested viewing style, returning the full
/// textual "screen". Base-layer failures never abort the view: the
/// resilient resolver degrades to the mark's stored excerpt, rendered
/// under a stale-excerpt banner.
pub fn view_scrap(
    session: &mut PadSession,
    scrap: ScrapHandle,
    style: ViewingStyle,
) -> Result<String, PadError> {
    match style {
        ViewingStyle::Simultaneous => {
            // Two windows side by side: the pad and the base application.
            // Activation drives the base window to the marked element
            // first, as the user's double-click would.
            let base = base_window(&session.activate_resilient(scrap)?);
            let pad = render_pad(session)?;
            Ok(crate::render::side_by_side(&pad, &base))
        }
        ViewingStyle::EnhancedBase => {
            // One window: the base application's view, enhanced with the
            // superimposed layer's knowledge about this element.
            let base = base_window(&session.activate_resilient(scrap)?);
            let data = session.dmi().scrap(scrap)?;
            let annotations = session.dmi().annotations(scrap)?;
            let mut out = base;
            out.push_str(&format!("\n─ superimposed: scrap \"{}\"", data.name));
            for a in annotations {
                out.push_str(&format!("\n─ note: {a}"));
            }
            out.push('\n');
            Ok(out)
        }
        ViewingStyle::Independent => {
            // One window: the pad only; the marked content is pulled
            // in-place without showing the base application. A dangling
            // wire degrades to the stored excerpt, flagged inline.
            let (content, degraded) = session.extract_degraded(scrap)?;
            let data = session.dmi().scrap(scrap)?;
            let pad = render_pad(session)?;
            let flag = if degraded { " ⚠ stored excerpt (base unavailable)" } else { "" };
            Ok(format!("{pad}\n[{}] ⇐ {content}{flag}\n", data.name))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use basedocs::spreadsheet::Workbook;
    use basedocs::{DocKind, SpreadsheetApp};
    use marks::AppModule;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn session_with_scrap() -> (PadSession, ScrapHandle, Rc<RefCell<SpreadsheetApp>>) {
        let mut wb = Workbook::new("meds.xls");
        wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
        let mut excel = SpreadsheetApp::new();
        excel.open(wb).unwrap();
        excel.select("meds.xls", "Sheet1", "A1").unwrap();
        let excel = Rc::new(RefCell::new(excel));
        let mut pad = PadSession::new("Rounds").unwrap();
        pad.marks_mut()
            .register_module(Box::new(AppModule::in_context("excel", Rc::clone(&excel))))
            .unwrap();
        let scrap = pad.place_selection(DocKind::Spreadsheet, None, (40, 90), None).unwrap();
        pad.dmi_mut().add_annotation(scrap, "dose due 14:00").unwrap();
        (pad, scrap, excel)
    }

    #[test]
    fn simultaneous_shows_both_windows() {
        let (mut pad, scrap, _excel) = session_with_scrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::Simultaneous).unwrap();
        assert!(screen.contains(" Rounds "), "pad window present: {screen}");
        assert!(screen.contains("meds.xls"), "base window present: {screen}");
        assert!(screen.contains("[Lasix 40]"), "base highlight present: {screen}");
    }

    #[test]
    fn enhanced_base_injects_superimposed_info_into_base_view() {
        let (mut pad, scrap, _excel) = session_with_scrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::EnhancedBase).unwrap();
        assert!(screen.contains("meds.xls"), "{screen}");
        assert!(screen.contains("superimposed: scrap \"Lasix 40\""), "{screen}");
        assert!(screen.contains("note: dose due 14:00"), "{screen}");
        assert!(!screen.contains(" Rounds "), "no pad window in enhanced-base style");
    }

    #[test]
    fn independent_hides_the_base_application() {
        let (mut pad, scrap, _excel) = session_with_scrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::Independent).unwrap();
        assert!(screen.contains(" Rounds "), "{screen}");
        assert!(!screen.contains("meds.xls"), "base window hidden: {screen}");
        assert!(screen.contains("⇐ Lasix 40"), "content pulled in place: {screen}");
    }

    #[test]
    fn simultaneous_degrades_to_excerpt_banner_when_base_is_gone() {
        let (mut pad, scrap, excel) = session_with_scrap();
        excel.borrow_mut().close("meds.xls").unwrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::Simultaneous).unwrap();
        assert!(screen.contains("base layer unavailable"), "banner present: {screen}");
        assert!(screen.contains("Lasix 40"), "stored excerpt shown: {screen}");
        assert!(screen.contains(" Rounds "), "pad window still present: {screen}");
    }

    #[test]
    fn enhanced_base_banner_flags_stale_excerpts() {
        let (mut pad, scrap, excel) = session_with_scrap();
        // Drift first, audit (so staleness is known), then lose the doc.
        excel
            .borrow_mut()
            .workbook_mut("meds.xls")
            .unwrap()
            .sheet_mut("Sheet1")
            .unwrap()
            .set_a1("A1", "Lasix 80")
            .unwrap();
        pad.audit_marks();
        excel.borrow_mut().close("meds.xls").unwrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::EnhancedBase).unwrap();
        assert!(screen.contains("showing stale excerpt"), "{screen}");
        assert!(screen.contains("Lasix 40"), "the stale excerpt is all we have: {screen}");
        assert!(screen.contains("superimposed: scrap"), "annotations still render: {screen}");
    }

    #[test]
    fn independent_view_survives_a_dangling_wire() {
        let (mut pad, scrap, excel) = session_with_scrap();
        excel.borrow_mut().close("meds.xls").unwrap();
        let screen = view_scrap(&mut pad, scrap, ViewingStyle::Independent).unwrap();
        assert!(screen.contains("⇐ Lasix 40"), "{screen}");
        assert!(screen.contains("stored excerpt (base unavailable)"), "{screen}");
    }
}
