//! Failure-injection integration tests: corrupted files, vanished base
//! documents, hostile inputs. The system's job under failure is clean,
//! specific errors — never panics, never silent corruption.

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimstore::SlimPadDmi;
use superimposed::{DocKind, MarkManager, PadError, SuperimposedSystem};

fn saved_pad() -> (SuperimposedSystem, String) {
    let mut sys = SuperimposedSystem::new("Rounds").unwrap();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    sys.pad.place_selection(DocKind::Spreadsheet, None, (10, 30), None).unwrap();
    let xml = sys.pad.save_xml();
    (sys, xml)
}

#[test]
fn truncated_pad_files_error_cleanly() {
    let (sys, xml) = saved_pad();
    for cut in [1usize, 10, 50, xml.len() / 2, xml.len() - 1] {
        let truncated: String = xml.chars().take(cut).collect();
        let manager = sys.fresh_manager().unwrap();
        let result = superimposed::PadSession::load_xml(&truncated, manager);
        assert!(
            matches!(result, Err(PadError::File { .. })),
            "cut at {cut} must be a clean File error"
        );
    }
}

#[test]
fn byte_flipped_pad_files_never_panic() {
    let (sys, xml) = saved_pad();
    // Flip a spread of characters; every outcome must be Ok or a clean
    // error — no panic, no unwrap crash.
    let bytes: Vec<char> = xml.chars().collect();
    for i in (0..bytes.len()).step_by(97) {
        let mut mutated = bytes.clone();
        mutated[i] = match mutated[i] {
            '<' => '(',
            '>' => ')',
            '"' => '\'',
            c if c.is_ascii_alphabetic() => 'Z',
            _ => 'x',
        };
        let text: String = mutated.into_iter().collect();
        let manager = sys.fresh_manager().unwrap();
        let _ = superimposed::PadSession::load_xml(&text, manager);
    }
}

#[test]
fn swapped_sections_are_rejected_or_harmless() {
    let (sys, xml) = saved_pad();
    // Put the marks XML in the store slot and vice versa.
    let doc = superimposed::xmlkit::parse(&xml).unwrap();
    let store_text = doc.root.child("store").unwrap().text();
    let marks_text = doc.root.child("marks").unwrap().text();
    let mut w = superimposed::xmlkit::XmlWriter::compact();
    w.declaration();
    w.start("slimpad-file");
    w.attr("version", "1");
    w.leaf("store", &marks_text);
    w.leaf("marks", &store_text);
    w.end();
    let swapped = w.finish();
    let manager = sys.fresh_manager().unwrap();
    assert!(superimposed::PadSession::load_xml(&swapped, manager).is_err());
}

#[test]
fn marks_for_closed_documents_fail_resolution_not_loading() {
    let (mut sys, xml) = saved_pad();
    // Close the base document, then reload the pad: loading succeeds
    // (marks are data), resolution and audit report the dangle.
    sys.excel.borrow_mut().close("meds.xls").unwrap();
    sys.reopen_pad(&xml).unwrap();
    let root = sys.pad.root_bundle();
    let scrap = sys.pad.dmi().bundle(root).unwrap().scraps[0];
    assert!(sys.pad.activate(scrap).is_err());
    let audit = sys.pad.marks().audit();
    assert!(audit.iter().all(|a| !a.live));
    // The excerpt still gives the user something to see.
    let mark_id = {
        let marks = sys.pad.dmi().scrap(scrap).unwrap().marks;
        sys.pad.dmi().mark_handle(marks[0]).unwrap().mark_id
    };
    assert_eq!(sys.pad.marks().get(&mark_id).unwrap().excerpt, "Lasix 40");
}

#[test]
fn mark_store_with_unknown_kind_is_rejected() {
    let mut manager = MarkManager::new();
    let bad = r#"<?xml version="1.0" encoding="UTF-8"?><marks version="1" next="1"><mark id="mark:0" kind="hologram" excerpt=""><f n="fileName">x</f></mark></marks>"#;
    assert!(manager.load_xml(bad).is_err());
}

#[test]
fn undo_to_a_checkpoint_from_before_a_load_is_rejected() {
    // Checkpoints do not survive persistence: a revision taken before
    // save/load must not silently "work" against the reloaded store's
    // fresh journal — it lies beyond retained history and is refused.
    let mut dmi = SlimPadDmi::new();
    dmi.create_bundle("a", (0, 0), 10, 10);
    let checkpoint = dmi.checkpoint();
    dmi.create_bundle("b", (0, 0), 10, 10);
    let (mut reloaded, _) = SlimPadDmi::load_xml(&dmi.save_xml()).unwrap();
    // The reloaded store's journal history starts at load time; the old
    // checkpoint predates it and is refused — not silently misapplied.
    let result = reloaded.rollback(checkpoint);
    assert!(result.is_err(), "stale checkpoint must be refused: {result:?}");
    reloaded.store().check_invariants();
    assert_eq!(reloaded.bundles().len(), 2, "contents untouched");
}

#[test]
fn hostile_labels_roundtrip_everywhere() {
    // Labels exercising every escaping path: XML specials, quotes,
    // unicode, leading/trailing space.
    let hostile = [
        "a<b>&c\"d'e",
        "  leading and trailing  ",
        "line\nbreak",
        "Ω≤≥λ — κακό",
        "]]>",
        "<?pi?>",
        "<!--comment-->",
    ];
    let mut sys = SuperimposedSystem::new("hostile & <pad>").unwrap();
    let mut wb = Workbook::new("h.xls");
    for (i, label) in hostile.iter().enumerate() {
        wb.sheet_mut("Sheet1").unwrap().set_a1(&format!("A{}", i + 1), label).unwrap();
    }
    sys.excel.borrow_mut().open(wb).unwrap();
    for (i, label) in hostile.iter().enumerate() {
        sys.excel.borrow_mut().select("h.xls", "Sheet1", &format!("A{}", i + 1)).unwrap();
        sys.pad
            .place_selection(DocKind::Spreadsheet, Some(label), (10, 30 * i as i64), None)
            .unwrap();
    }
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let root = sys.pad.root_bundle();
    let mut names: Vec<String> = sys
        .pad
        .dmi()
        .bundle(root)
        .unwrap()
        .scraps
        .iter()
        .map(|s| sys.pad.dmi().scrap(*s).unwrap().name)
        .collect();
    names.sort();
    let mut expected: Vec<String> = hostile.iter().map(|s| s.to_string()).collect();
    expected.sort();
    // Note: text-document paragraphs normalize newlines, but scrap labels
    // must be preserved verbatim.
    assert_eq!(names, expected);
    // Excerpts resolve too.
    for scrap in sys.pad.dmi().bundle(root).unwrap().scraps {
        assert!(sys.pad.extract(scrap).is_ok());
    }
}

#[test]
fn deep_nesting_survives_render_and_save() {
    let mut sys = SuperimposedSystem::new("deep").unwrap();
    let mut parent = None;
    for depth in 0..64 {
        parent =
            Some(sys.pad.create_bundle(&format!("d{depth}"), (depth, depth), 1200 - depth, 900 - depth, parent).unwrap());
    }
    let rendered = superimposed::slimpad::render::render_pad(&sys.pad).unwrap();
    assert!(rendered.contains(" deep "));
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert!(sys.pad.dmi().check().is_conformant());
}

#[test]
fn zero_sized_bundles_are_representable() {
    let mut sys = SuperimposedSystem::new("tiny").unwrap();
    let b = sys.pad.create_bundle("dot", (5, 5), 0, 0, None).unwrap();
    assert_eq!(sys.pad.dmi().bundle(b).unwrap().width, 0);
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert!(sys.pad.dmi().check().is_conformant());
}
