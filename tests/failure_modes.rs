//! Failure-injection integration tests: corrupted files, vanished base
//! documents, hostile inputs. The system's job under failure is clean,
//! specific errors — never panics, never silent corruption.

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimstore::SlimPadDmi;
use superimposed::{DocKind, MarkManager, PadError, SuperimposedSystem};

fn saved_pad() -> (SuperimposedSystem, String) {
    let mut sys = SuperimposedSystem::new("Rounds").unwrap();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    sys.pad.place_selection(DocKind::Spreadsheet, None, (10, 30), None).unwrap();
    let xml = sys.pad.save_xml();
    (sys, xml)
}

#[test]
fn truncated_pad_files_error_cleanly() {
    let (sys, xml) = saved_pad();
    for cut in [1usize, 10, 50, xml.len() / 2, xml.len() - 1] {
        let truncated: String = xml.chars().take(cut).collect();
        let manager = sys.fresh_manager().unwrap();
        let result = superimposed::PadSession::load_xml(&truncated, manager);
        assert!(
            matches!(result, Err(PadError::File { .. })),
            "cut at {cut} must be a clean File error"
        );
    }
}

#[test]
fn byte_flipped_pad_files_never_panic() {
    let (sys, xml) = saved_pad();
    // Flip a spread of characters; every outcome must be Ok or a clean
    // error — no panic, no unwrap crash.
    let bytes: Vec<char> = xml.chars().collect();
    for i in (0..bytes.len()).step_by(97) {
        let mut mutated = bytes.clone();
        mutated[i] = match mutated[i] {
            '<' => '(',
            '>' => ')',
            '"' => '\'',
            c if c.is_ascii_alphabetic() => 'Z',
            _ => 'x',
        };
        let text: String = mutated.into_iter().collect();
        let manager = sys.fresh_manager().unwrap();
        let _ = superimposed::PadSession::load_xml(&text, manager);
    }
}

#[test]
fn swapped_sections_are_rejected_or_harmless() {
    let (sys, xml) = saved_pad();
    // Put the marks XML in the store slot and vice versa.
    let doc = superimposed::xmlkit::parse(&xml).unwrap();
    let store_text = doc.root.child("store").unwrap().text();
    let marks_text = doc.root.child("marks").unwrap().text();
    let mut w = superimposed::xmlkit::XmlWriter::compact();
    w.declaration();
    w.start("slimpad-file");
    w.attr("version", "1");
    w.leaf("store", &marks_text);
    w.leaf("marks", &store_text);
    w.end();
    let swapped = w.finish();
    let manager = sys.fresh_manager().unwrap();
    assert!(superimposed::PadSession::load_xml(&swapped, manager).is_err());
}

#[test]
fn marks_for_closed_documents_fail_resolution_not_loading() {
    let (mut sys, xml) = saved_pad();
    // Close the base document, then reload the pad: loading succeeds
    // (marks are data), resolution and audit report the dangle.
    sys.excel.borrow_mut().close("meds.xls").unwrap();
    sys.reopen_pad(&xml).unwrap();
    let root = sys.pad.root_bundle();
    let scrap = sys.pad.dmi().bundle(root).unwrap().scraps[0];
    assert!(sys.pad.activate(scrap).is_err());
    let audit = sys.pad.marks().audit();
    assert!(audit.iter().all(|a| !a.live));
    // The excerpt still gives the user something to see.
    let mark_id = {
        let marks = sys.pad.dmi().scrap(scrap).unwrap().marks;
        sys.pad.dmi().mark_handle(marks[0]).unwrap().mark_id
    };
    assert_eq!(sys.pad.marks().get(&mark_id).unwrap().excerpt, "Lasix 40");
}

#[test]
fn mark_store_with_unknown_kind_is_rejected() {
    let mut manager = MarkManager::new();
    let bad = r#"<?xml version="1.0" encoding="UTF-8"?><marks version="1" next="1"><mark id="mark:0" kind="hologram" excerpt=""><f n="fileName">x</f></mark></marks>"#;
    assert!(manager.load_xml(bad).is_err());
}

#[test]
fn undo_to_a_checkpoint_from_before_a_load_is_rejected() {
    // Checkpoints do not survive persistence: a revision taken before
    // save/load must not silently "work" against the reloaded store's
    // fresh journal — it lies beyond retained history and is refused.
    let mut dmi = SlimPadDmi::new();
    dmi.create_bundle("a", (0, 0), 10, 10);
    let checkpoint = dmi.checkpoint();
    dmi.create_bundle("b", (0, 0), 10, 10);
    let (mut reloaded, _) = SlimPadDmi::load_xml(&dmi.save_xml()).unwrap();
    // The reloaded store's journal history starts at load time; the old
    // checkpoint predates it and is refused — not silently misapplied.
    let result = reloaded.rollback(checkpoint);
    assert!(result.is_err(), "stale checkpoint must be refused: {result:?}");
    reloaded.store().check_invariants();
    assert_eq!(reloaded.bundles().len(), 2, "contents untouched");
}

#[test]
fn hostile_labels_roundtrip_everywhere() {
    // Labels exercising every escaping path: XML specials, quotes,
    // unicode, leading/trailing space.
    let hostile = [
        "a<b>&c\"d'e",
        "  leading and trailing  ",
        "line\nbreak",
        "Ω≤≥λ — κακό",
        "]]>",
        "<?pi?>",
        "<!--comment-->",
    ];
    let mut sys = SuperimposedSystem::new("hostile & <pad>").unwrap();
    let mut wb = Workbook::new("h.xls");
    for (i, label) in hostile.iter().enumerate() {
        wb.sheet_mut("Sheet1").unwrap().set_a1(&format!("A{}", i + 1), label).unwrap();
    }
    sys.excel.borrow_mut().open(wb).unwrap();
    for (i, label) in hostile.iter().enumerate() {
        sys.excel.borrow_mut().select("h.xls", "Sheet1", &format!("A{}", i + 1)).unwrap();
        sys.pad
            .place_selection(DocKind::Spreadsheet, Some(label), (10, 30 * i as i64), None)
            .unwrap();
    }
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let root = sys.pad.root_bundle();
    let mut names: Vec<String> = sys
        .pad
        .dmi()
        .bundle(root)
        .unwrap()
        .scraps
        .iter()
        .map(|s| sys.pad.dmi().scrap(*s).unwrap().name)
        .collect();
    names.sort();
    let mut expected: Vec<String> = hostile.iter().map(|s| s.to_string()).collect();
    expected.sort();
    // Note: text-document paragraphs normalize newlines, but scrap labels
    // must be preserved verbatim.
    assert_eq!(names, expected);
    // Excerpts resolve too.
    for scrap in sys.pad.dmi().bundle(root).unwrap().scraps {
        assert!(sys.pad.extract(scrap).is_ok());
    }
}

#[test]
fn deep_nesting_survives_render_and_save() {
    let mut sys = SuperimposedSystem::new("deep").unwrap();
    let mut parent = None;
    for depth in 0..64 {
        parent =
            Some(sys.pad.create_bundle(&format!("d{depth}"), (depth, depth), 1200 - depth, 900 - depth, parent).unwrap());
    }
    let rendered = superimposed::slimpad::render::render_pad(&sys.pad).unwrap();
    assert!(rendered.contains(" deep "));
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert!(sys.pad.dmi().check().is_conformant());
}

#[test]
fn zero_sized_bundles_are_representable() {
    let mut sys = SuperimposedSystem::new("tiny").unwrap();
    let b = sys.pad.create_bundle("dot", (5, 5), 0, 0, None).unwrap();
    assert_eq!(sys.pad.dmi().bundle(b).unwrap().width, 0);
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert!(sys.pad.dmi().check().is_conformant());
}

// ---- crash-safety: fault-injected saves ------------------------------------

use proptest::prelude::*;
use superimposed::slimio::{FaultConfig, FaultMode, FaultOp, FaultVfs, MemVfs};
use std::path::Path;

#[test]
fn crash_during_pad_save_never_corrupts_the_previous_save() {
    let path = Path::new("rounds.slimpad.xml");
    for op in [FaultOp::Write, FaultOp::Sync, FaultOp::Rename] {
        for mode in [FaultMode::Fail, FaultMode::Torn, FaultMode::SilentTorn] {
            for seed in [1u64, 7, 1999] {
                let (mut sys, _) = saved_pad();
                let base = MemVfs::new();
                sys.pad.save_to(&base, path).unwrap();

                // Mutate the pad, then crash partway through re-saving it.
                sys.pad.create_bundle("Transient", (500, 10), 100, 100, None).unwrap();
                let vfs = FaultVfs::new(
                    base,
                    FaultConfig { op, mode, index: 0, seed, halt_after_fault: true },
                );
                let _ = sys.pad.save_to(&vfs, path);

                // The machine "rebooted": whatever the fault did, the
                // previous save must load strictly and completely.
                let vfs = vfs.into_inner();
                let manager = sys.fresh_manager().unwrap();
                let pad = superimposed::PadSession::load_from(&vfs, path, manager)
                    .unwrap_or_else(|e| panic!("{op:?}/{mode:?}/seed {seed}: {e}"));
                assert_eq!(pad.stats().scraps, 1, "{op:?}/{mode:?}/seed {seed}");
                assert_eq!(pad.stats().bundles, 0, "{op:?}/{mode:?}/seed {seed}");
            }
        }
    }
}

#[test]
fn silently_torn_pad_write_is_caught_at_load_time() {
    // A lying disk: the write "succeeds" but only a prefix hits the
    // platter, and the process keeps running (no halt). The seal is the
    // only line of defence.
    let path = Path::new("rounds.slimpad.xml");
    let (sys, _) = saved_pad();
    let vfs = FaultVfs::new(
        MemVfs::new(),
        FaultConfig {
            op: FaultOp::Write,
            mode: FaultMode::SilentTorn,
            index: 0,
            seed: 42,
            halt_after_fault: false,
        },
    );
    sys.pad.save_to(&vfs, path).expect("the lying disk reports success");

    let vfs = vfs.into_inner();
    // A tear that keeps (part of) the footer fails the checksum; a tear
    // that chops the footer off leaves a malformed document. Either way
    // the strict load refuses with a typed error — never a silent
    // success on partial data.
    let strict = superimposed::PadSession::load_from(&vfs, path, sys.fresh_manager().unwrap());
    match strict {
        Err(PadError::Corrupt { .. } | PadError::File { .. }) => {}
        Err(e) => panic!("torn payload must be refused with Corrupt or File, got {e}"),
        Ok(_) => panic!("torn payload must not load as a pad"),
    }
    // Salvage either recovers a degraded pad (and says so) or fails
    // with a typed error if the tear landed before the root element.
    match superimposed::PadSession::load_salvage_from(&vfs, path, sys.fresh_manager().unwrap()) {
        Ok(rec) => assert!(!rec.is_clean(), "a torn file cannot salvage clean"),
        Err(e) => drop(e),
    }
}

#[test]
fn recover_pad_file_reports_damage_through_the_facade() {
    let dir = std::env::temp_dir().join("slim-failure-modes-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("rounds.slimpad.xml");
    let (mut sys, _) = saved_pad();
    sys.pad.save(&path).unwrap();

    // Chop the tail off the file on the real filesystem.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() * 3 / 4]).unwrap();

    let report = sys.recover_pad_file(&path).unwrap();
    assert!(!report.is_clean(), "truncation must be reported: {report}");
    assert!(
        report
            .notes
            .iter()
            .any(|n| n.contains("file damaged") || n.contains("integrity check failed")),
        "{report}"
    );
    // The recovered pad is live and conformance-checkable.
    assert!(sys.pad.dmi().check().is_conformant() || sys.pad.stats().triples > 0);
    std::fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Truncating a saved (sealed) pad at any byte offset never panics:
    /// strict load succeeds or returns a typed error, and salvage — when
    /// it returns a pad at all — returns a usable one.
    #[test]
    fn any_truncation_of_a_sealed_pad_is_handled(cut_permille in 0usize..1001, seed in 0u64..4) {
        let (sys, xml) = saved_pad();
        let _ = seed; // the pad content is deterministic; seed widens case spread
        let sealed = superimposed::slimio::seal(&xml);
        let mut cut = sealed.len() * cut_permille / 1000;
        while !sealed.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &sealed[..cut];

        let strict = superimposed::PadSession::load_xml(prefix, sys.fresh_manager().unwrap());
        if cut == sealed.len() {
            prop_assert!(strict.is_ok(), "full file must load strictly");
        }
        match superimposed::PadSession::load_xml_salvage(prefix, sys.fresh_manager().unwrap()) {
            Ok(rec) => {
                let stats = rec.value.stats();
                prop_assert!(stats.scraps <= 1);
                if cut == sealed.len() {
                    prop_assert!(rec.is_clean(), "undamaged file salvages clean: {rec}");
                }
            }
            Err(_) => prop_assert!(cut < sealed.len(), "full file must salvage"),
        }
    }
}
