//! Integration test: marks across all six base types.
//!
//! For every base application the same narrow loop must hold (paper §1):
//! select → current_selection → mark → persist → reload → resolve back
//! to the same element. Plus the audit behaviours when base documents
//! change underneath their marks.

use superimposed::basedocs::slides::{SlideDeck, ShapeKind, Slide};
use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::basedocs::textdoc::TextDocument;
use superimposed::basedocs::pdfdoc::PdfDocument;
use superimposed::{DocKind, SuperimposedSystem};

/// Boot a system with one document open in each base application and a
/// selection made in each.
fn populated_system() -> SuperimposedSystem {
    let sys = SuperimposedSystem::new("marks-test").unwrap();

    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("B2", "Lasix 40").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "B2").unwrap();

    sys.xml
        .borrow_mut()
        .open_text("labs.xml", "<labs><k unit='mEq/L'>4.1</k></labs>")
        .unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();

    let mut note = TextDocument::from_text("note.doc", "Plan: recheck electrolytes.");
    note.set_bookmark("plan", 0, superimposed::basedocs::Span::new(0, 4)).unwrap();
    sys.text.borrow_mut().open(note).unwrap();
    sys.text.borrow_mut().select_bookmark("note.doc", "plan").unwrap();

    sys.html
        .borrow_mut()
        .load("guide.html", "<html><body><p id='dosing'>20-80 mg daily</p></body></html>")
        .unwrap();
    sys.html.borrow_mut().select_anchor("guide.html", "dosing").unwrap();

    sys.pdf
        .borrow_mut()
        .open(PdfDocument::paginate("guide.pdf", "Loop diuretics remain first-line therapy.", 30, 5))
        .unwrap();
    sys.pdf.borrow_mut().select_found("guide.pdf", "diuretics").unwrap();

    let mut deck = SlideDeck::new("conf.ppt");
    let mut slide = Slide::new();
    slide.add_shape("title", ShapeKind::Title, "Case Review").unwrap();
    deck.add_slide(slide);
    sys.slides.borrow_mut().open(deck).unwrap();
    sys.slides.borrow_mut().select("conf.ppt", 0, "title").unwrap();

    sys
}

/// The content each kind's selection should extract.
fn expected_excerpt(kind: DocKind) -> &'static str {
    match kind {
        DocKind::Spreadsheet => "Lasix 40",
        DocKind::Xml => "4.1",
        DocKind::Text => "Plan",
        DocKind::Html => "20-80 mg daily",
        DocKind::Pdf => "diuretics",
        DocKind::Slides => "Case Review",
    }
}

#[test]
fn all_six_kinds_create_and_resolve() {
    let mut sys = populated_system();
    for kind in DocKind::all() {
        let id = sys.pad.marks_mut().create_mark(kind).unwrap();
        let mark = sys.pad.marks().get(&id).unwrap();
        assert_eq!(mark.kind(), kind);
        assert_eq!(mark.excerpt, expected_excerpt(kind), "{kind}");
        let res = sys.pad.marks_mut().resolve(&id).unwrap();
        assert!(
            res.display.contains(expected_excerpt(kind)),
            "{kind}: {}",
            res.display
        );
    }
    let stats = sys.pad.marks().stats();
    assert_eq!(stats.total, 6);
    assert_eq!(stats.per_kind.len(), 6);
}

#[test]
fn marks_survive_persistence_and_resolve_after_reload() {
    let mut sys = populated_system();
    let mut ids = Vec::new();
    for kind in DocKind::all() {
        ids.push(sys.pad.marks_mut().create_mark(kind).unwrap());
    }
    let xml = sys.pad.marks().to_xml();

    // Reload into a fresh manager wired to the same live apps.
    let mut manager = sys.fresh_manager().unwrap();
    manager.load_xml(&xml).unwrap();
    assert_eq!(manager.len(), 6);
    for (id, kind) in ids.iter().zip(DocKind::all()) {
        let res = manager.resolve(id).unwrap();
        assert!(res.display.contains(expected_excerpt(kind)), "{kind} after reload");
    }
}

#[test]
fn in_place_modules_never_move_base_selections() {
    let mut sys = populated_system();
    let id = sys.pad.marks_mut().create_mark(DocKind::Xml).unwrap();
    // Move the XML app's selection elsewhere.
    sys.xml.borrow_mut().select_by_indices("labs.xml", &[]).unwrap();
    let before = format!("{}", {
        use superimposed::BaseApplication;
        sys.xml.borrow().current_selection().unwrap()
    });
    let res = sys.pad.marks_mut().resolve_with(&id, "xml-viewer").unwrap();
    assert_eq!(res.display, "4.1");
    let after = format!("{}", {
        use superimposed::BaseApplication;
        sys.xml.borrow().current_selection().unwrap()
    });
    assert_eq!(before, after, "in-place resolution must not disturb the user");
}

#[test]
fn audit_distinguishes_live_drifted_dangling_per_kind() {
    let mut sys = populated_system();
    let spreadsheet_mark = sys.pad.marks_mut().create_mark(DocKind::Spreadsheet).unwrap();
    let xml_mark = sys.pad.marks_mut().create_mark(DocKind::Xml).unwrap();
    let pdf_mark = sys.pad.marks_mut().create_mark(DocKind::Pdf).unwrap();

    // Drift the spreadsheet value.
    sys.excel
        .borrow_mut()
        .workbook_mut("meds.xls")
        .unwrap()
        .sheet_mut("Sheet1")
        .unwrap()
        .set_a1("B2", "Lasix 80")
        .unwrap();
    // Dangle the XML mark by replacing the document without the element.
    sys.xml.borrow_mut().close("labs.xml").unwrap();
    sys.xml.borrow_mut().open_text("labs.xml", "<labs><na>140</na></labs>").unwrap();

    let audit = sys.pad.marks().audit();
    let row = |id: &str| audit.iter().find(|a| a.mark_id == id).unwrap();
    assert!(row(&spreadsheet_mark).live && row(&spreadsheet_mark).drifted);
    assert!(!row(&xml_mark).live);
    assert!(row(&pdf_mark).live && !row(&pdf_mark).drifted);
}

#[test]
fn resolution_log_records_module_choices() {
    let mut sys = populated_system();
    let id = sys.pad.marks_mut().create_mark(DocKind::Html).unwrap();
    sys.pad.marks_mut().resolve(&id).unwrap();
    sys.pad.marks_mut().resolve_with(&id, "html-viewer").unwrap();
    let log = sys.pad.marks().resolution_log();
    assert_eq!(log.len(), 2);
    assert_eq!(log[0].1, "html");
    assert_eq!(log[1].1, "html-viewer");
}

#[test]
fn unknown_kind_module_routing_fails_cleanly() {
    // A manager with only one module refuses other kinds without panicking.
    let sys = populated_system();
    let mut manager = superimposed::MarkManager::new();
    manager
        .register_module(Box::new(superimposed::marks::AppModule::in_context(
            "xml",
            std::rc::Rc::clone(&sys.xml),
        )))
        .unwrap();
    assert!(manager.create_mark(DocKind::Pdf).is_err());
    assert_eq!(manager.supported_kinds(), vec![DocKind::Xml]);
}
