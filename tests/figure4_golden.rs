//! Golden regression test for the Figure 4 reproduction: the 'Rounds'
//! pad must render the same picture, resolve both mark types with the
//! same highlights, and keep doing so across persistence.

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::render::render_pad;
use superimposed::{DocKind, SuperimposedSystem};

fn rounds_system() -> (SuperimposedSystem, Vec<slimstore::ScrapHandle>) {
    let mut sys = SuperimposedSystem::new("Rounds").unwrap();
    let mut wb = Workbook::new("medication-list.xls");
    {
        let sheet = wb.sheet_mut("Sheet1").unwrap();
        sheet.import_csv("Drug,Dose\nFurosemide (Lasix),40 mg\nCaptopril,12.5 mg\n").unwrap();
    }
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.xml
        .borrow_mut()
        .open_text(
            "lab-report.xml",
            "<labReport patient='John Smith'><electrolytes>\
             <na>140</na><k>4.1</k><cl>102</cl><hco3>26</hco3>\
             </electrolytes></labReport>",
        )
        .unwrap();

    let john = sys.pad.create_bundle("John Smith", (20, 60), 640, 600, None).unwrap();
    sys.excel.borrow_mut().select("medication-list.xls", "Sheet1", "A2:B2").unwrap();
    let lasix = sys
        .pad
        .place_selection(DocKind::Spreadsheet, Some("Lasix 40"), (40, 120), Some(john))
        .unwrap();
    let electro = sys.pad.create_bundle("Electrolyte", (330, 240), 260, 240, Some(john)).unwrap();
    let mut scraps = vec![lasix];
    for (path, label, pos) in [
        ("/labReport/electrolytes/na", "140", (350, 300)),
        ("/labReport/electrolytes/cl", "102", (450, 300)),
        ("/labReport/electrolytes/k", "4.1", (350, 390)),
        ("/labReport/electrolytes/hco3", "26", (450, 390)),
    ] {
        sys.xml.borrow_mut().select_by_path("lab-report.xml", path).unwrap();
        scraps.push(sys.pad.place_selection(DocKind::Xml, Some(label), pos, Some(electro)).unwrap());
    }
    (sys, scraps)
}

/// The exact rendered pad. If layout or rendering changes, this golden
/// changes with it — deliberately a tripwire.
const GOLDEN: &str = r#"+ Rounds ------------------------------------------------------------------------------------------------------------------------+
|                                                                                                                                |
|                                                                                                                                |
|  + John Smith --------------------------------------------------+                                                              |
|  |                                                              |                                                              |
|  | ·Lasix 40                                                    |                                                              |
|  |                                                              |                                                              |
|  |                                                              |                                                              |
|  |                                                              |                                                              |
|  |                              + Electrolyte -----------+      |                                                              |
|  |                              |                        |      |                                                              |
|  |                              | ·140      ·102         |      |                                                              |
|  |                              |                        |      |                                                              |
|  |                              |                        |      |                                                              |
|  |                              | ·4.1      ·26          |      |                                                              |
|  |                              |                        |      |                                                              |
|  |                              +------------------------+      |                                                              |
|  |                                                              |                                                              |
|  |                                                              |                                                              |
|  |                                                              |                                                              |
|  |                                                              |                                                              |
|  |                                                              |                                                              |
|  +--------------------------------------------------------------+                                                              |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
|                                                                                                                                |
+--------------------------------------------------------------------------------------------------------------------------------+
"#;

#[test]
fn figure4_render_matches_golden() {
    let (sys, _) = rounds_system();
    let render = render_pad(&sys.pad).unwrap();
    if render != GOLDEN {
        // Print both for diffing when the tripwire fires.
        eprintln!("=== rendered ===\n{render}\n=== golden ===\n{GOLDEN}");
    }
    assert_eq!(render, GOLDEN);
}

#[test]
fn figure4_marks_resolve_with_highlights() {
    let (mut sys, scraps) = rounds_system();
    // Excel mark: medication row highlighted.
    let res = sys.pad.activate(scraps[0]).unwrap();
    assert!(res.display.contains("[Furosemide (Lasix)]"), "{}", res.display);
    assert!(res.display.contains("[40 mg]"), "{}", res.display);
    // XML mark: potassium element highlighted in the outline.
    let res = sys.pad.activate(scraps[3]).unwrap();
    assert!(res.display.lines().any(|l| l.starts_with(">>") && l.contains("<k")), "{}", res.display);
}

#[test]
fn figure4_render_stable_across_persistence() {
    let (mut sys, _) = rounds_system();
    let before = render_pad(&sys.pad).unwrap();
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert_eq!(render_pad(&sys.pad).unwrap(), before);
}

#[test]
fn figure4_gridlet_detected() {
    let (sys, _) = rounds_system();
    let root = sys.pad.root_bundle();
    let john = sys.pad.dmi().bundle(root).unwrap().nested[0];
    let electro = sys.pad.dmi().bundle(john).unwrap().nested[0];
    let grid = sys.pad.detect_gridlet(electro, 8).unwrap();
    assert_eq!(grid.rows.len(), 2, "{grid:?}");
    assert_eq!(grid.columns.len(), 2, "{grid:?}");
}
