//! Scenario-level integration tests: full clinical workflows from the
//! paper's field observations (§2, §6).

use superimposed::basedocs::pdfdoc::PdfDocument;
use superimposed::basedocs::slides::{ShapeKind, Slide, SlideDeck};
use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::basedocs::textdoc::TextDocument;
use superimposed::slimpad::render::render_pad;
use superimposed::slimpad::templates::BundleTemplate;
use superimposed::{DocKind, SuperimposedSystem};

/// The paper's §6 target task: "supporting the transfer of 'current
/// situation' awareness for hospital patients when one doctor is taking
/// over rounds for another, such as on weekends."
#[test]
fn weekend_handoff_scenario() {
    // --- Friday: the outgoing resident builds the pad -----------------------
    let mut friday = SuperimposedSystem::new("Weekend Handoff").unwrap();
    let mut wb = Workbook::new("meds.xls");
    let sheet = wb.sheet_mut("Sheet1").unwrap();
    sheet.set_a1("A1", "Lasix 40 IV bid").unwrap();
    sheet.set_a1("A2", "Captopril 12.5 PO tid").unwrap();
    friday.excel.borrow_mut().open(wb).unwrap();
    friday
        .xml
        .borrow_mut()
        .open_text("labs.xml", "<labs><k>3.4</k><cr>1.4</cr></labs>")
        .unwrap();

    let patient = friday.pad.create_bundle("Bed 4: John Smith", (20, 60), 600, 500, None).unwrap();
    friday.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    let meds = friday
        .pad
        .place_selection(DocKind::Spreadsheet, None, (40, 120), Some(patient))
        .unwrap();
    friday.xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
    let potassium = friday
        .pad
        .place_selection(DocKind::Xml, Some("K 3.4 — LOW"), (40, 180), Some(patient))
        .unwrap();
    friday.pad.dmi_mut().add_annotation(potassium, "repleting; recheck Sat am").unwrap();
    friday.pad.dmi_mut().link_scraps(potassium, meds).unwrap();

    let handoff_file = friday.pad.save_xml();

    // --- Saturday: the covering doctor opens the pad -------------------------
    // Same hospital systems (live base apps), different person, fresh
    // manager — the paper's sharing story.
    let mut saturday = SuperimposedSystem::new("scratch").unwrap();
    // Rehost the same documents in the weekend system.
    let mut wb = Workbook::new("meds.xls");
    let sheet = wb.sheet_mut("Sheet1").unwrap();
    sheet.set_a1("A1", "Lasix 40 IV bid").unwrap();
    sheet.set_a1("A2", "Captopril 12.5 PO tid").unwrap();
    saturday.excel.borrow_mut().open(wb).unwrap();
    saturday
        .xml
        .borrow_mut()
        .open_text("labs.xml", "<labs><k>4.0</k><cr>1.3</cr></labs>") // new morning labs
        .unwrap();
    saturday.reopen_pad(&handoff_file).unwrap();

    // The covering doctor sees the annotation and follows the wire.
    let root = saturday.pad.root_bundle();
    let patient = saturday.pad.dmi().bundle(root).unwrap().nested[0];
    let scraps = saturday.pad.dmi().bundle(patient).unwrap().scraps;
    let k_scrap = scraps
        .iter()
        .copied()
        .find(|s| saturday.pad.dmi().scrap(*s).unwrap().name.starts_with("K 3.4"))
        .unwrap();
    assert_eq!(
        saturday.pad.dmi().annotations(k_scrap).unwrap(),
        vec!["repleting; recheck Sat am"]
    );
    // The mark resolves against *today's* lab document: the scrap label
    // says 3.4 (Friday's value), the live document now says 4.0 — exactly
    // the redundancy-with-links design: "we can re-establish context for
    // a selected item".
    assert_eq!(saturday.pad.extract(k_scrap).unwrap(), "4.0");
    let audit = saturday.pad.marks().audit();
    assert!(audit.iter().all(|a| a.live));
    assert!(
        audit.iter().any(|a| a.drifted),
        "the K value drifted overnight and the audit sees it"
    );

    // The linked medication scrap navigates to the med list.
    let links = saturday.pad.dmi().scrap_links(k_scrap).unwrap();
    assert_eq!(links.len(), 1);
    let res = saturday.pad.activate(links[0]).unwrap();
    assert!(res.display.contains("[Lasix 40 IV bid]"), "{}", res.display);
}

/// The Figure 2 resident's worksheet: one row per patient, stamped from
/// a template, each filled with live marks from different sources.
#[test]
fn residents_worksheet_scenario() {
    let mut sys = SuperimposedSystem::new("Resident Worksheet").unwrap();
    // Base documents across four kinds.
    let mut wb = Workbook::new("census.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Smith, John 61M").unwrap();
    wb.sheet_mut("Sheet1").unwrap().set_a1("A2", "Doe, Jane 54F").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.xml
        .borrow_mut()
        .open_text("labs.xml", "<labs><pt id='js'><k>4.1</k></pt><pt id='jd'><k>5.2</k></pt></labs>")
        .unwrap();
    sys.text
        .borrow_mut()
        .open(TextDocument::from_text("plan.doc", "Smith: diurese.\n\nDoe: hold ACEi for K."))
        .unwrap();

    // Build the first row by hand, capture it as a template.
    let row1 = sys.pad.create_bundle("row", (50, 60), 1000, 200, None).unwrap();
    sys.excel.borrow_mut().select("census.xls", "Sheet1", "A1").unwrap();
    sys.pad.place_selection(DocKind::Spreadsheet, None, (60, 90), Some(row1)).unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/pt[@id='js']/k").unwrap();
    sys.pad.place_selection(DocKind::Xml, Some("K"), (400, 90), Some(row1)).unwrap();
    sys.text.borrow_mut().select_span("plan.doc", 0, 0, 15).unwrap();
    sys.pad.place_selection(DocKind::Text, Some("to-do"), (700, 90), Some(row1)).unwrap();

    let template = BundleTemplate::capture(sys.pad.dmi(), row1).unwrap();
    assert_eq!(template.slot_count(), 3);

    // Stamp a second row and fill its slots from patient 2's documents.
    let (row2, slots) = template.instantiate(&mut sys.pad, "row 2", (50, 300), None).unwrap();
    sys.excel.borrow_mut().select("census.xls", "Sheet1", "A2").unwrap();
    let m1 = sys.pad.marks_mut().create_mark(DocKind::Spreadsheet).unwrap();
    BundleTemplate::fill_slot(&mut sys.pad, slots[0], &m1).unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/pt[@id='jd']/k").unwrap();
    let m2 = sys.pad.marks_mut().create_mark(DocKind::Xml).unwrap();
    BundleTemplate::fill_slot(&mut sys.pad, slots[1], &m2).unwrap();

    // Row 2's K scrap resolves to Jane's potassium.
    assert_eq!(sys.pad.extract(slots[1]).unwrap(), "5.2");
    // The un-filled slot still has its placeholder (visible in an audit).
    let marks = sys.pad.dmi().scrap(slots[2]).unwrap().marks;
    assert_eq!(
        sys.pad.dmi().mark_handle(marks[0]).unwrap().mark_id,
        superimposed::slimpad::templates::PLACEHOLDER_MARK
    );
    // "bundles can be grouped into larger bundles": both rows sit on the pad.
    let rows = sys.pad.dmi().bundle(sys.pad.root_bundle()).unwrap().nested;
    assert_eq!(rows.len(), 2);
    let _ = row2;
    assert!(sys.pad.dmi().check().is_conformant());
}

/// A morbidity-conference pad drawing on all six base types at once —
/// the heterogeneity claim of Figure 1 ("Information Source 1 … n").
#[test]
fn six_source_conference_pad() {
    let mut sys = SuperimposedSystem::new("M&M Conference").unwrap();

    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.xml.borrow_mut().open_text("labs.xml", "<labs><k>3.1</k></labs>").unwrap();
    sys.text
        .borrow_mut()
        .open(TextDocument::from_text("note.doc", "Overnight: hypokalemia missed."))
        .unwrap();
    sys.html
        .borrow_mut()
        .load("protocol.html", "<html><body><p id='k'>Replete K below 3.5</p></body></html>")
        .unwrap();
    sys.pdf
        .borrow_mut()
        .open(PdfDocument::paginate("guideline.pdf", "Potassium monitoring is mandatory.", 40, 5))
        .unwrap();
    let mut deck = SlideDeck::new("mm.ppt");
    let mut slide = Slide::new();
    slide.add_shape("title", ShapeKind::Title, "Timeline of events").unwrap();
    deck.add_slide(slide);
    sys.slides.borrow_mut().open(deck).unwrap();

    // Select + place from each source.
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    sys.xml.borrow_mut().select_by_path("labs.xml", "/labs/k").unwrap();
    sys.text.borrow_mut().select_span("note.doc", 0, 11, 22).unwrap();
    sys.html.borrow_mut().select_anchor("protocol.html", "k").unwrap();
    sys.pdf.borrow_mut().select_found("guideline.pdf", "mandatory").unwrap();
    sys.slides.borrow_mut().select("mm.ppt", 0, "title").unwrap();

    let bundle = sys.pad.create_bundle("What happened", (20, 60), 800, 700, None).unwrap();
    let mut scraps = Vec::new();
    for (i, kind) in DocKind::all().into_iter().enumerate() {
        scraps
            .push(sys.pad.place_selection(kind, None, (40, 100 + 60 * i as i64), Some(bundle)).unwrap());
    }
    assert_eq!(scraps.len(), 6);
    // Every scrap resolves into its own application.
    for scrap in &scraps {
        let res = sys.pad.activate(*scrap).unwrap();
        assert!(!res.display.is_empty());
    }
    // The rendered pad shows all six scraps.
    let picture = render_pad(&sys.pad).unwrap();
    assert_eq!(picture.matches('·').count(), 6, "{picture}");
    // And a full save/load preserves everything.
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert_eq!(sys.pad.marks().len(), 6);
    assert!(sys.pad.marks().audit().iter().all(|a| a.live));
}

/// A generated ICU flowsheet — slimgen's workhorse document class. The
/// computed summary block (AVERAGEIFS/COUNTIFS/MAXIFS/MINIFS, the IFS
/// risk band, and the reference union/intersection cells) and the
/// range-addressed vitals columns all take live marks, and the computed
/// marks re-resolve when the night shift charts new observations.
#[test]
fn generated_flowsheet_computed_and_ranged_marks() {
    use superimposed::basedocs::spreadsheet::gen::{flowsheet, FlowsheetSpec};

    let mut sys = SuperimposedSystem::new("ICU Flowsheet").unwrap();
    let f = flowsheet(&FlowsheetSpec {
        file_name: "flowsheet-0007.xls".into(),
        patient: "Bed 7: R. Doe".into(),
        hours: 24,
        seed: 7,
    });
    // Snapshot the evaluated summary values before the workbook moves
    // into the live app.
    let expected: Vec<String> = {
        let sheet = f.workbook.sheet(&f.sheet).unwrap();
        f.computed_cells.iter().map(|(_, c)| sheet.value(*c).to_string()).collect()
    };
    let sheet_name = f.sheet.clone();
    let computed = f.computed_cells.clone();
    let hr_range = f.vital_columns.iter().find(|(label, _)| label == "HR").unwrap().1;
    sys.excel.borrow_mut().open(f.workbook).unwrap();

    // Every computed summary cell becomes a live computed-cell mark that
    // extracts its *evaluated* value, never a formula string or error.
    let bundle = sys.pad.create_bundle("flowsheet summary", (20, 40), 700, 600, None).unwrap();
    let mut summary_scraps = Vec::new();
    for (i, (label, cell)) in computed.iter().enumerate() {
        sys.excel
            .borrow_mut()
            .select("flowsheet-0007.xls", &sheet_name, &cell.to_string())
            .unwrap();
        let scrap = sys
            .pad
            .place_selection(DocKind::Spreadsheet, Some(label), (40, 80 + 40 * i as i64), Some(bundle))
            .unwrap();
        let value = sys.pad.extract(scrap).unwrap();
        assert_eq!(value, expected[i], "{label}");
        assert!(!value.is_empty() && !value.starts_with('#'), "{label} -> {value:?}");
        summary_scraps.push(scrap);
    }

    // A range-addressed mark over the whole heart-rate column: one line
    // per charted hour.
    sys.excel
        .borrow_mut()
        .select("flowsheet-0007.xls", &sheet_name, &hr_range.to_string())
        .unwrap();
    let hr_scrap = sys
        .pad
        .place_selection(DocKind::Spreadsheet, Some("HR trend"), (400, 80), Some(bundle))
        .unwrap();
    assert_eq!(sys.pad.extract(hr_scrap).unwrap().lines().count(), 24);

    // The night shift charts an extreme tachycardia reading in the
    // pinned ICU row. Generated heart rates top out at 135, so 200 is
    // strictly above every sample and the ICU mean must move.
    {
        let excel = sys.excel.borrow_mut();
        let mut excel = excel;
        let wb = excel.workbook_mut("flowsheet-0007.xls").unwrap();
        wb.sheet_mut(&sheet_name).unwrap().set_a1("C2", "200").unwrap();
    }
    let icu_mean_now = sys.pad.extract(summary_scraps[0]).unwrap();
    assert_ne!(icu_mean_now, expected[0], "icu mean hr must track the new reading");
    // The addresses held still while the data moved: live, and the
    // audit sees the drift on the affected computed cell.
    let audit = sys.pad.marks().audit();
    assert!(audit.iter().all(|a| a.live));
    assert!(audit.iter().any(|a| a.drifted), "the icu mean drifted and the audit sees it");
    assert!(sys.pad.dmi().check().is_conformant());
}

/// The drift scenario the paper's redundancy discussion warns about:
/// the base document evolves under the marks. Absolute-range marks
/// drift; the audit sees it; named-range addressing would have survived
/// (the name moved with its row inside the workbook).
#[test]
fn document_evolution_under_marks() {
    let mut sys = SuperimposedSystem::new("Drift").unwrap();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().import_csv("Drug,Dose\nLasix,40\nKCl,20\n").unwrap();
    wb.define_name(
        "LasixRow",
        "Sheet1",
        superimposed::basedocs::Range::parse("A2:B2").unwrap(),
    )
    .unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();

    // Mark the Lasix row by absolute range (what SLIMPad's Excel mark does).
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2:B2").unwrap();
    let scrap = sys.pad.place_selection(DocKind::Spreadsheet, None, (10, 30), None).unwrap();
    assert_eq!(sys.pad.extract(scrap).unwrap(), "Lasix\t40");

    // The pharmacy system inserts a new medication above.
    {
        let excel = sys.excel.borrow_mut();
        let mut excel = excel;
        let wb = excel.workbook_mut("meds.xls").unwrap();
        wb.insert_row("Sheet1", 1).unwrap();
        let sheet = wb.sheet_mut("Sheet1").unwrap();
        sheet.set_a1("A2", "Heparin").unwrap();
        sheet.set_a1("B2", "5000").unwrap();
    }

    // The absolute-range mark now points at the *new* row: live but
    // drifted — exactly what the audit is for.
    assert_eq!(sys.pad.extract(scrap).unwrap(), "Heparin\t5000");
    let audit = sys.pad.marks().audit();
    assert!(audit[0].live && audit[0].drifted);

    // The named range followed its data: selecting by name still finds
    // Lasix, and re-marking from that selection heals the scrap.
    sys.excel.borrow_mut().select_name("meds.xls", "LasixRow").unwrap();
    let healed_mark = sys.pad.marks_mut().create_mark(DocKind::Spreadsheet).unwrap();
    assert_eq!(sys.pad.marks().get(&healed_mark).unwrap().excerpt, "Lasix\t40");
}
