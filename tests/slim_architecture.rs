//! Integration test for the Figure 9 pipeline:
//! application ↔ DMI ↔ TRIM ↔ generic triple representation ↔ XML.
//!
//! Every layer is exercised through its public API only, and the test
//! verifies the paper's consistency claim: the triple representation and
//! the application's view of the data never disagree.

use superimposed::metamodel::{builtin, check_conformance};
use superimposed::slimstore::SlimPadDmi;
use superimposed::trim::{TriplePattern, TripleStore};

#[test]
fn dmi_operations_are_mirrored_in_triples() {
    let mut dmi = SlimPadDmi::new();
    let bundle = dmi.create_bundle("John Smith", (10, 10), 400, 300);
    let pad = dmi.create_slim_pad("Rounds", Some(bundle)).unwrap();
    let scrap = dmi.create_scrap("Na 140", (20, 40), "mark:0").unwrap();
    dmi.add_scrap(bundle, scrap).unwrap();

    // Inspect the generic representation underneath (the application
    // *can* see the triples, per the paper; it just needn't).
    let name_p = dmi.store().find_atom("bundleName").unwrap();
    let hits = dmi.store().select(&TriplePattern::default().with_property(name_p));
    assert_eq!(hits.len(), 1);
    assert_eq!(dmi.store().value_str(hits[0].object), Some("John Smith"));

    // The update flows through to the triples...
    dmi.update_bundle_name(bundle, "J. Smith (bed 4)").unwrap();
    let hits = dmi.store().select(&TriplePattern::default().with_property(name_p));
    assert_eq!(dmi.store().value_str(hits[0].object), Some("J. Smith (bed 4)"));

    // ...and the object view agrees.
    assert_eq!(dmi.bundle(bundle).unwrap().name, "J. Smith (bed 4)");
    assert_eq!(dmi.pad(pad).unwrap().root_bundle, Some(bundle));
}

#[test]
fn triple_level_reachability_view_matches_object_graph() {
    let mut dmi = SlimPadDmi::new();
    let outer = dmi.create_bundle("outer", (0, 0), 100, 100);
    let inner = dmi.create_bundle("inner", (10, 10), 50, 50);
    dmi.add_nested_bundle(outer, inner).unwrap();
    let scrap = dmi.create_scrap("s", (20, 20), "mark:1").unwrap();
    dmi.add_scrap(inner, scrap).unwrap();
    let orphan = dmi.create_bundle("orphan", (500, 0), 10, 10);

    // The paper's view example: "all triples representing nested Bundles
    // within the given Bundle along with their Scraps".
    let store = dmi.store();
    let view = store.view(outer.resource());
    assert!(view.resources.contains(&inner.resource()));
    assert!(!view.resources.contains(&orphan.resource()));

    // The view serializes standalone and reloads as a valid store.
    let orphan_name = store.resolve(orphan.resource()).to_string();
    let xml = store.view_to_xml(outer.resource());
    let sub = TripleStore::from_xml(&xml).unwrap();
    assert!(sub.len() < store.len());
    assert!(sub.find_atom(&orphan_name).is_none());
}

#[test]
fn xml_pipeline_full_circle_preserves_conformance() {
    let mut dmi = SlimPadDmi::new();
    let bundle = dmi.create_bundle("Electrolyte", (200, 60), 180, 160);
    dmi.create_slim_pad("Rounds", Some(bundle)).unwrap();
    for i in 0..20 {
        let s = dmi
            .create_scrap(&format!("value {i}"), (200 + i * 10, 80), &format!("mark:{i}"))
            .unwrap();
        dmi.add_scrap(bundle, s).unwrap();
    }
    assert!(dmi.check().is_conformant());

    // TRIM → XML → TRIM → DMI.
    let xml = dmi.save_xml();
    let (dmi2, pads) = SlimPadDmi::load_xml(&xml).unwrap();
    assert_eq!(pads.len(), 1);
    assert!(dmi2.check().is_conformant());
    // Canonical serialization: a second round trip is byte-identical.
    assert_eq!(dmi2.save_xml(), xml);

    // The reloaded store still answers selection queries through indexes.
    let store = dmi2.store();
    let content_p = store.find_atom("bundleContent").unwrap();
    assert_eq!(store.count(&TriplePattern::default().with_property(content_p)), 20);
}

#[test]
fn model_and_instances_cohabit_one_store() {
    // "Explicitly representing and storing model, schema, and instance"
    // — the model is decodable from the same store that holds the data.
    let dmi = SlimPadDmi::new();
    let decoded =
        superimposed::metamodel::encode::decode_model(dmi.store(), "bundle-scrap").unwrap();
    assert!(decoded.find_construct("Bundle").is_some());
    assert!(decoded.find_connector("scrapMark").is_some());
}

#[test]
fn journal_rollback_restores_exact_prior_state() {
    // The journal is the DMI's atomicity mechanism: take a revision,
    // stage triples, abort, and the store is byte-identical again.
    let mut dmi = SlimPadDmi::new();
    let b = dmi.create_bundle("b", (0, 0), 10, 10);
    dmi.create_slim_pad("p", Some(b)).unwrap();
    let xml_before = dmi.save_xml();

    let mut store = TripleStore::from_xml(&xml_before).unwrap();
    let rev = store.revision();
    let ghost = store.atom("ghost:1");
    let p = store.atom("scrapName");
    let v = store.literal_value("half-created");
    store.insert(ghost, p, v);
    assert_ne!(store.to_xml(), xml_before);
    store.undo_to(rev).unwrap();
    assert_eq!(store.to_xml(), xml_before);
}

#[test]
fn schema_later_data_is_tolerated_then_checkable() {
    // "schema-later data entry": raw triples can be thrown into a store
    // with no conformance links at all; checking simply sees no
    // instances and passes vacuously.
    let mut store = TripleStore::new();
    store.insert_literal("note:1", "text", "call cardiology");
    let report = check_conformance(&store, &builtin::bundle_scrap());
    assert_eq!(report.instances, 0);
    assert!(report.is_conformant());
}

#[test]
fn lightweight_claim_store_is_small_for_small_pads() {
    // "Keep it lightweight": a ten-scrap pad should cost kilobytes, not
    // megabytes, in both triples and serialized form.
    let mut dmi = SlimPadDmi::new();
    let bundle = dmi.create_bundle("b", (0, 0), 100, 100);
    dmi.create_slim_pad("p", Some(bundle)).unwrap();
    for i in 0..10 {
        let s = dmi.create_scrap(&format!("s{i}"), (0, i), &format!("mark:{i}")).unwrap();
        dmi.add_scrap(bundle, s).unwrap();
    }
    let stats = dmi.store().stats();
    assert!(stats.estimated_bytes < 64 * 1024, "{stats:?}");
    assert!(dmi.save_xml().len() < 64 * 1024);
}
