//! Integration test: deep pad persistence.
//!
//! The combined pad file (bundle tree + mark store) must round-trip
//! object graphs of realistic depth and carry every §6 extension
//! (annotations, scrap links, template placeholders) intact.

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::templates::{BundleTemplate, PLACEHOLDER_MARK};
use superimposed::{DocKind, SuperimposedSystem};

fn system_with_sheet() -> SuperimposedSystem {
    let sys = SuperimposedSystem::new("Rounds").unwrap();
    let mut wb = Workbook::new("meds.xls");
    for i in 1..=8 {
        wb.sheet_mut("Sheet1").unwrap().set_a1(&format!("A{i}"), &format!("drug {i}")).unwrap();
    }
    sys.excel.borrow_mut().open(wb).unwrap();
    sys
}

#[test]
fn deeply_nested_bundles_roundtrip() {
    let mut sys = system_with_sheet();
    // A chain of 12 nested bundles with a scrap at the bottom.
    let mut parent = None;
    for depth in 0..12 {
        let b = sys
            .pad
            .create_bundle(&format!("level {depth}"), (depth * 5, depth * 10), 600 - depth * 20, 500 - depth * 20, parent)
            .unwrap();
        parent = Some(b);
    }
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    sys.pad.place_selection(DocKind::Spreadsheet, None, (100, 100), parent).unwrap();

    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();

    // Walk back down the chain.
    let mut current = sys.pad.root_bundle();
    let mut depth = 0;
    loop {
        let data = sys.pad.dmi().bundle(current).unwrap();
        if data.nested.is_empty() {
            assert_eq!(data.scraps.len(), 1, "scrap at the bottom");
            break;
        }
        assert_eq!(data.nested.len(), 1);
        current = data.nested[0];
        depth += 1;
    }
    assert_eq!(depth, 12);
    assert!(sys.pad.dmi().check().is_conformant());
}

#[test]
fn annotations_links_and_placeholders_survive() {
    let mut sys = system_with_sheet();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();
    let a = sys.pad.place_selection(DocKind::Spreadsheet, Some("A"), (10, 30), None).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A2").unwrap();
    let b = sys.pad.place_selection(DocKind::Spreadsheet, Some("B"), (10, 60), None).unwrap();
    sys.pad.dmi_mut().add_annotation(a, "first note").unwrap();
    sys.pad.dmi_mut().add_annotation(a, "second note").unwrap();
    sys.pad.dmi_mut().link_scraps(a, b).unwrap();
    // A template-placeholder scrap too.
    let slot = sys.pad.dmi_mut().create_scrap("empty slot", (10, 90), PLACEHOLDER_MARK).unwrap();
    let root = sys.pad.root_bundle();
    sys.pad.dmi_mut().add_scrap(root, slot).unwrap();

    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();

    let root = sys.pad.root_bundle();
    let scraps = sys.pad.dmi().bundle(root).unwrap().scraps;
    assert_eq!(scraps.len(), 3);
    let by_name = |name: &str| {
        scraps
            .iter()
            .copied()
            .find(|s| sys.pad.dmi().scrap(*s).unwrap().name == name)
            .unwrap()
    };
    let a2 = by_name("A");
    let b2 = by_name("B");
    let slot2 = by_name("empty slot");
    assert_eq!(
        sys.pad.dmi().annotations(a2).unwrap(),
        vec!["first note", "second note"]
    );
    assert_eq!(sys.pad.dmi().scrap_links(a2).unwrap(), vec![b2]);
    let marks = sys.pad.dmi().scrap(slot2).unwrap().marks;
    assert_eq!(sys.pad.dmi().mark_handle(marks[0]).unwrap().mark_id, PLACEHOLDER_MARK);
}

#[test]
fn positions_and_sizes_are_exact_after_roundtrip() {
    let mut sys = system_with_sheet();
    let b = sys.pad.create_bundle("precise", (-37, 4096), 123, 7, None).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A3").unwrap();
    let s = sys.pad.place_selection(DocKind::Spreadsheet, None, (-5, 99), Some(b)).unwrap();
    let before_b = sys.pad.dmi().bundle(b).unwrap();
    let before_s = sys.pad.dmi().scrap(s).unwrap();

    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let root = sys.pad.root_bundle();
    let b2 = sys.pad.dmi().bundle(root).unwrap().nested[0];
    let after_b = sys.pad.dmi().bundle(b2).unwrap();
    assert_eq!((after_b.pos, after_b.width, after_b.height), (before_b.pos, before_b.width, before_b.height));
    let s2 = after_b.scraps[0];
    let after_s = sys.pad.dmi().scrap(s2).unwrap();
    assert_eq!(after_s.pos, before_s.pos);
    assert_eq!(after_s.name, before_s.name);
}

#[test]
fn templates_captured_from_reloaded_pads_still_instantiate() {
    let mut sys = system_with_sheet();
    let row = sys.pad.create_bundle("Patient Row", (50, 60), 900, 240, None).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A4").unwrap();
    sys.pad.place_selection(DocKind::Spreadsheet, Some("problem"), (70, 90), Some(row)).unwrap();

    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let root = sys.pad.root_bundle();
    let row2 = sys.pad.dmi().bundle(root).unwrap().nested[0];
    let template = BundleTemplate::capture(sys.pad.dmi(), row2).unwrap();
    assert_eq!(template.slots.len(), 1);
    let (stamped, slots) =
        template.instantiate(&mut sys.pad, "Next Patient", (50, 360), None).unwrap();
    assert_eq!(sys.pad.dmi().bundle(stamped).unwrap().name, "Next Patient");
    assert_eq!(slots.len(), 1);
    assert!(sys.pad.dmi().check().is_conformant());
}

#[test]
fn double_save_is_idempotent() {
    let mut sys = system_with_sheet();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A5").unwrap();
    sys.pad.place_selection(DocKind::Spreadsheet, None, (10, 30), None).unwrap();
    let first = sys.pad.save_xml();
    sys.reopen_pad(&first).unwrap();
    let second = sys.pad.save_xml();
    assert_eq!(first, second, "save → load → save must be byte-stable");
}

#[test]
fn empty_pad_roundtrips() {
    let mut sys = SuperimposedSystem::new("Empty").unwrap();
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    assert_eq!(sys.pad.dmi().pad(sys.pad.pad()).unwrap().name, "Empty");
    assert!(sys.pad.dmi().bundle(sys.pad.root_bundle()).unwrap().scraps.is_empty());
}

#[test]
fn large_pad_roundtrips_completely() {
    let mut sys = system_with_sheet();
    let mut expected_names = Vec::new();
    for i in 0..200 {
        let cell = format!("A{}", (i % 8) + 1);
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", &cell).unwrap();
        let label = format!("scrap #{i}");
        sys.pad
            .place_selection(DocKind::Spreadsheet, Some(&label), (i % 50 * 12, i / 50 * 30), None)
            .unwrap();
        expected_names.push(label);
    }
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let root = sys.pad.root_bundle();
    let scraps = sys.pad.dmi().bundle(root).unwrap().scraps;
    assert_eq!(scraps.len(), 200);
    let mut names: Vec<String> =
        scraps.iter().map(|s| sys.pad.dmi().scrap(*s).unwrap().name).collect();
    names.sort();
    expected_names.sort();
    assert_eq!(names, expected_names);
    assert_eq!(sys.pad.marks().len(), 200);
}
