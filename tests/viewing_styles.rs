//! Integration test: the three viewing styles of paper Figure 6, across
//! base-application kinds.

use superimposed::basedocs::pdfdoc::PdfDocument;
use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::slimpad::viewing::view_scrap;
use superimposed::{DocKind, SuperimposedSystem, ViewingStyle};

fn system_with_scraps() -> (SuperimposedSystem, Vec<superimposed::slimstore::ScrapHandle>) {
    let mut sys = SuperimposedSystem::new("Styles").unwrap();

    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "A1").unwrap();

    sys.pdf
        .borrow_mut()
        .open(PdfDocument::paginate("guide.pdf", "Monitor potassium during diuresis.", 40, 5))
        .unwrap();
    sys.pdf.borrow_mut().select_found("guide.pdf", "potassium").unwrap();

    let s1 = sys.pad.place_selection(DocKind::Spreadsheet, None, (40, 90), None).unwrap();
    let s2 = sys.pad.place_selection(DocKind::Pdf, Some("K guidance"), (40, 150), None).unwrap();
    sys.pad.dmi_mut().add_annotation(s2, "relevant to bed 4").unwrap();
    (sys, vec![s1, s2])
}

#[test]
fn simultaneous_viewing_shows_pad_and_base_for_both_kinds() {
    let (mut sys, scraps) = system_with_scraps();
    for (scrap, base_marker) in [(scraps[0], "meds.xls"), (scraps[1], "guide.pdf")] {
        let screen = view_scrap(&mut sys.pad, scrap, ViewingStyle::Simultaneous).unwrap();
        assert!(screen.contains(" Styles "), "pad window: {screen}");
        assert!(screen.contains(base_marker), "base window: {screen}");
    }
}

#[test]
fn simultaneous_viewing_moves_base_selection() {
    use superimposed::BaseApplication;
    let (mut sys, scraps) = system_with_scraps();
    // Move the spreadsheet selection away, then view the spreadsheet scrap.
    sys.excel.borrow_mut().workbook_mut("meds.xls").unwrap().sheet_mut("Sheet1").unwrap().set_a1("C9", "x").unwrap();
    sys.excel.borrow_mut().select("meds.xls", "Sheet1", "C9").unwrap();
    view_scrap(&mut sys.pad, scraps[0], ViewingStyle::Simultaneous).unwrap();
    assert_eq!(
        sys.excel.borrow().current_selection().unwrap().to_string(),
        "meds.xls!Sheet1!A1",
        "activation drove the base application to the mark"
    );
}

#[test]
fn enhanced_base_viewing_carries_annotations() {
    let (mut sys, scraps) = system_with_scraps();
    let screen = view_scrap(&mut sys.pad, scraps[1], ViewingStyle::EnhancedBase).unwrap();
    assert!(screen.contains("guide.pdf"), "{screen}");
    assert!(screen.contains("[potassium]"), "base highlight: {screen}");
    assert!(screen.contains("K guidance"), "scrap label injected: {screen}");
    assert!(screen.contains("relevant to bed 4"), "annotation injected: {screen}");
    assert!(!screen.contains(" Styles "), "no pad window in this style");
}

#[test]
fn independent_viewing_pulls_content_without_base_window() {
    let (mut sys, scraps) = system_with_scraps();
    let screen = view_scrap(&mut sys.pad, scraps[0], ViewingStyle::Independent).unwrap();
    assert!(screen.contains(" Styles "), "{screen}");
    assert!(screen.contains("⇐ Lasix 40"), "{screen}");
    assert!(!screen.contains("meds.xls"), "base hidden: {screen}");
}

#[test]
fn independent_viewing_leaves_base_selection_untouched() {
    use superimposed::BaseApplication;
    let (mut sys, scraps) = system_with_scraps();
    let before = sys.pdf.borrow().current_selection().unwrap();
    view_scrap(&mut sys.pad, scraps[1], ViewingStyle::Independent).unwrap();
    let after = sys.pdf.borrow().current_selection().unwrap();
    assert_eq!(before, after);
}

#[test]
fn styles_work_after_pad_reload() {
    let (mut sys, _) = system_with_scraps();
    let saved = sys.pad.save_xml();
    sys.reopen_pad(&saved).unwrap();
    let root = sys.pad.root_bundle();
    let scraps = sys.pad.dmi().bundle(root).unwrap().scraps;
    for style in [ViewingStyle::Simultaneous, ViewingStyle::EnhancedBase, ViewingStyle::Independent]
    {
        for scrap in &scraps {
            let screen = view_scrap(&mut sys.pad, *scrap, style).unwrap();
            assert!(!screen.trim().is_empty());
        }
    }
}
