//! Integration test: cross-model interoperability pipelines (paper §4.3
//! and reference [4]) — live pad → mapping → foreign model → XML wire →
//! receiving application.

use superimposed::basedocs::spreadsheet::Workbook;
use superimposed::metamodel::{apply_mapping, builtin, check_conformance, Mapping};
use superimposed::slimstore::generic::DmiValue;
use superimposed::trim::{TriplePattern, TripleStore};
use superimposed::{DocKind, GenericDmi, SuperimposedSystem};

fn pad_with_content() -> SuperimposedSystem {
    let mut sys = SuperimposedSystem::new("Handoff").unwrap();
    let mut wb = Workbook::new("meds.xls");
    wb.sheet_mut("Sheet1").unwrap().set_a1("A1", "Lasix 40").unwrap();
    wb.sheet_mut("Sheet1").unwrap().set_a1("A2", "KCl 20").unwrap();
    sys.excel.borrow_mut().open(wb).unwrap();
    let patient = sys.pad.create_bundle("John Smith", (20, 60), 500, 400, None).unwrap();
    for (i, cell) in ["A1", "A2"].iter().enumerate() {
        sys.excel.borrow_mut().select("meds.xls", "Sheet1", cell).unwrap();
        sys.pad
            .place_selection(DocKind::Spreadsheet, None, (40, 100 + 40 * i as i64), Some(patient))
            .unwrap();
    }
    sys
}

fn slimpad_to_topicmap() -> Mapping {
    Mapping::new("slimpad-to-topicmap")
        .construct("Bundle", "Topic")
        .construct("Scrap", "Topic")
        .connector("bundleName", "topicName")
        .connector("scrapName", "topicName")
        .connector("nestedBundle", "relatedTo")
        .connector("bundleContent", "relatedTo")
}

#[test]
fn live_pad_maps_to_conformant_topic_map() {
    let sys = pad_with_content();
    let mapping = slimpad_to_topicmap();
    let out = apply_mapping(
        sys.pad.dmi().store(),
        &mapping,
        &builtin::bundle_scrap(),
        &builtin::topic_map_like(),
    )
    .unwrap();
    let report = check_conformance(&out, &builtin::topic_map_like());
    assert!(report.is_conformant(), "{:?}", report.violations);
    // root bundle + patient bundle + 2 scraps = 4 topics.
    assert_eq!(report.instances, 4);

    let name_p = out.find_atom("topicName").unwrap();
    let names: Vec<&str> = out
        .select_sorted(&TriplePattern::default().with_property(name_p))
        .iter()
        .filter_map(|t| out.value_str(t.object))
        .collect();
    assert!(names.contains(&"John Smith"), "{names:?}");
    assert!(names.contains(&"Lasix 40"), "{names:?}");
}

#[test]
fn mapped_store_travels_over_xml_and_feeds_a_generic_dmi() {
    let sys = pad_with_content();
    let out = apply_mapping(
        sys.pad.dmi().store(),
        &slimpad_to_topicmap(),
        &builtin::bundle_scrap(),
        &builtin::topic_map_like(),
    )
    .unwrap();
    let wire = out.to_xml();

    // The receiving application derives its DMI from the payload itself.
    let received = TripleStore::from_xml(&wire).unwrap();
    let mut dmi = GenericDmi::over_store(received, "topic-map").unwrap();
    let topics = dmi.instances("Topic");
    assert_eq!(topics.len(), 4);
    // And can keep editing under model enforcement.
    let extra = dmi.create("Topic").unwrap();
    dmi.set(extra, "topicName", DmiValue::Text("follow-up".into())).unwrap();
    dmi.set(extra, "relatedTo", DmiValue::Link(topics[0])).unwrap();
    assert!(dmi.check().is_conformant(), "{:?}", dmi.check().violations);
}

#[test]
fn schema_to_schema_mapping_within_one_model() {
    // Rename-only mapping: two SLIMPad deployments using different
    // labels for the same structure (the paper's schema-to-schema case,
    // here expressed as identity construct mapping).
    let sys = pad_with_content();
    let identity = Mapping::new("identity")
        .construct("Bundle", "Bundle")
        .construct("Scrap", "Scrap")
        .construct("MarkHandle", "MarkHandle")
        .connector("bundleName", "bundleName")
        .connector("scrapName", "scrapName")
        .connector("bundleContent", "bundleContent")
        .connector("nestedBundle", "nestedBundle")
        .connector("scrapMark", "scrapMark")
        .connector("markId", "markId");
    let out = apply_mapping(
        sys.pad.dmi().store(),
        &identity,
        &builtin::bundle_scrap(),
        &builtin::bundle_scrap(),
    )
    .unwrap();
    // Positions/sizes were not mapped: a projection, but still structurally
    // sound as far as the mapped connectors go.
    let name_p = out.find_atom("bundleName").unwrap();
    assert_eq!(out.count(&TriplePattern::default().with_property(name_p)), 2);
    let mark_p = out.find_atom("markId").unwrap();
    assert_eq!(out.count(&TriplePattern::default().with_property(mark_p)), 2);
}

#[test]
fn mark_ids_survive_mapping_as_occurrences() {
    // Map scrap marks into topic occurrences: the mark id literal is the
    // cross-application wire for base-layer addressing.
    let sys = pad_with_content();
    let mapping = Mapping::new("marks-as-occurrences")
        .construct("Scrap", "Topic")
        .construct("MarkHandle", "Topic") // structural carrier
        .connector("scrapName", "topicName")
        .connector("markId", "occurrence")
        .connector("scrapMark", "relatedTo");
    mapping.validate(&builtin::bundle_scrap(), &builtin::topic_map_like()).unwrap();
    let out = apply_mapping(
        sys.pad.dmi().store(),
        &mapping,
        &builtin::bundle_scrap(),
        &builtin::topic_map_like(),
    )
    .unwrap();
    let occ_p = out.find_atom("occurrence").unwrap();
    let mut occurrences: Vec<&str> = out
        .select_sorted(&TriplePattern::default().with_property(occ_p))
        .iter()
        .filter_map(|t| out.value_str(t.object))
        .collect();
    occurrences.sort_unstable();
    assert_eq!(occurrences, vec!["mark:0", "mark:1"]);
    // Those ids resolve in the original system's mark manager.
    for id in occurrences {
        assert!(sys.pad.marks().get(id).is_ok());
    }
}

#[test]
fn invalid_mappings_are_rejected_before_any_work() {
    let sys = pad_with_content();
    let bad = Mapping::new("bad").construct("Bundle", "Occurrence"); // construct → mark leaf
    let err = apply_mapping(
        sys.pad.dmi().store(),
        &bad,
        &builtin::bundle_scrap(),
        &builtin::topic_map_like(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("incompatible"), "{err}");
}
